//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, dependency-free implementation of the `rand 0.8` API surface it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_bool`] and [`Rng::gen_range`] over integer ranges.
//!
//! The generator is SplitMix64 — statistically fine for test-data
//! generation, deterministic per seed, and *not* cryptographic. Streams
//! differ from upstream `rand`, which is acceptable: every consumer in this
//! workspace treats the RNG as an arbitrary deterministic source.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness plus the derived sampling helpers.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 high bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    /// A uniform draw from an integer range. Panics on empty ranges, like
    /// upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(0..4);
            assert!((0..4).contains(&v));
            let w = r.gen_range(2usize..=6);
            assert!((2..=6).contains(&w));
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(7);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "{heads}");
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal wall-clock benchmarking harness implementing the `criterion 0.5`
//! API surface the bench crate uses: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Timing methodology is deliberately simple — warm up, then time a batch
//! sized to run for roughly [`Criterion::MEASURE_BUDGET`] — which is enough
//! to compare fast and slow paths by orders of magnitude, the only use the
//! workspace's benches make of it. No statistics, plots, or baselines.
//!
//! When the environment variable `CRITERION_SUMMARY_JSON` names a file,
//! every measurement additionally appends one JSON object per line
//! (`{"name":…,"ns_per_iter":…,"iters":…}`) to it — the machine-readable
//! summary CI uploads as a build artifact.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures the closure: a short warm-up, then a timed batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: run until ~10ms or 3 iterations.
        let cal_start = Instant::now();
        let mut cal_iters: u64 = 0;
        while cal_iters < 3 || (cal_start.elapsed() < Duration::from_millis(10) && cal_iters < 1000)
        {
            black_box(f());
            cal_iters += 1;
        }
        let per_iter = cal_start.elapsed() / cal_iters.max(1) as u32;
        // Size the measured batch to the budget, capped by samples.
        let budget = Criterion::MEASURE_BUDGET;
        let target = if per_iter.is_zero() {
            self.samples
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)) as u64
        };
        let iters = target.clamp(1, self.samples.max(1) * 100);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Units-of-work declaration for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Criterion {
    /// Wall-clock budget for one measurement.
    pub const MEASURE_BUDGET: Duration = Duration::from_millis(120);

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(None, id.into(), sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the measured batch (`criterion` semantics: target sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Declares per-iteration units of work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            id.into(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            id,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: BenchmarkId,
    sample_size: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: sample_size,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let full_name = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id,
    };
    if b.iters == 0 {
        println!("{full_name:<52} (no measurement: Bencher::iter never called)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(
            " {:>12.0} elem/s",
            n as f64 * b.iters as f64 / b.elapsed.as_secs_f64()
        ),
        Throughput::Bytes(n) => format!(
            " {:>12.0} B/s",
            n as f64 * b.iters as f64 / b.elapsed.as_secs_f64()
        ),
    });
    println!(
        "{full_name:<52} time: {:>12}  ({} iters){}",
        fmt_ns(per_iter),
        b.iters,
        rate.unwrap_or_default()
    );
    append_summary(&full_name, per_iter, b.iters, throughput, b.elapsed);
}

/// Appends one JSON line for the measurement to `$CRITERION_SUMMARY_JSON`
/// (JSON Lines: bench binaries run sequentially and share the file).
/// Silently skipped when the variable is unset; write errors are reported
/// on stderr but never fail the bench run.
fn append_summary(
    name: &str,
    ns_per_iter: f64,
    iters: u64,
    throughput: Option<Throughput>,
    elapsed: Duration,
) {
    let Ok(path) = std::env::var("CRITERION_SUMMARY_JSON") else {
        return;
    };
    let line = summary_line(name, ns_per_iter, iters, throughput, elapsed);
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = result {
        eprintln!("criterion: cannot append summary to {path}: {e}");
    }
}

fn summary_line(
    name: &str,
    ns_per_iter: f64,
    iters: u64,
    throughput: Option<Throughput>,
    elapsed: Duration,
) -> String {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(
            ",\"elements_per_sec\":{:.0}",
            n as f64 * iters as f64 / elapsed.as_secs_f64()
        ),
        Some(Throughput::Bytes(n)) => format!(
            ",\"bytes_per_sec\":{:.0}",
            n as f64 * iters as f64 / elapsed.as_secs_f64()
        ),
        None => String::new(),
    };
    format!(
        "{{\"name\":\"{}\",\"ns_per_iter\":{ns_per_iter:.1},\"iters\":{iters}{rate}}}\n",
        json_escape(name)
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a bench group runner function, `criterion` style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary entry point, `criterion` style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn summary_lines_are_valid_json_shapes() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
        let line = summary_line(
            "g/bench",
            1234.5,
            42,
            Some(Throughput::Elements(10)),
            Duration::from_millis(5),
        );
        assert!(
            line.starts_with("{\"name\":\"g/bench\",\"ns_per_iter\":1234.5,\"iters\":42"),
            "{line}"
        );
        assert!(line.contains("\"elements_per_sec\":84000"));
        assert!(line.ends_with("}\n"));
        let plain = summary_line("b", 10.0, 1, None, Duration::from_millis(1));
        assert_eq!(plain, "{\"name\":\"b\",\"ns_per_iter\":10.0,\"iters\":1}\n");
    }

    #[test]
    fn id_renderings() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}

//! Case execution: configuration, the deterministic RNG handed to
//! strategies, and the runner that drives the generated `#[test]` bodies.

use std::fmt;

/// Runner configuration; re-exported from the prelude as `ProptestConfig`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input does not satisfy an assumption; draw another.
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection (discarded case) with a reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic random source for strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }

    /// A uniform `usize` in `[lo, hi)`; panics when the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }
}

/// Drives a property over many generated cases.
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: Config) -> Self {
        Self { config }
    }

    /// Runs `f` until [`Config::cases`] cases pass. Rejected cases are
    /// replaced (up to a discard budget); a failed case panics with the
    /// case number and seed.
    ///
    /// Two environment variables pin runs for CI reproducibility:
    /// `PROPTEST_CASES` overrides the configured case count, and
    /// `PROPTEST_RNG_SEED` (a `u64`) is mixed into every property's seed
    /// base, so a whole suite can be replayed on a known sequence.
    pub fn run_named<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = env_u64("PROPTEST_CASES")
            .map(|n| n.min(u32::MAX as u64) as u32)
            .unwrap_or(self.config.cases)
            .max(1);
        let base = fnv1a(name.as_bytes()) ^ env_u64("PROPTEST_RNG_SEED").unwrap_or(0);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let max_rejects = cases.saturating_mul(16).max(256);
        let mut attempt: u64 = 0;
        while passed < cases {
            let seed = base ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F);
            attempt += 1;
            let mut rng = TestRng::new(seed);
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected} rejects for {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {} (seed {seed:#x}):\n{msg}",
                        passed + 1
                    );
                }
            }
        }
    }
}

/// Reads an environment variable as a `u64`, accepting decimal or `0x`
/// hex; unset or unparsable values are ignored (the configured default
/// wins), so a typo degrades to the normal run rather than a panic.
fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_passes_trivial_property() {
        let mut r = TestRunner::new(Config::with_cases(8));
        let mut n = 0;
        r.run_named("trivial", |rng| {
            n += 1;
            let v = rng.below(10);
            if v >= 10 {
                return Err(TestCaseError::fail("impossible"));
            }
            Ok(())
        });
        assert_eq!(n, 8);
    }

    #[test]
    fn runner_replaces_rejected_cases() {
        let mut r = TestRunner::new(Config::with_cases(4));
        let mut seen = 0;
        r.run_named("rejects", |rng| {
            seen += 1;
            if rng.below(2) == 0 {
                return Err(TestCaseError::reject("coin"));
            }
            Ok(())
        });
        assert!(seen >= 4);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn runner_panics_on_failure() {
        let mut r = TestRunner::new(Config::with_cases(4));
        r.run_named("fails", |_| Err(TestCaseError::fail("boom")));
    }

    // env_u64 is probed through uniquely named variables so these tests
    // cannot race the runner tests above (which read the real
    // PROPTEST_CASES / PROPTEST_RNG_SEED).
    #[test]
    fn env_pinning_parses_decimal_and_hex() {
        std::env::set_var("PROPTEST_TEST_DEC", "512");
        std::env::set_var("PROPTEST_TEST_HEX", "0xDEAD");
        std::env::set_var("PROPTEST_TEST_BAD", "not-a-number");
        assert_eq!(env_u64("PROPTEST_TEST_DEC"), Some(512));
        assert_eq!(env_u64("PROPTEST_TEST_HEX"), Some(0xDEAD));
        assert_eq!(env_u64("PROPTEST_TEST_BAD"), None);
        assert_eq!(env_u64("PROPTEST_TEST_UNSET"), None);
    }
}

//! String-pattern strategies.
//!
//! Upstream proptest interprets `&str` strategies as full regexes. This
//! stand-in supports the shapes the workspace's tests actually use —
//! `[class]{m,n}` (with `-` ranges inside the class) and `\PC{m,n}` ("any
//! printable character") — and falls back to printable ASCII for anything
//! it cannot parse.

use crate::test_runner::TestRng;

/// Generates a string matching (our subset of) `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let (class, min, max) = parse(pattern).unwrap_or_else(|| (printable_ascii(), 0, 12));
    let len = if max > min {
        min + rng.below((max - min + 1) as u64) as usize
    } else {
        min
    };
    (0..len)
        .map(|_| class[rng.below(class.len() as u64) as usize])
        .collect()
}

fn printable_ascii() -> Vec<char> {
    (b' '..=b'~').map(char::from).collect()
}

fn parse(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let (class, rest) = if let Some(stripped) = pattern.strip_prefix(r"\PC") {
        // "Any non-control character": printable ASCII plus a sprinkling of
        // wider code points to exercise unicode handling.
        let mut class = printable_ascii();
        class.extend(['é', 'ß', 'λ', '→', '中', '🦀']);
        (class, stripped.chars().collect::<Vec<char>>())
    } else if chars.first() == Some(&'[') {
        let close = chars.iter().position(|c| *c == ']')?;
        let mut class = Vec::new();
        let mut i = 1;
        while i < close {
            if i + 2 < close && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                for cp in lo..=hi {
                    class.push(char::from_u32(cp)?);
                }
                i += 3;
            } else {
                class.push(chars[i]);
                i += 1;
            }
        }
        if class.is_empty() {
            return None;
        }
        (class, chars[close + 1..].to_vec())
    } else {
        return None;
    };
    // Repetition: {m,n}; absent means exactly one.
    if rest.is_empty() {
        return Some((class, 1, 1));
    }
    if rest.first() != Some(&'{') || rest.last() != Some(&'}') {
        return None;
    }
    let body: String = rest[1..rest.len() - 1].iter().collect();
    let (lo, hi) = body.split_once(',')?;
    Some((class, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_range_pattern() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let s = generate_matching("[ -~]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn any_printable_pattern() {
        let mut rng = TestRng::new(3);
        let mut saw_nonascii = false;
        for _ in 0..200 {
            let s = generate_matching("\\PC{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            saw_nonascii |= !s.is_ascii();
        }
        assert!(saw_nonascii, "unicode sprinkling never appeared");
    }

    #[test]
    fn fallback_for_unparsed_patterns() {
        let mut rng = TestRng::new(4);
        let s = generate_matching("(a|b)+", &mut rng);
        assert!(s.len() <= 12);
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal property-testing harness implementing the `proptest 1.x` API
//! surface its test-suites use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `name(pat in strategy, ...)` test functions;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//!   [`prop_oneof!`];
//! * strategies: integer ranges, tuples, [`strategy::Strategy::prop_map`],
//!   [`collection::vec`], [`option::of`], [`arbitrary::any`],
//!   [`strategy::Just`], and string-pattern strategies for the simple
//!   character-class patterns the tests use;
//! * [`test_runner::Config`] (re-exported as `ProptestConfig`) and
//!   [`test_runner::TestCaseError`].
//!
//! Differences from upstream: inputs are generated from a deterministic
//! per-test seed sequence, there is **no shrinking**, and string patterns
//! support only `[class]{m,n}` / `\PC{m,n}` shapes (enough for the
//! workspace's generators). Failures report the case number and seed so a
//! run can be reproduced by re-running the test binary.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the generating seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Discards the current case when an assumption fails; the runner draws a
/// replacement input instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Chooses uniformly among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` running [`test_runner::Config::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal recursive expander for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run_named(stringify!($name), |__proptest_rng| {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&$strategy, __proptest_rng);)+
                let __proptest_body: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                __proptest_body
            });
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

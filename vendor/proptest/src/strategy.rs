//! The [`Strategy`] trait and its combinators: value generation without
//! shrinking.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Uniform choice among boxed strategies; built by [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = (0u64..40).generate(&mut rng);
            assert!(v < 40);
            let (a, b) = ((0u32..3), (10i64..12)).generate(&mut rng);
            assert!(a < 3 && (10..12).contains(&b));
            let s = (0u8..6).prop_map(|x| x * 2).generate(&mut rng);
            assert!(s < 12 && s % 2 == 0);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut rng = TestRng::new(3);
        let draws: Vec<u8> = (0..64).map(|_| u.generate(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }
}

//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII with occasional wider code points.
        match rng.next_u64() % 8 {
            0 => char::from_u32(0x00A0 + (rng.next_u64() % 0x500) as u32).unwrap_or('ß'),
            _ => (0x20u8 + (rng.next_u64() % 0x5F) as u8) as char,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_signs() {
        let mut rng = TestRng::new(5);
        let vs: Vec<i64> = (0..64).map(|_| any::<i64>().generate(&mut rng)).collect();
        assert!(vs.iter().any(|v| *v < 0) && vs.iter().any(|v| *v > 0));
        let bs: Vec<bool> = (0..64).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(bs.contains(&true) && bs.contains(&false));
    }
}

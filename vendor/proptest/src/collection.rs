//! Collection strategies: `prop::collection::vec`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A vector of values drawn from `element`, with length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.start, self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let s = vec(0u32..5, 1..4);
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }
}

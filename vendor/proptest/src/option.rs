//! Option strategies: `proptest::option::of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `None` about a quarter of the time, otherwise `Some` of the inner draw.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let s = of(0u32..10);
        let mut rng = TestRng::new(11);
        let draws: Vec<Option<u32>> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().any(Option::is_some));
    }
}

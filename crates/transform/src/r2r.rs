//! Relational→relational sculpting transformations.
//!
//! "An example transformation of this last kind is the well known
//! projection/join transformation used to obtain relations in third normal
//! form or conversely to combine relations into one relation. The lossless
//! rules of this transformation include a multivalued dependency for the
//! projection transformation and an equality constraint for the inverse
//! join transformation" (§4.1).
//!
//! [`SplitTable`] is the projection direction, [`MergeTables`] the join
//! direction. Both carry executable row-level state maps and emit their
//! lossless rules as extended constraints, so state equivalence is
//! demonstrable on concrete states.

use ridl_relational::{
    Column, ColumnSelection, RelConstraintKind, RelSchema, RelState, Table, TableId,
};

use crate::TransformError;

/// Rebuilds a schema without table `removed`, remapping table ids in every
/// kept constraint. Constraints that *mention* the removed table are
/// dropped and returned separately so the caller can reattach equivalents.
fn remove_table(
    schema: &RelSchema,
    removed: &[TableId],
) -> (
    RelSchema,
    Vec<ridl_relational::RelConstraint>,
    Vec<Option<TableId>>,
) {
    let mut out = RelSchema::new(schema.name.clone());
    out.domains = schema.domains.clone();
    let mut remap: Vec<Option<TableId>> = Vec::with_capacity(schema.tables.len());
    for (tid, t) in schema.tables() {
        if removed.contains(&tid) {
            remap.push(None);
        } else {
            remap.push(Some(out.add_table(t.clone())));
        }
    }
    let mut dropped = Vec::new();
    for c in &schema.constraints {
        if c.kind.tables().iter().any(|t| removed.contains(t)) {
            dropped.push(c.clone());
            continue;
        }
        let mut kind = c.kind.clone();
        remap_kind(&mut kind, &remap);
        out.add_constraint(ridl_relational::RelConstraint::new(c.name.clone(), kind));
    }
    (out, dropped, remap)
}

fn remap_tid(t: &mut TableId, remap: &[Option<TableId>]) {
    *t = remap[t.index()].expect("remapped constraint must not touch removed tables");
}

fn remap_sel(s: &mut ColumnSelection, remap: &[Option<TableId>]) {
    remap_tid(&mut s.table, remap);
}

fn remap_kind(kind: &mut RelConstraintKind, remap: &[Option<TableId>]) {
    match kind {
        RelConstraintKind::PrimaryKey { table, .. }
        | RelConstraintKind::CandidateKey { table, .. }
        | RelConstraintKind::DependentExistence { table, .. }
        | RelConstraintKind::EqualExistence { table, .. }
        | RelConstraintKind::CheckValue { table, .. }
        | RelConstraintKind::CoverExistence { table, .. }
        | RelConstraintKind::Frequency { table, .. } => remap_tid(table, remap),
        RelConstraintKind::ForeignKey {
            table, ref_table, ..
        } => {
            remap_tid(table, remap);
            remap_tid(ref_table, remap);
        }
        RelConstraintKind::EqualityView { left, right } => {
            remap_sel(left, remap);
            remap_sel(right, remap);
        }
        RelConstraintKind::SubsetView { sub, sup } => {
            remap_sel(sub, remap);
            remap_sel(sup, remap);
        }
        RelConstraintKind::ExclusionView { items } => {
            for s in items {
                remap_sel(s, remap);
            }
        }
        RelConstraintKind::TotalUnionView { over, items } => {
            remap_sel(over, remap);
            for s in items {
                remap_sel(s, remap);
            }
        }
        RelConstraintKind::ConditionalEquality { table, sub, .. } => {
            remap_tid(table, remap);
            remap_sel(sub, remap);
        }
    }
}

/// **PROJECT/SPLIT**: splits `table` into two tables sharing its key; the
/// direction that produces normalized relations.
#[derive(Clone, Debug)]
pub struct SplitTable {
    /// The table to split.
    pub table: TableId,
    /// The shared key columns (must be a declared key of the table).
    pub key: Vec<u32>,
    /// Non-key columns going to the first part.
    pub group_a: Vec<u32>,
    /// Non-key columns going to the second part.
    pub group_b: Vec<u32>,
}

/// The outcome of a split.
#[derive(Clone, Debug)]
pub struct SplitResult {
    /// The transformed schema.
    pub schema: RelSchema,
    /// The two parts (key+group_a, key+group_b).
    pub parts: (TableId, TableId),
    /// Names of the lossless-rule constraints added (the equality view that
    /// allows the inverse join).
    pub lossless_rules: Vec<String>,
    /// Table remap from the old schema (split table maps to `None`).
    pub remap: Vec<Option<TableId>>,
}

impl SplitTable {
    /// Applies the split.
    pub fn apply(&self, schema: &RelSchema) -> Result<SplitResult, TransformError> {
        let _span = ridl_obs::span::enter("transform.r2r.split_table");
        let table = schema.table(self.table);
        let keys = schema.keys_of(self.table);
        if !keys.contains(&self.key.as_slice()) {
            return Err(TransformError::new(format!(
                "{:?} is not a declared key of {}",
                self.key, table.name
            )));
        }
        let mut covered: Vec<u32> = self.key.clone();
        covered.extend(&self.group_a);
        covered.extend(&self.group_b);
        covered.sort_unstable();
        covered.dedup();
        if covered.len() != table.arity() || covered.iter().any(|c| *c as usize >= table.arity()) {
            return Err(TransformError::new(
                "key and groups must partition the table's columns",
            ));
        }
        if self
            .group_a
            .iter()
            .chain(&self.group_b)
            .chain(&self.key)
            .any(|c| table.column(*c).nullable)
        {
            return Err(TransformError::new(
                "split requires NOT NULL columns (merge nullable groups back first)",
            ));
        }
        let blockers = schema
            .constraints_of(self.table)
            .iter()
            .filter(|c| {
                !matches!(
                    c.kind,
                    RelConstraintKind::PrimaryKey { .. } | RelConstraintKind::CandidateKey { .. }
                )
            })
            .count();
        if blockers > 0 {
            return Err(TransformError::new(format!(
                "{} other constraints reference {}; split them manually first",
                blockers, table.name
            )));
        }

        let part = |suffix: &str, group: &[u32]| {
            let mut cols: Vec<Column> = self.key.iter().map(|c| table.column(*c).clone()).collect();
            cols.extend(group.iter().map(|c| table.column(*c).clone()));
            Table::new(format!("{}_{suffix}", table.name), cols)
        };
        let t_a = part("a", &self.group_a);
        let t_b = part("b", &self.group_b);

        let (mut out, _dropped, remap) = remove_table(schema, &[self.table]);
        let a = out.add_table(t_a);
        let b = out.add_table(t_b);
        let key_ords: Vec<u32> = (0..self.key.len() as u32).collect();
        out.add_named(RelConstraintKind::PrimaryKey {
            table: a,
            cols: key_ords.clone(),
        });
        out.add_named(RelConstraintKind::PrimaryKey {
            table: b,
            cols: key_ords.clone(),
        });
        // Lossless rule: the two key projections coincide, so the natural
        // join reconstructs the original relation exactly.
        let rule = out.add_named(RelConstraintKind::EqualityView {
            left: ColumnSelection::of(a, key_ords.clone()),
            right: ColumnSelection::of(b, key_ords),
        });
        Ok(SplitResult {
            schema: out,
            parts: (a, b),
            lossless_rules: vec![rule],
            remap,
        })
    }

    /// Forward state map: project each row onto the two parts.
    pub fn map_state(&self, old: &RelSchema, out: &SplitResult, state: &RelState) -> RelState {
        let mut st = RelState::with_tables(out.schema.tables.len());
        // Copy untouched tables through the remap.
        for (tid, _) in old.tables() {
            if let Some(new_tid) = out.remap[tid.index()] {
                for row in state.rows(tid) {
                    st.insert(new_tid, row.clone());
                }
            }
        }
        for row in state.rows(self.table) {
            let proj = |group: &[u32]| {
                self.key
                    .iter()
                    .chain(group.iter())
                    .map(|c| row[*c as usize].clone())
                    .collect::<Vec<_>>()
            };
            st.insert(out.parts.0, proj(&self.group_a));
            st.insert(out.parts.1, proj(&self.group_b));
        }
        st
    }

    /// Backward state map: natural join of the parts on the key.
    pub fn unmap_state(&self, old: &RelSchema, out: &SplitResult, state: &RelState) -> RelState {
        let mut st = RelState::with_tables(old.tables.len());
        for (tid, _) in old.tables() {
            if let Some(new_tid) = out.remap[tid.index()] {
                for row in state.rows(new_tid) {
                    st.insert(tid, row.clone());
                }
            }
        }
        let nk = self.key.len();
        let arity = old.table(self.table).arity();
        for row_a in state.rows(out.parts.0) {
            for row_b in state.rows(out.parts.1) {
                if row_a[..nk] != row_b[..nk] {
                    continue;
                }
                let mut joined = vec![None; arity];
                for (i, c) in self.key.iter().enumerate() {
                    joined[*c as usize] = row_a[i].clone();
                }
                for (i, c) in self.group_a.iter().enumerate() {
                    joined[*c as usize] = row_a[nk + i].clone();
                }
                for (i, c) in self.group_b.iter().enumerate() {
                    joined[*c as usize] = row_b[nk + i].clone();
                }
                st.insert(self.table, joined);
            }
        }
        st
    }
}

/// **JOIN/MERGE**: combines a secondary table into a primary one along their
/// shared key — the denormalising direction the paper motivates with
/// Inmon's I/O argument (§4). When the secondary's key set is only a
/// *subset* of the primary's (partial facts), the merged columns become
/// nullable and an equal-existence constraint controls the null pattern.
#[derive(Clone, Debug)]
pub struct MergeTables {
    /// The surviving (primary) table.
    pub primary: TableId,
    /// The table merged into it.
    pub secondary: TableId,
    /// Matching key columns: `(primary_col, secondary_col)` pairs.
    pub on: Vec<(u32, u32)>,
    /// True when every primary key value is known to appear in the
    /// secondary (an equality lossless rule): merged columns stay NOT NULL.
    pub total: bool,
}

/// The outcome of a merge.
#[derive(Clone, Debug)]
pub struct MergeResult {
    /// The transformed schema.
    pub schema: RelSchema,
    /// The merged table.
    pub merged: TableId,
    /// Ordinals (in the merged table) of the columns absorbed from the
    /// secondary, in the secondary's non-key column order.
    pub absorbed: Vec<u32>,
    /// Names of the lossless-rule constraints added.
    pub lossless_rules: Vec<String>,
    /// Table remap from the old schema.
    pub remap: Vec<Option<TableId>>,
}

impl MergeTables {
    /// Applies the merge.
    pub fn apply(&self, schema: &RelSchema) -> Result<MergeResult, TransformError> {
        let _span = ridl_obs::span::enter("transform.r2r.merge_tables");
        let prim = schema.table(self.primary).clone();
        let sec = schema.table(self.secondary).clone();
        if self.primary == self.secondary {
            return Err(TransformError::new("cannot merge a table with itself"));
        }
        let sec_keys = schema.keys_of(self.secondary);
        let sec_key: Vec<u32> = self.on.iter().map(|(_, s)| *s).collect();
        if !sec_keys.contains(&sec_key.as_slice()) {
            return Err(TransformError::new(format!(
                "the join columns are not a key of {}; merging would duplicate rows",
                sec.name
            )));
        }
        let blockers = schema
            .constraints_of(self.primary)
            .iter()
            .chain(schema.constraints_of(self.secondary).iter())
            .filter(|c| {
                !matches!(
                    c.kind,
                    RelConstraintKind::PrimaryKey { .. } | RelConstraintKind::CandidateKey { .. }
                )
            })
            .count();
        if blockers > 0 {
            return Err(TransformError::new(
                "other constraints reference the tables; rewrite them first",
            ));
        }

        let sec_nonkey: Vec<u32> = (0..sec.arity() as u32)
            .filter(|c| !sec_key.contains(c))
            .collect();
        let mut cols = prim.columns.clone();
        let mut absorbed = Vec::new();
        for c in &sec_nonkey {
            let mut col = sec.column(*c).clone();
            if !self.total {
                col.nullable = true;
            }
            if cols.iter().any(|x| x.name == col.name) {
                col.name = format!("{}_{}", sec.name, col.name);
            }
            absorbed.push(cols.len() as u32);
            cols.push(col);
        }

        let (mut out, _dropped, remap) = remove_table(schema, &[self.primary, self.secondary]);
        let merged = out.add_table(Table::new(prim.name.clone(), cols));
        // Restore the primary's (first declared) key.
        if let Some(k) = schema.keys_of(self.primary).first() {
            out.add_named(RelConstraintKind::PrimaryKey {
                table: merged,
                cols: k.to_vec(),
            });
        }
        let mut rules = Vec::new();
        if !self.total && absorbed.len() > 1 {
            // Lossless rule: absorbed columns exist together, so the inverse
            // projection can tell "no secondary row" from partial data.
            rules.push(out.add_named(RelConstraintKind::EqualExistence {
                table: merged,
                cols: absorbed.clone(),
            }));
        }
        Ok(MergeResult {
            schema: out,
            merged,
            absorbed,
            lossless_rules: rules,
            remap,
        })
    }

    /// Forward state map: left-outer join of primary with secondary.
    pub fn map_state(&self, old: &RelSchema, out: &MergeResult, state: &RelState) -> RelState {
        let mut st = RelState::with_tables(out.schema.tables.len());
        for (tid, _) in old.tables() {
            if let Some(new_tid) = out.remap[tid.index()] {
                for row in state.rows(tid) {
                    st.insert(new_tid, row.clone());
                }
            }
        }
        let sec = old.table(self.secondary);
        let sec_key: Vec<u32> = self.on.iter().map(|(_, s)| *s).collect();
        let sec_nonkey: Vec<u32> = (0..sec.arity() as u32)
            .filter(|c| !sec_key.contains(c))
            .collect();
        for prow in state.rows(self.primary) {
            let mut merged_row = prow.clone();
            let matching = state.rows(self.secondary).iter().find(|srow| {
                self.on
                    .iter()
                    .all(|(p, s)| prow[*p as usize] == srow[*s as usize])
            });
            match matching {
                Some(srow) => {
                    for c in &sec_nonkey {
                        merged_row.push(srow[*c as usize].clone());
                    }
                }
                None => {
                    for _ in &sec_nonkey {
                        merged_row.push(None);
                    }
                }
            }
            st.insert(out.merged, merged_row);
        }
        st
    }

    /// Backward state map: project the merged table back into the two
    /// originals; rows whose absorbed columns are all NULL contribute no
    /// secondary row.
    pub fn unmap_state(&self, old: &RelSchema, out: &MergeResult, state: &RelState) -> RelState {
        let mut st = RelState::with_tables(old.tables.len());
        for (tid, _) in old.tables() {
            if let Some(new_tid) = out.remap[tid.index()] {
                for row in state.rows(new_tid) {
                    st.insert(tid, row.clone());
                }
            }
        }
        let prim_arity = old.table(self.primary).arity();
        let sec = old.table(self.secondary);
        let sec_key: Vec<u32> = self.on.iter().map(|(_, s)| *s).collect();
        let sec_nonkey: Vec<u32> = (0..sec.arity() as u32)
            .filter(|c| !sec_key.contains(c))
            .collect();
        for row in state.rows(out.merged) {
            st.insert(self.primary, row[..prim_arity].to_vec());
            let absorbed_vals: Vec<_> = out
                .absorbed
                .iter()
                .map(|c| row[*c as usize].clone())
                .collect();
            if absorbed_vals.iter().all(Option::is_none) && !self.total {
                continue;
            }
            let mut srow = vec![None; sec.arity()];
            for (p, s) in &self.on {
                srow[*s as usize] = row[*p as usize].clone();
            }
            for (i, c) in sec_nonkey.iter().enumerate() {
                srow[*c as usize] = absorbed_vals[i].clone();
            }
            st.insert(self.secondary, srow);
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::{DataType, Value};
    use ridl_relational::validate::is_valid;

    fn v(s: &str) -> Option<Value> {
        Some(Value::str(s))
    }

    fn wide_schema() -> (RelSchema, TableId) {
        let mut s = RelSchema::new("w");
        let d = s.domain("D", DataType::Char(10));
        let t = s.add_table(Table::new(
            "Paper",
            vec![
                Column::not_null("Paper_Id", d),
                Column::not_null("Title", d),
                Column::not_null("Status", d),
            ],
        ));
        s.add_named(RelConstraintKind::PrimaryKey {
            table: t,
            cols: vec![0],
        });
        (s, t)
    }

    #[test]
    fn split_round_trips() {
        let (s, t) = wide_schema();
        let split = SplitTable {
            table: t,
            key: vec![0],
            group_a: vec![1],
            group_b: vec![2],
        };
        let out = split.apply(&s).unwrap();
        assert_eq!(out.schema.tables.len(), 2);
        assert_eq!(out.lossless_rules.len(), 1);
        assert!(out.schema.check_ids().is_empty());

        let mut st = RelState::with_tables(1);
        st.insert(t, vec![v("P1"), v("A"), v("ok")]);
        st.insert(t, vec![v("P2"), v("B"), v("no")]);
        let fwd = split.map_state(&s, &out, &st);
        assert!(
            is_valid(&out.schema, &fwd),
            "{:?}",
            ridl_relational::validate(&out.schema, &fwd)
        );
        let back = split.unmap_state(&s, &out, &fwd);
        assert_eq!(back, st);
    }

    #[test]
    fn split_requires_declared_key() {
        let (s, t) = wide_schema();
        let split = SplitTable {
            table: t,
            key: vec![1],
            group_a: vec![0],
            group_b: vec![2],
        };
        assert!(split.apply(&s).is_err());
    }

    #[test]
    fn split_requires_partition() {
        let (s, t) = wide_schema();
        let bad = SplitTable {
            table: t,
            key: vec![0],
            group_a: vec![1],
            group_b: vec![1], // overlaps, misses 2
        };
        assert!(bad.apply(&s).is_err());
    }

    fn two_tables() -> (RelSchema, TableId, TableId) {
        let mut s = RelSchema::new("m");
        let d = s.domain("D", DataType::Char(10));
        let paper = s.add_table(Table::new(
            "Paper",
            vec![
                Column::not_null("Paper_Id", d),
                Column::not_null("Title", d),
            ],
        ));
        let pp = s.add_table(Table::new(
            "Program_Paper",
            vec![
                Column::not_null("Paper_Id", d),
                Column::not_null("Session", d),
                Column::not_null("Presenter", d),
            ],
        ));
        s.add_named(RelConstraintKind::PrimaryKey {
            table: paper,
            cols: vec![0],
        });
        s.add_named(RelConstraintKind::PrimaryKey {
            table: pp,
            cols: vec![0],
        });
        (s, paper, pp)
    }

    #[test]
    fn partial_merge_round_trips_with_null_pattern() {
        let (s, paper, pp) = two_tables();
        let merge = MergeTables {
            primary: paper,
            secondary: pp,
            on: vec![(0, 0)],
            total: false,
        };
        let out = merge.apply(&s).unwrap();
        assert_eq!(out.schema.tables.len(), 1);
        // Equal-existence lossless rule over the two absorbed columns.
        assert_eq!(out.lossless_rules.len(), 1);
        let merged_table = out.schema.table(out.merged);
        assert_eq!(merged_table.arity(), 4);
        assert!(merged_table.column(out.absorbed[0]).nullable);

        let mut st = RelState::with_tables(2);
        st.insert(paper, vec![v("P1"), v("A")]);
        st.insert(paper, vec![v("P2"), v("B")]);
        st.insert(pp, vec![v("P1"), v("S1"), v("alice")]);
        let fwd = merge.map_state(&s, &out, &st);
        assert!(
            is_valid(&out.schema, &fwd),
            "{:?}",
            ridl_relational::validate(&out.schema, &fwd)
        );
        assert_eq!(fwd.rows(out.merged).len(), 2);
        let back = merge.unmap_state(&s, &out, &fwd);
        assert_eq!(back, st);
    }

    #[test]
    fn total_merge_keeps_not_null() {
        let (s, paper, pp) = two_tables();
        let merge = MergeTables {
            primary: paper,
            secondary: pp,
            on: vec![(0, 0)],
            total: true,
        };
        let out = merge.apply(&s).unwrap();
        assert!(
            !out.schema
                .table(out.merged)
                .column(out.absorbed[0])
                .nullable
        );
        let mut st = RelState::with_tables(2);
        st.insert(paper, vec![v("P1"), v("A")]);
        st.insert(pp, vec![v("P1"), v("S1"), v("alice")]);
        let fwd = merge.map_state(&s, &out, &st);
        let back = merge.unmap_state(&s, &out, &fwd);
        assert_eq!(back, st);
    }

    #[test]
    fn merge_rejects_non_key_join() {
        let (s, paper, pp) = two_tables();
        let merge = MergeTables {
            primary: paper,
            secondary: pp,
            on: vec![(0, 1)], // Session is not a key of Program_Paper
            total: false,
        };
        assert!(merge.apply(&s).is_err());
    }

    #[test]
    fn merge_then_split_is_identity_on_schema_shape() {
        let (s, paper, pp) = two_tables();
        let merge = MergeTables {
            primary: paper,
            secondary: pp,
            on: vec![(0, 0)],
            total: true,
        };
        let out = merge.apply(&s).unwrap();
        let split = SplitTable {
            table: out.merged,
            key: vec![0],
            group_a: vec![1],
            group_b: vec![2, 3],
        };
        // The equal-existence rule was not added (total), so only keys
        // reference the merged table and the split applies.
        let back = split.apply(&out.schema).unwrap();
        assert_eq!(back.schema.tables.len(), 2);
    }
}

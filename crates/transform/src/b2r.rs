//! The binary→relational pivot: "transformations of the second kind
//! transform such a canonical binary schema into a 'binary' relational
//! schema" (§4.1).
//!
//! Every fact type becomes a two-column table; uniqueness constraints become
//! keys; the set-algebraic constraints become view constraints over the
//! role columns. Non-lexical columns range over the surrogate artifact
//! domain until the lexicalisation step replaces them. The pivot carries
//! executable state maps in both directions, so its losslessness is tested,
//! not assumed.

use std::collections::BTreeSet;

use ridl_brm::{
    ConstraintKind, DataType, FactTypeId, ObjectTypeId, Population, RoleOrSublink, RoleRef, Schema,
    Side,
};
use ridl_relational::{
    Column, ColumnSelection, RelConstraintKind, RelSchema, RelState, Table, TableId,
};

use crate::TransformError;

/// The structural map of a pivot: which table realises which fact type, and
/// how object-type populations are canonically selected.
#[derive(Clone, Debug)]
pub struct BinaryRelMap {
    /// `fact_tables[fact.index()]` is the fact's table; columns 0/1 hold the
    /// left/right role values.
    pub fact_tables: Vec<TableId>,
    /// For each object type, the canonical selection of its population:
    /// a `(fact, side)` whose role is total on the type, when one exists.
    pub canonical_pop: Vec<Option<RoleRef>>,
}

impl BinaryRelMap {
    /// Forward state map `g`: a binary population becomes one two-column
    /// row set per fact type.
    pub fn map_state(&self, schema: &Schema, pop: &Population) -> RelState {
        let mut st = RelState::with_tables(self.fact_tables.len());
        for (fid, _) in schema.fact_types() {
            let t = self.fact_tables[fid.index()];
            for (l, r) in pop.facts_of(fid) {
                st.insert(t, vec![Some(l.clone()), Some(r.clone())]);
            }
        }
        st
    }

    /// Backward state map `g⁻¹`: fact populations are read back from the
    /// tables; object-type populations are reconstructed as the union of
    /// their role projections (exact on fact-closed states, see
    /// [`crate::is_fact_closed`]).
    pub fn unmap_state(&self, schema: &Schema, state: &RelState) -> Population {
        let mut pop = Population::new();
        for (fid, ft) in schema.fact_types() {
            let t = self.fact_tables[fid.index()];
            for row in state.rows(t) {
                let (Some(l), Some(r)) = (&row[0], &row[1]) else {
                    continue;
                };
                pop.add_fact(fid, l.clone(), r.clone());
                pop.add_object(ft.player(Side::Left), l.clone());
                pop.add_object(ft.player(Side::Right), r.clone());
            }
        }
        pop
    }

    /// The column selection realising one role's population.
    pub fn role_selection(&self, role: RoleRef) -> ColumnSelection {
        ColumnSelection::of(
            self.fact_tables[role.fact.index()],
            vec![role.side.index() as u32],
        )
    }
}

/// Applies the pivot to a canonical binary schema (no LOT-NOLOTs, no
/// sublinks — run the [`crate::b2b`] transformations first).
pub fn binary_relational(schema: &Schema) -> Result<(RelSchema, BinaryRelMap), TransformError> {
    let _span = ridl_obs::span::enter("transform.b2r.binary_relational");
    for (_, ot) in schema.object_types() {
        if ot.kind.is_lot_nolot() {
            return Err(TransformError::new(format!(
                "LOT-NOLOT {} present; expand it first (canonical form required)",
                ot.name
            )));
        }
    }
    if schema.num_sublinks() > 0 {
        return Err(TransformError::new(
            "sublinks present; eliminate them first (canonical form required)",
        ));
    }

    let mut rel = RelSchema::new(schema.name.clone());
    let mut fact_tables = Vec::with_capacity(schema.num_fact_types());

    // Tables and keys.
    for (fid, ft) in schema.fact_types() {
        let mut cols = Vec::new();
        for side in Side::BOTH {
            let player = ft.player(side);
            let dt = schema
                .kind_of(player)
                .data_type()
                .unwrap_or(DataType::Surrogate);
            let dom = rel.domain(&format!("D_{}", schema.ot_name(player)), dt);
            let role = ft.role(side);
            let mut name = if role.name.is_empty() {
                schema.ot_name(player).to_owned()
            } else {
                role.name.clone()
            };
            if side == Side::Right && cols.iter().any(|c: &Column| c.name == name) {
                name.push_str("_2");
            }
            cols.push(Column::not_null(name, dom));
        }
        let t = rel.add_table(Table::new(ft.name.clone(), cols));
        fact_tables.push(t);
        let (lu, ru) = schema.fact_multiplicity(fid);
        match (lu, ru) {
            (true, true) => {
                rel.add_named(RelConstraintKind::PrimaryKey {
                    table: t,
                    cols: vec![0],
                });
                rel.add_named(RelConstraintKind::CandidateKey {
                    table: t,
                    cols: vec![1],
                });
            }
            (true, false) => {
                rel.add_named(RelConstraintKind::PrimaryKey {
                    table: t,
                    cols: vec![0],
                });
            }
            (false, true) => {
                rel.add_named(RelConstraintKind::PrimaryKey {
                    table: t,
                    cols: vec![1],
                });
            }
            (false, false) => {
                rel.add_named(RelConstraintKind::PrimaryKey {
                    table: t,
                    cols: vec![0, 1],
                });
            }
        }
    }

    // Canonical population selections: a total role per object type.
    let mut canonical_pop: Vec<Option<RoleRef>> = vec![None; schema.num_object_types()];
    for (_, c) in schema.constraints() {
        if let ConstraintKind::Total { over, items } = &c.kind {
            if let [RoleOrSublink::Role(r)] = items.as_slice() {
                if canonical_pop[over.index()].is_none() {
                    canonical_pop[over.index()] = Some(*r);
                }
            }
        }
    }

    let map = BinaryRelMap {
        fact_tables,
        canonical_pop,
    };

    // View constraints from the remaining binary constraints.
    for (_, c) in schema.constraints() {
        match &c.kind {
            ConstraintKind::Uniqueness { .. } => { /* realised as keys above */ }
            ConstraintKind::Total { over, items } => {
                let Some(canon) = map.canonical_pop[over.index()] else {
                    continue; // no canonical population to constrain against
                };
                // Trivial when the constraint *is* the canonical total role.
                if let [RoleOrSublink::Role(r)] = items.as_slice() {
                    if *r == canon {
                        continue;
                    }
                }
                let over_sel = map.role_selection(canon);
                let item_sels: Vec<ColumnSelection> = items
                    .iter()
                    .filter_map(|i| match i {
                        RoleOrSublink::Role(r) => Some(map.role_selection(*r)),
                        RoleOrSublink::Sublink(_) => None,
                    })
                    .collect();
                if item_sels.len() == items.len() {
                    rel.add_named(RelConstraintKind::TotalUnionView {
                        over: over_sel,
                        items: item_sels,
                    });
                }
            }
            ConstraintKind::Exclusion { items } => {
                let sels: Vec<ColumnSelection> = items
                    .iter()
                    .filter_map(|i| match i {
                        RoleOrSublink::Role(r) => Some(map.role_selection(*r)),
                        RoleOrSublink::Sublink(_) => None,
                    })
                    .collect();
                if sels.len() == items.len() && sels.len() >= 2 {
                    rel.add_named(RelConstraintKind::ExclusionView { items: sels });
                }
            }
            ConstraintKind::Subset { sub, sup } if sub.len() == 1 && sup.len() == 1 => {
                rel.add_named(RelConstraintKind::SubsetView {
                    sub: map.role_selection(sub[0]),
                    sup: map.role_selection(sup[0]),
                });
            }
            ConstraintKind::Equality { a, b } if a.len() == 1 && b.len() == 1 => {
                rel.add_named(RelConstraintKind::EqualityView {
                    left: map.role_selection(a[0]),
                    right: map.role_selection(b[0]),
                });
            }
            ConstraintKind::Subset { .. } | ConstraintKind::Equality { .. } => {
                // Compound sequences need joins; the grouped mapper handles
                // them — at the pivot level they stay conceptual.
            }
            ConstraintKind::Cardinality { role, min, max } => {
                rel.add_named(RelConstraintKind::Frequency {
                    table: map.fact_tables[role.fact.index()],
                    cols: vec![role.side.index() as u32],
                    min: *min,
                    max: *max,
                });
            }
            ConstraintKind::Value { over, values } => {
                for role in schema.roles_of(*over) {
                    rel.add_named(RelConstraintKind::CheckValue {
                        table: map.fact_tables[role.fact.index()],
                        col: role.side.index() as u32,
                        values: values.clone(),
                    });
                }
            }
        }
    }

    Ok((rel, map))
}

/// Convenience for tests: the set of object types whose population is
/// recoverable from the pivot (those with at least one role).
pub fn recoverable_object_types(schema: &Schema) -> BTreeSet<ObjectTypeId> {
    let mut out = BTreeSet::new();
    for (fid, ft) in schema.fact_types() {
        let _: FactTypeId = fid;
        out.insert(ft.player(Side::Left));
        out.insert(ft.player(Side::Right));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::Value;
    use ridl_relational::validate::{is_valid, validate};

    fn canonical_schema() -> Schema {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        b.lot("Title", DataType::VarChar(40)).unwrap();
        b.fact("titled", ("has_title", "Paper"), ("title_of", "Title"))
            .unwrap();
        b.unique("titled", Side::Left).unwrap();
        b.total_role("titled", Side::Left).unwrap();
        b.nolot("Person").unwrap();
        identify(&mut b, "Person", "Name", DataType::Char(30)).unwrap();
        b.fact("writes", ("author_of", "Person"), ("written_by", "Paper"))
            .unwrap();
        b.unique_pair("writes").unwrap();
        b.finish().unwrap()
    }

    fn populated(s: &Schema) -> Population {
        let fid = s.fact_type_by_name("Paper_has_Paper_Id").unwrap();
        let titled = s.fact_type_by_name("titled").unwrap();
        let pname = s.fact_type_by_name("Person_has_Name").unwrap();
        let writes = s.fact_type_by_name("writes").unwrap();
        let mut p = Population::new();
        p.add_fact_closed(s, fid, Value::entity(1), Value::str("P1"));
        p.add_fact_closed(s, fid, Value::entity(2), Value::str("P2"));
        p.add_fact_closed(s, titled, Value::entity(1), Value::str("On NIAM"));
        p.add_fact_closed(s, titled, Value::entity(2), Value::str("On RIDL"));
        p.add_fact_closed(s, pname, Value::entity(10), Value::str("De Troyer"));
        p.add_fact_closed(s, writes, Value::entity(10), Value::entity(1));
        p.add_fact_closed(s, writes, Value::entity(10), Value::entity(2));
        p
    }

    #[test]
    fn pivot_structure() {
        let s = canonical_schema();
        let (rel, map) = binary_relational(&s).unwrap();
        assert_eq!(rel.tables.len(), s.num_fact_types());
        for (_, t) in rel.tables() {
            assert_eq!(t.arity(), 2);
        }
        assert!(rel.check_ids().is_empty(), "{:?}", rel.check_ids());
        // writes is m:n: PK over both columns.
        let writes_t = map.fact_tables[s.fact_type_by_name("writes").unwrap().index()];
        assert_eq!(rel.primary_key_of(writes_t), Some(&[0u32, 1][..]));
        // identifying fact is 1:1: PK + candidate key.
        let id_t = map.fact_tables[s.fact_type_by_name("Paper_has_Paper_Id").unwrap().index()];
        assert_eq!(rel.keys_of(id_t).len(), 2);
    }

    #[test]
    fn pivot_round_trips_states() {
        let s = canonical_schema();
        let (rel, map) = binary_relational(&s).unwrap();
        let pop = populated(&s);
        assert!(crate::is_fact_closed(&s, &pop));
        let st = map.map_state(&s, &pop);
        assert!(is_valid(&rel, &st), "{:?}", validate(&rel, &st));
        let back = map.unmap_state(&s, &st);
        assert_eq!(back.compacted(), pop.compacted());
    }

    #[test]
    fn pivot_requires_canonical_form() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.sublink("B", "A").unwrap();
        let s = b.finish().unwrap();
        assert!(binary_relational(&s).is_err());

        let mut b = SchemaBuilder::new("s");
        b.lot_nolot("Date", DataType::Date).unwrap();
        let s = b.finish().unwrap();
        assert!(binary_relational(&s).is_err());
    }

    #[test]
    fn constraint_violations_surface_in_pivot_state() {
        let s = canonical_schema();
        let (rel, map) = binary_relational(&s).unwrap();
        let titled_t = map.fact_tables[s.fact_type_by_name("titled").unwrap().index()];
        let mut st = map.map_state(&s, &populated(&s));
        // Give paper e1 a second title: violates the PK derived from the
        // left-role uniqueness.
        st.insert(
            titled_t,
            vec![Some(Value::entity(1)), Some(Value::str("Another"))],
        );
        assert!(!is_valid(&rel, &st));
    }

    #[test]
    fn value_and_frequency_carried() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("R").unwrap();
        b.lot("Grade", DataType::Char(1)).unwrap();
        b.fact("graded", ("of", "R"), ("is", "Grade")).unwrap();
        b.unique("graded", Side::Left).unwrap();
        b.value_constraint("Grade", vec![Value::str("A"), Value::str("B")])
            .unwrap();
        b.cardinality("graded", Side::Right, 0, Some(5)).unwrap();
        let s = b.finish().unwrap();
        let (rel, _) = binary_relational(&s).unwrap();
        assert!(rel
            .constraints
            .iter()
            .any(|c| matches!(c.kind, RelConstraintKind::CheckValue { .. })));
        assert!(rel
            .constraints
            .iter()
            .any(|c| matches!(c.kind, RelConstraintKind::Frequency { .. })));
    }

    #[test]
    fn exclusion_and_subset_carried() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Person").unwrap();
        b.nolot("Paper").unwrap();
        b.fact("writes", ("w", "Person"), ("wb", "Paper")).unwrap();
        b.fact("reviews", ("r", "Person"), ("rb", "Paper")).unwrap();
        b.unique_pair("writes").unwrap();
        b.unique_pair("reviews").unwrap();
        b.exclusion_roles(&[("writes", Side::Right), ("reviews", Side::Right)])
            .unwrap();
        b.subset(&[("reviews", Side::Left)], &[("writes", Side::Left)])
            .unwrap();
        let s = b.finish().unwrap();
        let (rel, map) = binary_relational(&s).unwrap();
        assert!(rel
            .constraints
            .iter()
            .any(|c| matches!(c.kind, RelConstraintKind::ExclusionView { .. })));
        assert!(rel
            .constraints
            .iter()
            .any(|c| matches!(c.kind, RelConstraintKind::SubsetView { .. })));
        // And they are enforced on states.
        let writes = s.fact_type_by_name("writes").unwrap();
        let reviews = s.fact_type_by_name("reviews").unwrap();
        let mut pop = Population::new();
        pop.add_fact_closed(&s, writes, Value::entity(1), Value::entity(7));
        pop.add_fact_closed(&s, reviews, Value::entity(1), Value::entity(7));
        let st = map.map_state(&s, &pop);
        assert!(!is_valid(&rel, &st)); // same paper both written and reviewed
    }
}

//! Binary→binary basic transformations: "convert a binary schema into its
//! most canonical form. They eliminate superfluous definitions, reduce
//! constraints to their canonical form and replace non-elementary concepts
//! by their definitions" (§4.1).

use std::collections::{BTreeMap, HashMap};

use ridl_brm::{
    Constraint, ConstraintKind, FactType, FactTypeId, ObjectType, ObjectTypeId, ObjectTypeKind,
    Population, Role, RoleOrSublink, RoleRef, Schema, Side, SublinkId, Value,
};

use crate::TransformError;

fn max_entity_id(pop: &Population, schema: &Schema) -> u64 {
    let mut max = 0;
    for (oid, _) in schema.object_types() {
        for v in pop.objects_of(oid) {
            if let Some(e) = v.as_entity() {
                max = max.max(e.0);
            }
        }
    }
    for (fid, _) in schema.fact_types() {
        for (l, r) in pop.facts_of(fid) {
            for v in [l, r] {
                if let Some(e) = v.as_entity() {
                    max = max.max(e.0);
                }
            }
        }
    }
    max
}

/// **EXPAND LOT-NOLOT**: replaces a hybrid LOT-NOLOT by a proper NOLOT plus
/// a bridging LOT and a 1:1 total naming fact — "replace non-elementary
/// concepts by their definitions" (§4.1). The LOT-NOLOT notation is a
/// "notational convenience" (§2); the canonical form distinguishes entity
/// and representation explicitly.
#[derive(Clone, Copy, Debug)]
pub struct ExpandLotNolot {
    /// The LOT-NOLOT to expand.
    pub ot: ObjectTypeId,
}

/// The outcome of [`ExpandLotNolot::apply`].
#[derive(Clone, Debug)]
pub struct ExpandedLotNolot {
    /// The transformed schema.
    pub schema: Schema,
    /// The new bridging LOT.
    pub lot: ObjectTypeId,
    /// The new 1:1 naming fact (left role: the NOLOT, right role: the LOT).
    pub bridge: FactTypeId,
}

impl ExpandLotNolot {
    /// Applies the expansion.
    pub fn apply(&self, schema: &Schema) -> Result<ExpandedLotNolot, TransformError> {
        let _span = ridl_obs::span::enter("transform.b2b.expand_lot_nolot");
        let ot = schema.object_type(self.ot);
        let ObjectTypeKind::LotNolot(dt) = ot.kind else {
            return Err(TransformError::new(format!(
                "{} is not a LOT-NOLOT",
                ot.name
            )));
        };
        let mut s = schema.clone();
        let name = ot.name.clone();
        // Re-kind the object type in place; ids stay stable.
        let s2 = {
            let mut builder = Schema::new(s.name.clone());
            for (oid, o) in s.object_types() {
                let kind = if oid == self.ot {
                    ObjectTypeKind::Nolot
                } else {
                    o.kind
                };
                builder.push_object_type(ObjectType::new(o.name.clone(), kind));
            }
            for (_, f) in s.fact_types() {
                builder.push_fact_type(f.clone());
            }
            for (_, sl) in s.sublinks() {
                builder.push_sublink(*sl);
            }
            for (_, c) in s.constraints() {
                builder.push_constraint(c.clone());
            }
            builder
        };
        s = s2;
        let lot = s.push_object_type(ObjectType::new(
            format!("{name}_value"),
            ObjectTypeKind::Lot(dt),
        ));
        let bridge = s.push_fact_type(FactType::new(
            format!("{name}_repr"),
            Role::new("represented_by", self.ot),
            Role::new("value_of", lot),
        ));
        let l = RoleRef::new(bridge, Side::Left);
        let r = RoleRef::new(bridge, Side::Right);
        s.push_constraint(Constraint::new(ConstraintKind::Uniqueness {
            roles: vec![l],
        }));
        s.push_constraint(Constraint::new(ConstraintKind::Uniqueness {
            roles: vec![r],
        }));
        s.push_constraint(Constraint::new(ConstraintKind::Total {
            over: self.ot,
            items: vec![RoleOrSublink::Role(l)],
        }));
        s.push_constraint(Constraint::new(ConstraintKind::Total {
            over: lot,
            items: vec![RoleOrSublink::Role(r)],
        }));
        Ok(ExpandedLotNolot {
            schema: s,
            lot,
            bridge,
        })
    }

    /// Maps a state of the original schema to the expanded schema: every
    /// lexical value of the LOT-NOLOT becomes a fresh entity, linked to its
    /// value through the bridge fact. Entity ids are allocated in value
    /// order above the state's maximum, so the map is deterministic.
    #[allow(clippy::explicit_counter_loop)]
    pub fn map_state(
        &self,
        old_schema: &Schema,
        out: &ExpandedLotNolot,
        pop: &Population,
    ) -> Population {
        let mut next = max_entity_id(pop, old_schema) + 1;
        let mut assign: BTreeMap<Value, Value> = BTreeMap::new();
        for v in pop.objects_of(self.ot) {
            assign.insert(v.clone(), Value::entity(next));
            next += 1;
        }
        let conv = |v: &Value| assign.get(v).cloned().unwrap_or_else(|| v.clone());
        let mut new_pop = Population::new();
        for (oid, _) in old_schema.object_types() {
            for v in pop.objects_of(oid) {
                if oid == self.ot {
                    new_pop.add_object(oid, conv(v));
                } else {
                    new_pop.add_object(oid, v.clone());
                }
            }
        }
        for (fid, ft) in old_schema.fact_types() {
            for (l, r) in pop.facts_of(fid) {
                let nl = if ft.player(Side::Left) == self.ot {
                    conv(l)
                } else {
                    l.clone()
                };
                let nr = if ft.player(Side::Right) == self.ot {
                    conv(r)
                } else {
                    r.clone()
                };
                new_pop.add_fact(fid, nl, nr);
            }
        }
        for (v, e) in &assign {
            new_pop.add_object(out.lot, v.clone());
            new_pop.add_fact(out.bridge, e.clone(), v.clone());
        }
        new_pop
    }

    /// The inverse state map: entities of the expanded NOLOT are replaced by
    /// their bridge values; the bridge fact and LOT disappear.
    pub fn unmap_state(
        &self,
        old_schema: &Schema,
        out: &ExpandedLotNolot,
        pop: &Population,
    ) -> Population {
        let back: HashMap<Value, Value> = pop
            .facts_of(out.bridge)
            .iter()
            .map(|(e, v)| (e.clone(), v.clone()))
            .collect();
        let conv = |v: &Value| back.get(v).cloned().unwrap_or_else(|| v.clone());
        let mut new_pop = Population::new();
        for (oid, _) in old_schema.object_types() {
            for v in pop.objects_of(oid) {
                if oid == self.ot {
                    new_pop.add_object(oid, conv(v));
                } else {
                    new_pop.add_object(oid, v.clone());
                }
            }
        }
        for (fid, ft) in old_schema.fact_types() {
            for (l, r) in pop.facts_of(fid) {
                let nl = if ft.player(Side::Left) == self.ot {
                    conv(l)
                } else {
                    l.clone()
                };
                let nr = if ft.player(Side::Right) == self.ot {
                    conv(r)
                } else {
                    r.clone()
                };
                new_pop.add_fact(fid, nl, nr);
            }
        }
        new_pop
    }
}

/// **ELIMINATE SUBLINK** — the paper's figure 4: "a binary schema containing
/// sublinks can be transformed into a state-equivalent binary schema without
/// sublinks". The sublink is replaced by a 1:1 `is` fact, total on the
/// subtype side, with uniqueness on both roles. The paper notes the result
/// "expresses less semantics than the original one" — inheritance is gone —
/// while remaining state-equivalent, which the state maps demonstrate.
#[derive(Clone, Copy, Debug)]
pub struct EliminateSublink {
    /// The sublink to eliminate.
    pub sublink: SublinkId,
}

/// The outcome of [`EliminateSublink::apply`].
#[derive(Clone, Debug)]
pub struct EliminatedSublink {
    /// The transformed schema (one sublink fewer, one fact more).
    pub schema: Schema,
    /// The replacement `is` fact (left role: subtype, right role: supertype).
    pub is_fact: FactTypeId,
    /// Old sublink id → new sublink id for the surviving sublinks.
    pub sublink_remap: HashMap<SublinkId, SublinkId>,
}

impl EliminateSublink {
    /// Applies the elimination.
    pub fn apply(&self, schema: &Schema) -> Result<EliminatedSublink, TransformError> {
        let _span = ridl_obs::span::enter("transform.b2b.eliminate_sublink");
        if self.sublink.index() >= schema.num_sublinks() {
            return Err(TransformError::new("no such sublink"));
        }
        let sl = *schema.sublink(self.sublink);
        let mut s = Schema::new(schema.name.clone());
        for (_, o) in schema.object_types() {
            s.push_object_type(o.clone());
        }
        for (_, f) in schema.fact_types() {
            s.push_fact_type(f.clone());
        }
        let mut remap = HashMap::new();
        for (sid, other) in schema.sublinks() {
            if sid == self.sublink {
                continue;
            }
            let new_id = s.push_sublink(*other);
            remap.insert(sid, new_id);
        }
        let is_fact = s.push_fact_type(FactType::new(
            format!("{}_is_{}", schema.ot_name(sl.sub), schema.ot_name(sl.sup)),
            Role::new("is", sl.sub),
            Role::new("specialized_by", sl.sup),
        ));
        let l = RoleRef::new(is_fact, Side::Left);
        let r = RoleRef::new(is_fact, Side::Right);
        // Rewrite constraints: surviving sublink items are remapped; items
        // naming the eliminated sublink become the `is` fact's left role.
        for (_, c) in schema.constraints() {
            let kind = match &c.kind {
                ConstraintKind::Total { over, items } => ConstraintKind::Total {
                    over: *over,
                    items: items
                        .iter()
                        .map(|i| remap_item(i, self.sublink, &remap, l))
                        .collect(),
                },
                ConstraintKind::Exclusion { items } => ConstraintKind::Exclusion {
                    items: items
                        .iter()
                        .map(|i| remap_item(i, self.sublink, &remap, l))
                        .collect(),
                },
                other => other.clone(),
            };
            s.push_constraint(Constraint {
                name: c.name.clone(),
                kind,
            });
        }
        s.push_constraint(Constraint::new(ConstraintKind::Uniqueness {
            roles: vec![l],
        }));
        s.push_constraint(Constraint::new(ConstraintKind::Uniqueness {
            roles: vec![r],
        }));
        s.push_constraint(Constraint::new(ConstraintKind::Total {
            over: sl.sub,
            items: vec![RoleOrSublink::Role(l)],
        }));
        Ok(EliminatedSublink {
            schema: s,
            is_fact,
            sublink_remap: remap,
        })
    }

    /// Forward state map: add the identity pairs of the subtype population
    /// to the `is` fact. Everything else is untouched.
    pub fn map_state(
        &self,
        old_schema: &Schema,
        out: &EliminatedSublink,
        pop: &Population,
    ) -> Population {
        let sl = *old_schema.sublink(self.sublink);
        let mut new_pop = pop.clone();
        for v in pop.objects_of(sl.sub).clone() {
            new_pop.add_fact(out.is_fact, v.clone(), v);
        }
        new_pop
    }

    /// Backward state map: drop the `is` fact population (membership is
    /// already present as the subtype's object population).
    pub fn unmap_state(&self, out: &EliminatedSublink, pop: &Population) -> Population {
        let mut new_pop = pop.clone();
        new_pop.facts_of_mut(out.is_fact).clear();
        new_pop
    }
}

fn remap_item(
    item: &RoleOrSublink,
    eliminated: SublinkId,
    remap: &HashMap<SublinkId, SublinkId>,
    is_left: RoleRef,
) -> RoleOrSublink {
    match item {
        RoleOrSublink::Sublink(s) if *s == eliminated => RoleOrSublink::Role(is_left),
        RoleOrSublink::Sublink(s) => RoleOrSublink::Sublink(remap[s]),
        r => *r,
    }
}

/// **CANONICALIZE CONSTRAINTS**: "eliminate superfluous definitions, reduce
/// constraints to their canonical form" (§4.1). Removes exact duplicates,
/// trivial subsets/equalities (`X ⊆ X`), duplicate items inside total and
/// exclusion constraints, and degenerate constraints that state nothing.
/// Returns the new schema and the number of constraints removed.
pub fn canonicalize_constraints(schema: &Schema) -> (Schema, usize) {
    let _span = ridl_obs::span::enter("transform.b2b.canonicalize");
    let mut s = Schema::new(schema.name.clone());
    for (_, o) in schema.object_types() {
        s.push_object_type(o.clone());
    }
    for (_, f) in schema.fact_types() {
        s.push_fact_type(f.clone());
    }
    for (_, sl) in schema.sublinks() {
        s.push_sublink(*sl);
    }
    let mut kept: Vec<ConstraintKind> = Vec::new();
    let mut removed = 0;
    for (_, c) in schema.constraints() {
        let kind = match &c.kind {
            ConstraintKind::Total { over, items } => {
                let mut dedup = Vec::new();
                for i in items {
                    if !dedup.contains(i) {
                        dedup.push(*i);
                    }
                }
                ConstraintKind::Total {
                    over: *over,
                    items: dedup,
                }
            }
            ConstraintKind::Exclusion { items } => {
                let mut dedup = Vec::new();
                for i in items {
                    if !dedup.contains(i) {
                        dedup.push(*i);
                    }
                }
                ConstraintKind::Exclusion { items: dedup }
            }
            other => other.clone(),
        };
        let trivial = match &kind {
            ConstraintKind::Subset { sub, sup } => sub == sup,
            ConstraintKind::Equality { a, b } => a == b,
            ConstraintKind::Exclusion { items } => items.len() < 2,
            ConstraintKind::Uniqueness { roles } => roles.is_empty(),
            ConstraintKind::Total { items, .. } => items.is_empty(),
            ConstraintKind::Cardinality { min, max, .. } => *min == 0 && max.is_none(),
            ConstraintKind::Value { .. } => false,
        };
        if trivial || kept.contains(&kind) {
            removed += 1;
            continue;
        }
        kept.push(kind.clone());
        s.push_constraint(Constraint {
            name: c.name.clone(),
            kind,
        });
    }
    (s, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::population::is_model;
    use ridl_brm::DataType;

    fn lotnolot_schema() -> Schema {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Paper").unwrap();
        b.lot_nolot("Date", DataType::Date).unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        b.fact(
            "submitted",
            ("submitted_at", "Paper"),
            ("of_submission", "Date"),
        )
        .unwrap();
        b.unique("submitted", Side::Left).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn expand_lot_nolot_round_trips_states() {
        let s = lotnolot_schema();
        let date = s.object_type_by_name("Date").unwrap();
        let submitted = s.fact_type_by_name("submitted").unwrap();
        let fid = s.fact_type_by_name("Paper_has_Paper_Id").unwrap();
        let t = ExpandLotNolot { ot: date };
        let out = t.apply(&s).unwrap();
        assert!(out.schema.object_type_by_name("Date_value").is_some());
        assert!(out.schema.fact_type_by_name("Date_repr").is_some());

        let mut pop = Population::new();
        pop.add_fact_closed(&s, fid, Value::entity(1), Value::str("P1"));
        pop.add_fact_closed(&s, submitted, Value::entity(1), Value::Date(100));
        assert!(is_model(&s, &pop));

        let fwd = t.map_state(&s, &out, &pop);
        // The mapped state is a model of the new schema.
        assert!(
            is_model(&out.schema, &fwd),
            "{:?}",
            ridl_brm::population::validate(&out.schema, &fwd)
        );
        // Date instances are entities now.
        assert!(fwd.objects_of(date).iter().all(|v| !v.is_lexical()));
        // Round trip.
        let back = t.unmap_state(&s, &out, &fwd);
        assert_eq!(back.compacted(), pop.compacted());
    }

    #[test]
    fn expand_rejects_non_hybrid() {
        let s = lotnolot_schema();
        let paper = s.object_type_by_name("Paper").unwrap();
        assert!(ExpandLotNolot { ot: paper }.apply(&s).is_err());
    }

    fn sublink_schema() -> Schema {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Paper").unwrap();
        b.nolot("Invited_Paper").unwrap();
        b.nolot("Program_Paper").unwrap();
        b.sublink("Invited_Paper", "Paper").unwrap();
        let sl2 = b.sublink("Program_Paper", "Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        b.total_subtypes("Paper", &[sl2]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn eliminate_sublink_fig4_round_trips_states() {
        let s = sublink_schema();
        let t = EliminateSublink {
            sublink: SublinkId::from_raw(0),
        };
        let out = t.apply(&s).unwrap();
        assert_eq!(out.schema.num_sublinks(), s.num_sublinks() - 1);
        assert!(out
            .schema
            .fact_type_by_name("Invited_Paper_is_Paper")
            .is_some());

        let paper = s.object_type_by_name("Paper").unwrap();
        let inv = s.object_type_by_name("Invited_Paper").unwrap();
        let prog = s.object_type_by_name("Program_Paper").unwrap();
        let fid = s.fact_type_by_name("Paper_has_Paper_Id").unwrap();
        let mut pop = Population::new();
        pop.add_fact_closed(&s, fid, Value::entity(1), Value::str("P1"));
        pop.add_fact_closed(&s, fid, Value::entity(2), Value::str("P2"));
        pop.add_object(paper, Value::entity(1));
        pop.add_object(paper, Value::entity(2));
        pop.add_object(inv, Value::entity(1));
        pop.add_object(prog, Value::entity(1));
        pop.add_object(prog, Value::entity(2));
        assert!(
            is_model(&s, &pop),
            "{:?}",
            ridl_brm::population::validate(&s, &pop)
        );

        let fwd = t.map_state(&s, &out, &pop);
        assert!(
            is_model(&out.schema, &fwd),
            "{:?}",
            ridl_brm::population::validate(&out.schema, &fwd)
        );
        assert_eq!(fwd.facts_of(out.is_fact).len(), 1);
        let back = t.unmap_state(&out, &fwd);
        assert_eq!(back.compacted(), pop.compacted());
    }

    #[test]
    fn eliminate_remaps_constraint_items() {
        let s = sublink_schema();
        // Eliminate sublink 1 (Program_Paper), which a total union names.
        let t = EliminateSublink {
            sublink: SublinkId::from_raw(1),
        };
        let out = t.apply(&s).unwrap();
        // The total constraint now names the `is` fact's left role.
        let uses_role = out.schema.constraints().any(|(_, c)| match &c.kind {
            ConstraintKind::Total { items, .. } => items
                .iter()
                .any(|i| matches!(i, RoleOrSublink::Role(r) if r.fact == out.is_fact)),
            _ => false,
        });
        assert!(uses_role);
        // No dangling sublink references remain.
        assert!(out.schema.check_ids().is_empty());
    }

    #[test]
    fn canonicalize_removes_duplicates_and_trivia() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.fact("f", ("x", "A"), ("y", "B")).unwrap();
        b.unique("f", Side::Left).unwrap();
        b.unique("f", Side::Left).unwrap(); // duplicate
        b.subset(&[("f", Side::Left)], &[("f", Side::Left)])
            .unwrap(); // trivial
        b.total_union("A", &[("f", Side::Left), ("f", Side::Left)])
            .unwrap(); // duplicate item
        b.cardinality("f", Side::Right, 0, None).unwrap(); // vacuous
        let s = b.finish().unwrap();
        let (canon, removed) = canonicalize_constraints(&s);
        assert_eq!(removed, 3);
        assert_eq!(canon.num_constraints(), 2);
        // The total kept one item.
        let total_ok = canon.constraints().any(
            |(_, c)| matches!(&c.kind, ConstraintKind::Total { items, .. } if items.len() == 1),
        );
        assert!(total_ok);
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let s = sublink_schema();
        let (c1, _) = canonicalize_constraints(&s);
        let (c2, removed) = canonicalize_constraints(&c1);
        assert_eq!(removed, 0);
        assert_eq!(c1.num_constraints(), c2.num_constraints());
    }
}

//! Recording of applied transformations and their lossless rules.
//!
//! "There is an important advantage to this transformation composition
//! technique. We are now able to 'drive' the composition of these basic
//! transformations by rules specified externally to the algorithm" (§4.1).
//! The trace is the audit trail of that composition: which basic
//! transformation fired, at which site, and which lossless rules it
//! contributed. The mapper appends to it, and the map report prints it.

use std::fmt;

/// The kind of a basic schema transformation (§4.1: "The basic schema
/// transformations used can be divided into three kinds").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransformKind {
    /// Binary schema → binary schema (canonicalisation).
    BinaryToBinary,
    /// Binary schema → relational schema (the pivot).
    BinaryToRelational,
    /// Relational schema → relational schema (sculpting).
    RelationalToRelational,
}

impl fmt::Display for TransformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformKind::BinaryToBinary => write!(f, "binary-to-binary"),
            TransformKind::BinaryToRelational => write!(f, "binary-to-relational"),
            TransformKind::RelationalToRelational => write!(f, "relational-to-relational"),
        }
    }
}

/// One applied basic transformation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AppliedTransform {
    /// Which of the three kinds it belongs to.
    pub kind: TransformKind,
    /// The transformation's name, e.g. `ELIMINATE SUBLINK`.
    pub name: String,
    /// The site it was applied to, e.g. `Invited_Paper IS-A Paper`.
    pub site: String,
    /// The lossless rules this application contributed (names of generated
    /// relational constraints, or textual rules for binary-level steps).
    pub lossless_rules: Vec<String>,
}

impl fmt::Display for AppliedTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} AT {}", self.kind, self.name, self.site)?;
        if !self.lossless_rules.is_empty() {
            write!(f, " (lossless rules: {})", self.lossless_rules.join(", "))?;
        }
        Ok(())
    }
}

/// The ordered record of a whole mapping run.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct TransformTrace {
    steps: Vec<AppliedTransform>,
}

impl TransformTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step. Each firing counts into the process-wide obs
    /// registry: `transform.firings` plus a per-rule labeled counter
    /// (`transform.rule.<NAME>`), so a profile over many mapping runs can
    /// show which basic transformations dominate. Under span tracing each
    /// firing also records one `transform.apply` span attributed with the
    /// step's kind, name and site (an annotation: the firing is recorded
    /// after the transformation ran, so the span marks the point, while
    /// the timed spans live around the transformation functions
    /// themselves).
    pub fn push(
        &mut self,
        kind: TransformKind,
        name: impl Into<String>,
        site: impl Into<String>,
        lossless_rules: Vec<String>,
    ) {
        let name = name.into();
        let site = site.into();
        ridl_obs::metrics().transform_firings.inc();
        if ridl_obs::detail_enabled() {
            ridl_obs::count_label(&format!("transform.rule.{name}"), 1);
        }
        if ridl_obs::span::tracing_enabled() {
            let mut span = ridl_obs::span::enter("transform.apply");
            span.attr("kind", kind.to_string());
            span.attr("name", name.clone());
            span.attr("site", site.clone());
            span.attr("step", self.steps.len());
        }
        self.steps.push(AppliedTransform {
            kind,
            name,
            site,
            lossless_rules,
        });
    }

    /// The recorded steps, in application order.
    pub fn steps(&self) -> &[AppliedTransform] {
        &self.steps
    }

    /// Number of steps of a given kind.
    pub fn count_kind(&self, kind: TransformKind) -> usize {
        self.steps.iter().filter(|s| s.kind == kind).count()
    }

    /// All lossless rules contributed over the run.
    pub fn lossless_rules(&self) -> impl Iterator<Item = &str> {
        self.steps
            .iter()
            .flat_map(|s| s.lossless_rules.iter().map(String::as_str))
    }

    /// The index of the step that contributed the lossless rule (i.e.
    /// generated the relational constraint) named `rule` — the provenance
    /// hook lineage derivation uses to tie a constraint back to the
    /// transformation (and thus the BRM site) that produced it.
    pub fn step_for_rule(&self, rule: &str) -> Option<usize> {
        self.steps
            .iter()
            .position(|s| s.lossless_rules.iter().any(|r| r == rule))
    }

    /// The indices of every step applied at `site` (exact match).
    pub fn steps_at_site(&self, site: &str) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.site == site)
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders the trace for the map report.
    pub fn render(&self) -> String {
        let mut out = String::from("-- TRANSFORMATION TRACE\n");
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!("   {:>3}. {s}\n", i + 1));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_and_renders() {
        let mut t = TransformTrace::new();
        t.push(
            TransformKind::BinaryToBinary,
            "ELIMINATE SUBLINK",
            "Invited_Paper IS-A Paper",
            vec!["C_EQ$_1".into()],
        );
        t.push(
            TransformKind::RelationalToRelational,
            "MERGE TABLES",
            "Paper + Paper_title",
            vec![],
        );
        assert_eq!(t.steps().len(), 2);
        assert_eq!(t.count_kind(TransformKind::BinaryToBinary), 1);
        assert_eq!(t.lossless_rules().count(), 1);
        let r = t.render();
        assert!(r.contains("ELIMINATE SUBLINK"));
        assert!(r.contains("lossless rules: C_EQ$_1"));
        assert_eq!(t.step_for_rule("C_EQ$_1"), Some(0));
        assert_eq!(t.step_for_rule("C_NO$_SUCH"), None);
        assert_eq!(t.steps_at_site("Paper + Paper_title"), vec![1]);
        assert!(t.steps_at_site("Nowhere").is_empty());
    }
}

//! # ridl-transform — database schema transformation theory, executable
//!
//! §4.1 of the paper grounds RIDL-M in schema transformation theory
//! (after Kobayashi): a schema is a logical theory, a *schema transformation*
//! is a mapping `g : STATES(S1) → STATES(S2)`, and it is **lossless** iff `g`
//! is a bijection (Definitions 1 and 2 — *state equivalence*). Rather than a
//! monolithic algorithm, the BRM→RM mapping is "the composition of a number
//! of very basic schema transformations … it is easier to prove their
//! losslessness".
//!
//! This crate makes those basic transformations executable, each with its
//! forward and backward **state maps** so losslessness is property-testable:
//!
//! * **binary → binary** ([`b2b`]): LOT-NOLOT expansion, sublink elimination
//!   (the paper's figure 4), constraint canonicalisation;
//! * **binary → relational** ([`b2r`]): the pivot producing the "binary"
//!   relational schema (one two-column table per fact type) over surrogate
//!   or lexical domains;
//! * **relational → relational** ([`r2r`]): the projection/join pair the
//!   paper singles out ("the lossless rules of this transformation include a
//!   multivalued dependency for the projection transformation and an
//!   equality constraint for the inverse join transformation").
//!
//! Every application is recorded in a [`trace::TransformTrace`], the basis of
//! the mapper's map report and lossless-rule listing.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod b2b;
pub mod b2r;
pub mod r2r;
pub mod trace;

pub use b2b::{canonicalize_constraints, EliminateSublink, ExpandLotNolot};
pub use b2r::{binary_relational, BinaryRelMap};
pub use r2r::{MergeTables, SplitTable};
pub use trace::{AppliedTransform, TransformTrace};

use ridl_brm::{Population, Schema, Side};

/// Errors raised when a transformation does not apply.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TransformError {
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transformation not applicable: {}", self.reason)
    }
}

impl std::error::Error for TransformError {}

impl TransformError {
    /// Creates an error.
    pub fn new(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }
}

/// Whether every populated instance of every object type plays at least one
/// role (or is reachable as a fact value). State maps that drop object-type
/// populations in favour of role projections are bijective exactly on
/// fact-closed populations; the analyzer's totality requirements on
/// reference schemes guarantee this for well-formed schemas.
pub fn is_fact_closed(schema: &Schema, pop: &Population) -> bool {
    for (oid, _) in schema.object_types() {
        'values: for v in pop.objects_of(oid) {
            for role in schema.roles_of(oid) {
                let facts = pop.facts_of(role.fact);
                let hit = match role.side {
                    Side::Left => facts.iter().any(|(l, _)| l == v),
                    Side::Right => facts.iter().any(|(_, r)| r == v),
                };
                if hit {
                    continue 'values;
                }
            }
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::builder::SchemaBuilder;
    use ridl_brm::{DataType, Value};

    #[test]
    fn fact_closure_detection() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("A").unwrap();
        b.lot("L", DataType::Char(2)).unwrap();
        b.fact("f", ("x", "A"), ("y", "L")).unwrap();
        let s = b.finish().unwrap();
        let f = s.fact_type_by_name("f").unwrap();
        let a = s.object_type_by_name("A").unwrap();
        let mut p = Population::new();
        p.add_fact_closed(&s, f, Value::entity(1), Value::str("aa"));
        assert!(is_fact_closed(&s, &p));
        p.add_object(a, Value::entity(2));
        assert!(!is_fact_closed(&s, &p));
    }
}

//! Pretty-printer: [`Schema`] → RIDL notation. The inverse of
//! [`crate::parse`], up to formatting.

use ridl_brm::{ConstraintKind, ObjectTypeKind, RoleOrSublink, RoleRef, Schema, Side, Value};

fn side_word(s: Side) -> &'static str {
    match s {
        Side::Left => "LEFT",
        Side::Right => "RIGHT",
    }
}

fn role_ref(schema: &Schema, r: RoleRef) -> String {
    format!("{}.{}", schema.fact_type(r.fact).name, side_word(r.side))
}

fn role_list(schema: &Schema, rs: &[RoleRef]) -> String {
    rs.iter()
        .map(|r| role_ref(schema, *r))
        .collect::<Vec<_>>()
        .join(", ")
}

fn literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Int(i) => i.to_string(),
        Value::Num(d) => {
            if d.scale == 0 {
                // A scale-0 decimal would re-parse as an integer; keep one
                // fractional digit to preserve the type.
                format!("{}.0", d.mantissa)
            } else {
                d.to_string()
            }
        }
        Value::Date(d) => format!("DATE {d}"),
        Value::Bool(true) => "TRUE".into(),
        Value::Bool(false) => "FALSE".into(),
        Value::Entity(_) => "/*entity*/".into(),
    }
}

fn item(schema: &Schema, i: &RoleOrSublink) -> String {
    match i {
        RoleOrSublink::Role(r) => role_ref(schema, *r),
        RoleOrSublink::Sublink(s) => {
            format!("SUBTYPE {}", schema.ot_name(schema.sublink(*s).sub))
        }
    }
}

/// Renders a schema in the RIDL notation accepted by [`crate::parse`].
pub fn print(schema: &Schema) -> String {
    let mut out = format!("SCHEMA {};\n\n", schema.name);

    for (_, ot) in schema.object_types() {
        match ot.kind {
            ObjectTypeKind::Nolot => out.push_str(&format!("NOLOT {};\n", ot.name)),
            ObjectTypeKind::Lot(dt) => out.push_str(&format!("LOT {} : {};\n", ot.name, dt)),
            ObjectTypeKind::LotNolot(dt) => {
                out.push_str(&format!("LOT-NOLOT {} : {};\n", ot.name, dt))
            }
        }
    }
    out.push('\n');
    for (_, sl) in schema.sublinks() {
        out.push_str(&format!(
            "SUBTYPE {} OF {};\n",
            schema.ot_name(sl.sub),
            schema.ot_name(sl.sup)
        ));
    }
    out.push('\n');
    for (_, ft) in schema.fact_types() {
        let role = |s: Side| {
            let r = ft.role(s);
            let name = if r.name.is_empty() { "_" } else { &r.name };
            format!("{} : {}", name, schema.ot_name(r.player))
        };
        out.push_str(&format!(
            "FACT {} ( {} , {} );\n",
            ft.name,
            role(Side::Left),
            role(Side::Right)
        ));
    }
    out.push('\n');
    for (_, c) in schema.constraints() {
        match &c.kind {
            ConstraintKind::Uniqueness { roles } => {
                out.push_str(&format!("UNIQUE {};\n", role_list(schema, roles)));
            }
            ConstraintKind::Total { over, items } => {
                let items: Vec<String> = items.iter().map(|i| item(schema, i)).collect();
                out.push_str(&format!(
                    "TOTAL {} IN {};\n",
                    schema.ot_name(*over),
                    items.join(", ")
                ));
            }
            ConstraintKind::Exclusion { items } => {
                let items: Vec<String> = items.iter().map(|i| item(schema, i)).collect();
                out.push_str(&format!("EXCLUSION {};\n", items.join(", ")));
            }
            ConstraintKind::Subset { sub, sup } => {
                out.push_str(&format!(
                    "SUBSET ( {} ) IN ( {} );\n",
                    role_list(schema, sub),
                    role_list(schema, sup)
                ));
            }
            ConstraintKind::Equality { a, b } => {
                out.push_str(&format!(
                    "EQUAL ( {} ) AND ( {} );\n",
                    role_list(schema, a),
                    role_list(schema, b)
                ));
            }
            ConstraintKind::Cardinality { role, min, max } => {
                out.push_str(&format!(
                    "FREQUENCY {} {} .. {};\n",
                    role_ref(schema, *role),
                    min,
                    max.map(|m| m.to_string()).unwrap_or_else(|| "*".into())
                ));
            }
            ConstraintKind::Value { over, values } => {
                let vals: Vec<String> = values.iter().map(literal).collect();
                out.push_str(&format!(
                    "VALUES {} IN ( {} );\n",
                    schema.ot_name(*over),
                    vals.join(", ")
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::DataType;

    #[test]
    fn prints_all_sections() {
        let mut b = SchemaBuilder::new("demo");
        b.nolot("Paper").unwrap();
        b.nolot("Invited").unwrap();
        b.sublink("Invited", "Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        b.lot_nolot("Date", DataType::Date).unwrap();
        b.fact("submitted", ("at", "Paper"), ("_unused", "Date"))
            .unwrap();
        b.unique("submitted", Side::Left).unwrap();
        let s = b.finish().unwrap();
        let text = print(&s);
        assert!(text.contains("SCHEMA demo;"));
        assert!(text.contains("NOLOT Paper;"));
        assert!(text.contains("LOT Paper_Id : CHAR(6);"));
        assert!(text.contains("LOT-NOLOT Date : DATE;"));
        assert!(text.contains("SUBTYPE Invited OF Paper;"));
        assert!(text.contains("FACT submitted"));
        assert!(text.contains("UNIQUE submitted.LEFT;"));
        assert!(text.contains("TOTAL Paper IN Paper_has_Paper_Id.LEFT;"));
    }

    #[test]
    fn unnamed_roles_print_as_underscore() {
        let mut b = SchemaBuilder::new("t");
        b.nolot("A").unwrap();
        b.lot("L", DataType::Char(1)).unwrap();
        b.fact("f", ("", "A"), ("", "L")).unwrap();
        let s = b.finish().unwrap();
        assert!(print(&s).contains("FACT f ( _ : A , _ : L );"));
    }

    #[test]
    fn literal_forms() {
        assert_eq!(literal(&Value::str("x'y")), "'x''y'");
        assert_eq!(literal(&Value::Int(7)), "7");
        assert_eq!(literal(&Value::Num(ridl_brm::Decimal::new(350, 1))), "35.0");
        assert_eq!(literal(&Value::Num(ridl_brm::Decimal::whole(35))), "35.0");
        assert_eq!(literal(&Value::Bool(true)), "TRUE");
        assert_eq!(literal(&Value::Date(9)), "DATE 9");
    }
}

//! Tokeniser for the RIDL schema notation.

use std::fmt;

/// Token kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognised by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal (digits '.' digits), kept textual.
    Dec(String),
    /// Quoted string literal (single quotes, `''` escapes).
    Str(String),
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `-` (as in `LOT-NOLOT`)
    Dash,
    /// `*` (unbounded frequency)
    Star,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Dec(s) => write!(f, "{s}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::DotDot => write!(f, ".."),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Dash => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position (1-based).
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Line number.
    pub line: u32,
    /// Column number.
    pub col: u32,
}

/// A lexical error with position.
#[derive(Clone, PartialEq, Debug)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Line number.
    pub line: u32,
    /// Column number.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenises RIDL notation. `--` starts a comment to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($kind:expr, $l:expr, $c:expr) => {
            out.push(Token {
                kind: $kind,
                line: $l,
                col: $c,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '-' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'-') {
                    // Comment to end of line.
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            col = 1;
                            break;
                        }
                    }
                } else {
                    push!(TokenKind::Dash, tl, tc);
                }
            }
            ';' => {
                chars.next();
                col += 1;
                push!(TokenKind::Semi, tl, tc);
            }
            ':' => {
                chars.next();
                col += 1;
                push!(TokenKind::Colon, tl, tc);
            }
            ',' => {
                chars.next();
                col += 1;
                push!(TokenKind::Comma, tl, tc);
            }
            '(' => {
                chars.next();
                col += 1;
                push!(TokenKind::LParen, tl, tc);
            }
            ')' => {
                chars.next();
                col += 1;
                push!(TokenKind::RParen, tl, tc);
            }
            '*' => {
                chars.next();
                col += 1;
                push!(TokenKind::Star, tl, tc);
            }
            '.' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'.') {
                    chars.next();
                    col += 1;
                    push!(TokenKind::DotDot, tl, tc);
                } else {
                    push!(TokenKind::Dot, tl, tc);
                }
            }
            '\'' => {
                chars.next();
                col += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            col += 1;
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                col += 1;
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some('\n') => {
                            return Err(LexError {
                                message: "unterminated string".into(),
                                line: tl,
                                col: tc,
                            })
                        }
                        Some(c) => {
                            col += 1;
                            s.push(c);
                        }
                        None => {
                            return Err(LexError {
                                message: "unterminated string".into(),
                                line: tl,
                                col: tc,
                            })
                        }
                    }
                }
                push!(TokenKind::Str(s), tl, tc);
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                // A decimal only when a single '.' is followed by a digit
                // (so `0 .. 10` ranges stay ranges).
                let mut is_dec = false;
                if chars.peek() == Some(&'.') {
                    let mut look = chars.clone();
                    look.next();
                    if look.peek().map(|c| c.is_ascii_digit()).unwrap_or(false)
                        && look.peek() != Some(&'.')
                    {
                        // Consume '.' digits.
                        chars.next();
                        col += 1;
                        s.push('.');
                        while let Some(&d) = chars.peek() {
                            if d.is_ascii_digit() {
                                s.push(d);
                                chars.next();
                                col += 1;
                            } else {
                                break;
                            }
                        }
                        is_dec = true;
                    }
                }
                if is_dec {
                    push!(TokenKind::Dec(s), tl, tc);
                } else {
                    let v = s.parse().map_err(|_| LexError {
                        message: format!("integer out of range: {s}"),
                        line: tl,
                        col: tc,
                    })?;
                    push!(TokenKind::Int(v), tl, tc);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(TokenKind::Ident(s), tl, tc);
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line,
                    col,
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basics() {
        assert_eq!(
            kinds("NOLOT Paper;"),
            vec![
                TokenKind::Ident("NOLOT".into()),
                TokenKind::Ident("Paper".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_and_positions() {
        let toks = lex("A -- comment\nB").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("A".into()));
        assert_eq!(toks[1].kind, TokenKind::Ident("B".into()));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn ranges_vs_decimals() {
        assert_eq!(
            kinds("0 .. 10"),
            vec![
                TokenKind::Int(0),
                TokenKind::DotDot,
                TokenKind::Int(10),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("2..4"),
            vec![
                TokenKind::Int(2),
                TokenKind::DotDot,
                TokenKind::Int(4),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("3.25"),
            vec![TokenKind::Dec("3.25".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'a''b'"),
            vec![TokenKind::Str("a'b".into()), TokenKind::Eof]
        );
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn lot_nolot_dash() {
        assert_eq!(
            kinds("LOT-NOLOT Date"),
            vec![
                TokenKind::Ident("LOT".into()),
                TokenKind::Dash,
                TokenKind::Ident("NOLOT".into()),
                TokenKind::Ident("Date".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn bad_character_reported_with_position() {
        let err = lex("A\n  @").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 3);
    }
}

//! # ridl-lang — a textual RIDL schema definition language
//!
//! The reproduction's substitute for RIDL-G, the paper's Apollo-workstation
//! graphical editor (§3.1): the editor's *output* is a binary conceptual
//! schema in the meta-database, and this crate produces exactly that from
//! text. The notation mirrors the NIAM vocabulary:
//!
//! ```text
//! SCHEMA fig6;
//!
//! NOLOT Paper;
//! LOT Paper_Id : CHAR(6);
//! LOT-NOLOT Date : DATE;
//! SUBTYPE Invited_Paper OF Paper;
//!
//! FACT paper_id ( identified_by : Paper , _ : Paper_Id );
//! FACT paper_submitted ( submitted_at : Paper , of_submission : Date );
//!
//! UNIQUE paper_id.LEFT;
//! UNIQUE paper_id.RIGHT;
//! TOTAL Paper IN paper_id.LEFT;
//! FREQUENCY paper_submitted.RIGHT 0 .. 10;
//! ```
//!
//! [`parse()`] builds a checked [`ridl_brm::Schema`]; [`print()`] renders a
//! schema back to the notation; round trips are structure-preserving.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod parser;
pub mod printer;

pub use lexer::{lex, Token, TokenKind};
pub use parser::{parse, ParseError};
pub use printer::print;

#[cfg(test)]
mod roundtrip_tests {
    use super::*;

    fn structurally_equal(a: &ridl_brm::Schema, b: &ridl_brm::Schema) -> bool {
        if a.num_object_types() != b.num_object_types()
            || a.num_fact_types() != b.num_fact_types()
            || a.num_sublinks() != b.num_sublinks()
            || a.num_constraints() != b.num_constraints()
        {
            return false;
        }
        a.object_types()
            .zip(b.object_types())
            .all(|((_, x), (_, y))| x == y)
            && a.fact_types()
                .zip(b.fact_types())
                .all(|((_, x), (_, y))| x == y)
            && a.sublinks()
                .zip(b.sublinks())
                .all(|((_, x), (_, y))| x == y)
            && a.constraints()
                .zip(b.constraints())
                .all(|((_, x), (_, y))| x.kind == y.kind)
    }

    #[test]
    fn fig6_style_round_trip() {
        let src = r#"
SCHEMA fig6;
NOLOT Paper;
LOT Paper_Id : CHAR(6);
LOT Title : VARCHAR(60);
LOT-NOLOT Date : DATE;
SUBTYPE Invited_Paper OF Paper;
FACT paper_id ( identified_by : Paper , _ : Paper_Id );
FACT paper_title ( titled : Paper , of : Title );
FACT paper_submitted ( submitted_at : Paper , of_submission : Date );
UNIQUE paper_id.LEFT;
UNIQUE paper_id.RIGHT;
TOTAL Paper IN paper_id.LEFT;
UNIQUE paper_title.LEFT;
TOTAL Paper IN paper_title.LEFT;
UNIQUE paper_submitted.LEFT;
"#;
        let s1 = parse(src).unwrap();
        let printed = print(&s1);
        let s2 = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert!(structurally_equal(&s1, &s2), "{printed}");
    }

    #[test]
    fn cris_prints_and_reparses() {
        let s1 = ridl_workloads_free_cris();
        let printed = print(&s1);
        let s2 = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert!(structurally_equal(&s1, &s2), "{printed}");
    }

    /// A CRIS-like schema built inline (the workloads crate depends on
    /// nothing here; avoid a cycle by rebuilding a comparable schema).
    fn ridl_workloads_free_cris() -> ridl_brm::Schema {
        use ridl_brm::builder::{identify, SchemaBuilder};
        use ridl_brm::{DataType, Side, Value};
        let mut b = SchemaBuilder::new("mini_cris");
        b.nolot("Person").unwrap();
        identify(&mut b, "Person", "Name", DataType::Char(30)).unwrap();
        b.nolot("Author").unwrap();
        b.sublink("Author", "Person").unwrap();
        b.nolot("Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        b.fact("writes", ("author_of", "Author"), ("written_by", "Paper"))
            .unwrap();
        b.unique_pair("writes").unwrap();
        b.cardinality("writes", Side::Right, 1, Some(5)).unwrap();
        b.lot("Grade", DataType::Char(1)).unwrap();
        b.nolot("Review").unwrap();
        identify(&mut b, "Review", "Review_No", DataType::Numeric(5, 0)).unwrap();
        b.fact("graded", ("of", "Review"), ("grading", "Grade"))
            .unwrap();
        b.unique("graded", Side::Left).unwrap();
        b.value_constraint("Grade", vec![Value::str("A"), Value::str("B")])
            .unwrap();
        b.fact("reviews", ("by", "Person"), ("about", "Paper"))
            .unwrap();
        b.unique_pair("reviews").unwrap();
        b.exclusion_roles(&[("writes", Side::Right), ("reviews", Side::Right)])
            .unwrap();
        b.subset(&[("reviews", Side::Left)], &[("writes", Side::Left)])
            .unwrap();
        b.equality(&[("graded", Side::Left)], &[("graded", Side::Left)])
            .unwrap();
        b.finish_unchecked()
    }
}

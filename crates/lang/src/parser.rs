//! Recursive-descent parser: RIDL notation → checked [`Schema`].

use std::fmt;

use ridl_brm::builder::SchemaBuilder;
use ridl_brm::{BrmError, DataType, Schema, Side, Value};

use crate::lexer::{lex, LexError, Token, TokenKind};

/// A parse error with source position.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Line number (1-based).
    pub line: u32,
    /// Column number (1-based).
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    builder: SchemaBuilder,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError {
            message: message.into(),
            line: t.line,
            col: t.col,
        }
    }

    fn brm(&self, e: BrmError) -> ParseError {
        let t = self.peek();
        ParseError {
            message: e.to_string(),
            line: t.line,
            col: t.col,
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.next();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw) => {
                self.next();
                Ok(())
            }
            other => Err(self.err(format!("expected {kw}, found {other}"))),
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if self.peek().kind == kind {
            self.next();
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.peek().kind {
            TokenKind::Int(i) => {
                self.next();
                Ok(i)
            }
            _ => Err(self.err(format!("expected number, found {}", self.peek().kind))),
        }
    }

    // ---- grammar ----

    fn schema(&mut self) -> Result<(), ParseError> {
        self.expect_keyword("SCHEMA")?;
        let name = self.expect_ident()?;
        self.expect(TokenKind::Semi)?;
        // Rebuild the builder with the right name.
        self.builder = SchemaBuilder::new(name);
        while self.peek().kind != TokenKind::Eof {
            self.declaration()?;
        }
        Ok(())
    }

    fn declaration(&mut self) -> Result<(), ParseError> {
        if self.at_keyword("NOLOT") {
            self.next();
            let name = self.expect_ident()?;
            self.builder.nolot(&name).map_err(|e| self.brm(e))?;
            self.expect(TokenKind::Semi)
        } else if self.at_keyword("LOT") {
            self.next();
            // Either `LOT name : type;` or `LOT-NOLOT name : type;`.
            let hybrid = if self.peek().kind == TokenKind::Dash {
                self.next();
                self.expect_keyword("NOLOT")?;
                true
            } else {
                false
            };
            let name = self.expect_ident()?;
            self.expect(TokenKind::Colon)?;
            let dt = self.data_type()?;
            if hybrid {
                self.builder.lot_nolot(&name, dt).map_err(|e| self.brm(e))?;
            } else {
                self.builder.lot(&name, dt).map_err(|e| self.brm(e))?;
            }
            self.expect(TokenKind::Semi)
        } else if self.at_keyword("SUBTYPE") {
            self.next();
            let sub = self.expect_ident()?;
            self.expect_keyword("OF")?;
            let sup = self.expect_ident()?;
            if self.builder.schema().object_type_by_name(&sub).is_none() {
                self.builder.nolot(&sub).map_err(|e| self.brm(e))?;
            }
            self.builder.sublink(&sub, &sup).map_err(|e| self.brm(e))?;
            self.expect(TokenKind::Semi)
        } else if self.at_keyword("FACT") {
            self.fact()
        } else if self.at_keyword("UNIQUE") {
            self.next();
            let roles = self.role_list()?;
            let refs: Vec<(&str, Side)> = roles.iter().map(|(f, s)| (f.as_str(), *s)).collect();
            self.builder
                .external_unique(&refs)
                .map_err(|e| self.brm(e))?;
            self.expect(TokenKind::Semi)
        } else if self.at_keyword("TOTAL") {
            self.total()
        } else if self.at_keyword("EXCLUSION") {
            self.exclusion()
        } else if self.at_keyword("SUBSET") {
            self.seq_constraint(false)
        } else if self.at_keyword("EQUAL") {
            self.seq_constraint(true)
        } else if self.at_keyword("FREQUENCY") {
            self.frequency()
        } else if self.at_keyword("VALUES") {
            self.values()
        } else {
            Err(self.err(format!("unexpected {}", self.peek().kind)))
        }
    }

    fn data_type(&mut self) -> Result<DataType, ParseError> {
        let name = self.expect_ident()?.to_ascii_uppercase();
        let param = |p: &mut Self| -> Result<(u16, Option<u16>), ParseError> {
            p.expect(TokenKind::LParen)?;
            let a = p.expect_int()? as u16;
            let b = if p.peek().kind == TokenKind::Comma {
                p.next();
                Some(p.expect_int()? as u16)
            } else {
                None
            };
            p.expect(TokenKind::RParen)?;
            Ok((a, b))
        };
        match name.as_str() {
            "CHAR" => {
                let (n, _) = param(self)?;
                Ok(DataType::Char(n))
            }
            "VARCHAR" => {
                let (n, _) = param(self)?;
                Ok(DataType::VarChar(n))
            }
            "NUMERIC" => {
                let (p, s) = param(self)?;
                Ok(DataType::Numeric(p as u8, s.unwrap_or(0) as u8))
            }
            "INTEGER" => Ok(DataType::Integer),
            "REAL" => Ok(DataType::Real),
            "DATE" => Ok(DataType::Date),
            "BOOLEAN" => Ok(DataType::Boolean),
            other => Err(self.err(format!("unknown data type {other}"))),
        }
    }

    fn fact(&mut self) -> Result<(), ParseError> {
        self.expect_keyword("FACT")?;
        let name = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let lrole = self.expect_ident()?;
        self.expect(TokenKind::Colon)?;
        let lplayer = self.expect_ident()?;
        self.expect(TokenKind::Comma)?;
        let rrole = self.expect_ident()?;
        self.expect(TokenKind::Colon)?;
        let rplayer = self.expect_ident()?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Semi)?;
        fn unrole(r: &str) -> &str {
            if r == "_" {
                ""
            } else {
                r
            }
        }
        self.builder
            .fact(
                &name,
                (unrole(&lrole), lplayer.as_str()),
                (unrole(&rrole), rplayer.as_str()),
            )
            .map_err(|e| self.brm(e))?;
        Ok(())
    }

    fn role_ref(&mut self) -> Result<(String, Side), ParseError> {
        let fact = self.expect_ident()?;
        self.expect(TokenKind::Dot)?;
        let side = self.expect_ident()?;
        let side = match side.to_ascii_uppercase().as_str() {
            "LEFT" => Side::Left,
            "RIGHT" => Side::Right,
            other => return Err(self.err(format!("expected LEFT or RIGHT, found {other}"))),
        };
        Ok((fact, side))
    }

    fn role_list(&mut self) -> Result<Vec<(String, Side)>, ParseError> {
        let mut out = vec![self.role_ref()?];
        while self.peek().kind == TokenKind::Comma {
            self.next();
            out.push(self.role_ref()?);
        }
        Ok(out)
    }

    fn total(&mut self) -> Result<(), ParseError> {
        self.expect_keyword("TOTAL")?;
        let over = self.expect_ident()?;
        self.expect_keyword("IN")?;
        // Items: role refs and `SUBTYPE <name>` entries.
        let mut role_items: Vec<(String, Side)> = Vec::new();
        let mut sub_items: Vec<String> = Vec::new();
        loop {
            if self.at_keyword("SUBTYPE") {
                self.next();
                sub_items.push(self.expect_ident()?);
            } else {
                role_items.push(self.role_ref()?);
            }
            if self.peek().kind == TokenKind::Comma {
                self.next();
            } else {
                break;
            }
        }
        self.expect(TokenKind::Semi)?;
        self.build_total(&over, &role_items, &sub_items)
    }

    fn build_total(
        &mut self,
        over: &str,
        role_items: &[(String, Side)],
        sub_items: &[String],
    ) -> Result<(), ParseError> {
        use ridl_brm::{Constraint, ConstraintKind, RoleOrSublink};
        let schema = self.builder.schema();
        let over_id = schema
            .object_type_by_name(over)
            .ok_or_else(|| self.err(format!("unknown object type {over}")))?;
        let mut items = Vec::new();
        for (f, s) in role_items {
            let fid = schema
                .fact_type_by_name(f)
                .ok_or_else(|| self.err(format!("unknown fact {f}")))?;
            items.push(RoleOrSublink::Role(ridl_brm::RoleRef::new(fid, *s)));
        }
        for sub in sub_items {
            let sub_id = schema
                .object_type_by_name(sub)
                .ok_or_else(|| self.err(format!("unknown object type {sub}")))?;
            let sl = schema
                .sublinks()
                .find(|(_, sl)| sl.sub == sub_id && sl.sup == over_id)
                .or_else(|| schema.sublinks().find(|(_, sl)| sl.sub == sub_id))
                .map(|(sid, _)| sid)
                .ok_or_else(|| self.err(format!("{sub} is not a subtype")))?;
            items.push(RoleOrSublink::Sublink(sl));
        }
        self.builder
            .raw_constraint(Constraint::new(ConstraintKind::Total {
                over: over_id,
                items,
            }));
        Ok(())
    }

    fn exclusion(&mut self) -> Result<(), ParseError> {
        self.expect_keyword("EXCLUSION")?;
        let mut role_items: Vec<(String, Side)> = Vec::new();
        let mut sub_items: Vec<String> = Vec::new();
        loop {
            if self.at_keyword("SUBTYPE") {
                self.next();
                sub_items.push(self.expect_ident()?);
            } else {
                role_items.push(self.role_ref()?);
            }
            if self.peek().kind == TokenKind::Comma {
                self.next();
            } else {
                break;
            }
        }
        self.expect(TokenKind::Semi)?;
        use ridl_brm::{Constraint, ConstraintKind, RoleOrSublink};
        let schema = self.builder.schema();
        let mut items = Vec::new();
        for (f, s) in &role_items {
            let fid = schema
                .fact_type_by_name(f)
                .ok_or_else(|| self.err(format!("unknown fact {f}")))?;
            items.push(RoleOrSublink::Role(ridl_brm::RoleRef::new(fid, *s)));
        }
        for sub in &sub_items {
            let sub_id = schema
                .object_type_by_name(sub)
                .ok_or_else(|| self.err(format!("unknown object type {sub}")))?;
            let sl = schema
                .sublinks()
                .find(|(_, sl)| sl.sub == sub_id)
                .map(|(sid, _)| sid)
                .ok_or_else(|| self.err(format!("{sub} is not a subtype")))?;
            items.push(RoleOrSublink::Sublink(sl));
        }
        self.builder
            .raw_constraint(Constraint::new(ConstraintKind::Exclusion { items }));
        Ok(())
    }

    fn seq_constraint(&mut self, equality: bool) -> Result<(), ParseError> {
        if equality {
            self.expect_keyword("EQUAL")?;
        } else {
            self.expect_keyword("SUBSET")?;
        }
        self.expect(TokenKind::LParen)?;
        let a = self.role_list()?;
        self.expect(TokenKind::RParen)?;
        if equality {
            self.expect_keyword("AND")?;
        } else {
            self.expect_keyword("IN")?;
        }
        self.expect(TokenKind::LParen)?;
        let b = self.role_list()?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Semi)?;
        let ar: Vec<(&str, Side)> = a.iter().map(|(f, s)| (f.as_str(), *s)).collect();
        let br: Vec<(&str, Side)> = b.iter().map(|(f, s)| (f.as_str(), *s)).collect();
        if equality {
            self.builder.equality(&ar, &br).map_err(|e| self.brm(e))?;
        } else {
            self.builder.subset(&ar, &br).map_err(|e| self.brm(e))?;
        }
        Ok(())
    }

    fn frequency(&mut self) -> Result<(), ParseError> {
        self.expect_keyword("FREQUENCY")?;
        let (fact, side) = self.role_ref()?;
        let min = self.expect_int()? as u32;
        self.expect(TokenKind::DotDot)?;
        let max = if self.peek().kind == TokenKind::Star {
            self.next();
            None
        } else {
            Some(self.expect_int()? as u32)
        };
        self.expect(TokenKind::Semi)?;
        self.builder
            .cardinality(&fact, side, min, max)
            .map_err(|e| self.brm(e))?;
        Ok(())
    }

    fn values(&mut self) -> Result<(), ParseError> {
        self.expect_keyword("VALUES")?;
        let over = self.expect_ident()?;
        self.expect_keyword("IN")?;
        self.expect(TokenKind::LParen)?;
        let mut values = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                values.push(self.literal()?);
                if self.peek().kind == TokenKind::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Semi)?;
        self.builder
            .value_constraint(&over, values)
            .map_err(|e| self.brm(e))?;
        Ok(())
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Str(s) => {
                self.next();
                Ok(Value::str(s))
            }
            TokenKind::Int(i) => {
                self.next();
                Ok(Value::Int(i))
            }
            TokenKind::Dec(d) => {
                self.next();
                let (whole, frac) = d.split_once('.').expect("decimal has a dot");
                let scale = frac.len() as u8;
                let mantissa: i64 = format!("{whole}{frac}")
                    .parse()
                    .map_err(|_| self.err(format!("decimal out of range: {d}")))?;
                Ok(Value::Num(ridl_brm::Decimal::new(mantissa, scale)))
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("TRUE") => {
                self.next();
                Ok(Value::Bool(true))
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("FALSE") => {
                self.next();
                Ok(Value::Bool(false))
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("DATE") => {
                self.next();
                let d = self.expect_int()?;
                Ok(Value::Date(d as i32))
            }
            other => Err(self.err(format!("expected literal, found {other}"))),
        }
    }
}

/// Parses RIDL notation into a checked schema.
///
/// ```
/// let s = ridl_lang::parse("
/// SCHEMA demo;
/// NOLOT Paper;
/// LOT Paper_Id : CHAR(6);
/// FACT paper_id ( identified_by : Paper , _ : Paper_Id );
/// UNIQUE paper_id.LEFT;
/// ").unwrap();
/// assert_eq!(s.num_object_types(), 2);
/// assert_eq!(s.num_constraints(), 1);
/// ```
pub fn parse(src: &str) -> Result<Schema, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        builder: SchemaBuilder::new(""),
    };
    p.schema()?;
    let last = p.tokens.last().cloned();
    p.builder.finish().map_err(|errs| {
        let t = last.unwrap_or(Token {
            kind: TokenKind::Eof,
            line: 0,
            col: 0,
        });
        ParseError {
            message: errs
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; "),
            line: t.line,
            col: t.col,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_schema() {
        let s = parse(
            "SCHEMA t;\nNOLOT A;\nLOT L : CHAR(3);\nFACT f ( has : A , of : L );\nUNIQUE f.LEFT;\n",
        )
        .unwrap();
        assert_eq!(s.name, "t");
        assert_eq!(s.num_object_types(), 2);
        assert_eq!(s.num_fact_types(), 1);
        assert_eq!(s.num_constraints(), 1);
    }

    #[test]
    fn subtype_declares_and_links() {
        let s = parse("SCHEMA t;\nNOLOT Paper;\nSUBTYPE Invited OF Paper;\n").unwrap();
        assert_eq!(s.num_sublinks(), 1);
        assert!(s.object_type_by_name("Invited").is_some());
    }

    #[test]
    fn total_over_subtypes_and_roles() {
        let src = "SCHEMA t;\nNOLOT P;\nSUBTYPE A OF P;\nSUBTYPE B OF P;\nLOT L : CHAR(2);\nFACT f ( x : P , y : L );\nTOTAL P IN SUBTYPE A, SUBTYPE B, f.LEFT;\nEXCLUSION SUBTYPE A, SUBTYPE B;\n";
        let s = parse(src).unwrap();
        assert_eq!(s.num_constraints(), 2);
    }

    #[test]
    fn frequency_and_values() {
        let src = "SCHEMA t;\nNOLOT P;\nLOT G : CHAR(1);\nFACT f ( x : P , y : G );\nFREQUENCY f.RIGHT 2 .. 4;\nFREQUENCY f.LEFT 1 .. *;\nVALUES G IN ('A', 'B');\n";
        let s = parse(src).unwrap();
        assert_eq!(s.num_constraints(), 3);
    }

    #[test]
    fn unnamed_roles_via_underscore() {
        let s =
            parse("SCHEMA t;\nNOLOT P;\nLOT L : CHAR(2);\nFACT f ( _ : P , _ : L );\n").unwrap();
        let fid = s.fact_type_by_name("f").unwrap();
        assert_eq!(s.fact_type(fid).role(Side::Left).name, "");
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("SCHEMA t;\nNOLOT ;").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("SCHEMA t;\nFACT f ( a : Missing , b : AlsoMissing );").unwrap_err();
        assert!(err.message.contains("unknown object type"), "{err}");
        let err = parse("SCHEMA t;\nNOLOT A;\nNOLOT A;").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn subset_and_equal() {
        let src = "SCHEMA t;\nNOLOT P;\nNOLOT Q;\nFACT f ( a : P , b : Q );\nFACT g ( a : P , b : Q );\nSUBSET ( f.LEFT ) IN ( g.LEFT );\nEQUAL ( f.RIGHT ) AND ( g.RIGHT );\n";
        let s = parse(src).unwrap();
        assert_eq!(s.num_constraints(), 2);
    }
}

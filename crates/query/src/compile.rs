//! Compilation of conceptual path queries through the forwards map.
//!
//! The compiler walks a [`ConceptualQuery`]'s paths over the *binary*
//! schema, consulting the [`MappingOutput`]'s fact realisations to decide,
//! per step, whether the value is already in the current relation, needs a
//! join to a sub/super-relation (through keys, `_Is` columns or link
//! tables), or lives in a fact relation of its own. The output is an
//! executable [`ridl_engine::Query`] plus the **join count** — the cost the
//! sublink and null options trade against redundancy (§4.2).

use std::collections::HashMap;
use std::fmt;

use ridl_brm::{ObjectTypeId, RoleRef, Schema, Side, Value};
use ridl_core::{FactRealization, MappingOutput, SubMembership};
use ridl_engine::{Pred, Query};
use ridl_relational::TableId;

use crate::ast::{Comparison, ConceptualQuery, PathStep};

/// A compilation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// The head object type does not exist.
    UnknownObjectType(String),
    /// A step matched no role or fact of the current object type.
    UnknownStep {
        /// The step name.
        step: String,
        /// The object type it was applied to.
        at: String,
    },
    /// The path traverses a concept the mapping did not realise.
    NotMapped(String),
    /// A structurally valid query the compiler cannot plan (e.g. a table
    /// would have to be joined twice).
    Unsupported(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownObjectType(n) => write!(f, "unknown object type {n}"),
            CompileError::UnknownStep { step, at } => {
                write!(f, "no role or fact named `{step}` on {at}")
            }
            CompileError::NotMapped(m) => write!(f, "concept not mapped: {m}"),
            CompileError::Unsupported(m) => write!(f, "unsupported query: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The compiled plan.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    /// The executable relational query.
    pub query: Query,
    /// Number of joins the plan needs — the §4.2.2 cost metric.
    pub join_count: usize,
    /// Output column labels, one per projection column (a multi-column
    /// reference tuple contributes several).
    pub columns: Vec<String>,
}

struct Compiler<'a> {
    schema: &'a Schema,
    out: &'a MappingOutput,
    query: Query,
    joined: HashMap<TableId, Vec<(String, String)>>,
    base_table: TableId,
}

/// A value position reached by a path: columns in some (joined) table.
#[derive(Clone, Debug)]
struct Position {
    table: TableId,
    cols: Vec<u32>,
    /// The object type the columns identify, when entity-valued.
    ot: Option<ObjectTypeId>,
}

impl<'a> Compiler<'a> {
    fn table_name(&self, t: TableId) -> &str {
        &self.out.rel.table(t).name
    }

    fn qualified(&self, t: TableId, col: u32) -> String {
        format!(
            "{}.{}",
            self.table_name(t),
            self.out.rel.table(t).column(col).name
        )
    }

    fn join(&mut self, target: TableId, on: Vec<(String, String)>) -> Result<(), CompileError> {
        // Identical joins are shared between paths; a second join of the
        // same table under a *different* condition would need aliasing,
        // which the engine's query model does not have.
        if let Some(prev) = self.joined.get(&target) {
            if *prev == on {
                return Ok(());
            }
            return Err(CompileError::Unsupported(format!(
                "table {} would be joined twice under different conditions",
                self.table_name(target)
            )));
        }
        if target == self.base_table {
            return Err(CompileError::Unsupported(format!(
                "table {} would be joined to itself",
                self.table_name(target)
            )));
        }
        self.joined.insert(target, on.clone());
        self.query.joins.push(ridl_engine::query::Join {
            table: self.table_name(target).to_owned(),
            on,
        });
        Ok(())
    }

    /// Ensures the cursor's entity (identified by `pos`) is joined to its
    /// anchor relation; returns the anchor position (key columns).
    fn anchor_position(&mut self, pos: &Position) -> Result<Position, CompileError> {
        let ot = pos.ot.ok_or_else(|| {
            CompileError::Unsupported("cannot traverse through a lexical value".into())
        })?;
        let host = self.out.host_of(ot);
        let anchor = self
            .out
            .anchor_of(host)
            .or_else(|| {
                // Subtype without its own relation: its facts live in the
                // host's table, so the host anchor is the right target.
                self.out.anchor_of(self.out.host_of(host))
            })
            .ok_or_else(|| {
                CompileError::NotMapped(format!(
                    "{} has no anchor relation",
                    self.schema.ot_name(host)
                ))
            })?
            .clone();
        if anchor.table == pos.table {
            return Ok(Position {
                table: anchor.table,
                cols: anchor.key_cols.clone(),
                ot: Some(ot),
            });
        }
        let on: Vec<(String, String)> = pos
            .cols
            .iter()
            .zip(&anchor.key_cols)
            .map(|(c, k)| {
                (
                    self.qualified(pos.table, *c),
                    self.out.rel.table(anchor.table).column(*k).name.clone(),
                )
            })
            .collect();
        if on.len() != anchor.key_cols.len() {
            return Err(CompileError::Unsupported(format!(
                "representation widths differ joining to {}",
                self.schema.ot_name(host)
            )));
        }
        self.join(anchor.table, on)?;
        Ok(Position {
            table: anchor.table,
            cols: anchor.key_cols.clone(),
            ot: Some(ot),
        })
    }

    /// Resolves one step from `cur`: the fact and the side `cur` plays.
    fn resolve_step(&self, cur: ObjectTypeId, step: &PathStep) -> Result<RoleRef, CompileError> {
        // Match the role the object type plays, the fact-type name, or the
        // co-role name (the value side), in that priority order.
        for match_co in [false, true] {
            for ot in self.schema.ancestors_of(cur) {
                for role in self.schema.roles_of(ot) {
                    let ft = self.schema.fact_type(role.fact);
                    let hit = if match_co {
                        ft.role(role.side.other()).name == step.name
                    } else {
                        ft.role(role.side).name == step.name || ft.name == step.name
                    };
                    if hit {
                        return Ok(role);
                    }
                }
            }
        }
        Err(CompileError::UnknownStep {
            step: step.name.clone(),
            at: self.schema.ot_name(cur).to_owned(),
        })
    }

    /// If the mapping duplicated the value this step reaches into the
    /// *current* table (a combine directive), serve it from the duplicate —
    /// the query-efficiency payoff the paper buys with controlled
    /// redundancy. `via_pos` is the position of the combined fact's value
    /// columns (the determinant of the duplication).
    fn combine_shortcut(
        &mut self,
        via: ridl_brm::FactTypeId,
        via_pos: &Position,
        next_role: RoleRef,
    ) -> Option<Position> {
        let rec = self
            .out
            .combines
            .iter()
            .find(|r| r.via == via && r.table == via_pos.table && r.det_cols == via_pos.cols)?;
        // The next step must be an attribute fact realised in the combine's
        // target table whose value columns were all copied.
        if let FactRealization::Attribute {
            table, value_cols, ..
        } = self.out.realization(next_role.fact)
        {
            if *table != rec.target_table {
                return None;
            }
            let mapped: Option<Vec<u32>> = value_cols
                .iter()
                .map(|vc| {
                    rec.target_src_cols
                        .iter()
                        .position(|sc| sc == vc)
                        .map(|i| rec.dup_cols[i])
                })
                .collect();
            let value_player = self
                .schema
                .role_player(RoleRef::new(next_role.fact, next_role.side.other()));
            let mapped = mapped?;
            // Match the inner-join semantics of the non-denormalised plan:
            // rows without the combined fact contribute nothing.
            for c in &via_pos.cols {
                let pred = Pred::NotNull(self.qualified(via_pos.table, *c));
                if !self.query.filter.contains(&pred) {
                    self.query.filter.push(pred);
                }
            }
            return Some(Position {
                table: via_pos.table,
                cols: mapped,
                ot: if self.schema.kind_of(value_player).is_entity_like() {
                    Some(value_player)
                } else {
                    None
                },
            });
        }
        None
    }

    /// Walks one step: from the entity at `pos`, through the fact, to the
    /// value position on the other side. Returns the traversed fact too, so
    /// the caller can recognise combine-duplicated continuations.
    fn walk(
        &mut self,
        pos: Position,
        step: &PathStep,
    ) -> Result<(Position, ridl_brm::FactTypeId), CompileError> {
        let cur = pos.ot.ok_or_else(|| {
            CompileError::Unsupported(format!(
                "cannot follow `{}` from a lexical value",
                step.name
            ))
        })?;
        let role = self.resolve_step(cur, step)?;
        let value_role = role.co_role();
        let value_player = self.schema.role_player(value_role);
        let value_ot = if self.schema.kind_of(value_player).is_entity_like() {
            Some(value_player)
        } else {
            None
        };
        match self.out.realization(role.fact).clone() {
            FactRealization::Omitted => Err(CompileError::NotMapped(format!(
                "fact {} was omitted by option",
                self.schema.fact_type(role.fact).name
            ))),
            FactRealization::KeyOf {
                table,
                anchor_side,
                cols,
                ..
            } => {
                if anchor_side != role.side {
                    // Traversing a reference fact backwards (LOT → entity):
                    // the key columns *are* the entity's reference.
                    return Err(CompileError::Unsupported(
                        "traversal from a lexical identifier back to its entity".into(),
                    ));
                }
                let here = self.locate(pos, table)?;
                Ok((
                    Position {
                        table: here,
                        cols,
                        ot: value_ot,
                    },
                    role.fact,
                ))
            }
            FactRealization::Attribute {
                table,
                anchor_side,
                value_cols,
                key_cols,
                ..
            } => {
                if anchor_side == role.side {
                    let here = self.locate(pos, table)?;
                    Ok((
                        Position {
                            table: here,
                            cols: value_cols,
                            ot: value_ot,
                        },
                        role.fact,
                    ))
                } else {
                    // Backwards traversal: from the value player to the
                    // anchor — the anchor's key columns in the same table.
                    let here = self.locate_via(pos, table, &value_cols)?;
                    Ok((
                        Position {
                            table: here,
                            cols: key_cols,
                            ot: Some(self.schema.role_player(value_role)),
                        },
                        role.fact,
                    ))
                }
            }
            FactRealization::OwnTable {
                table,
                left_cols,
                right_cols,
            } => {
                let (my_cols, other_cols) = match role.side {
                    Side::Left => (left_cols, right_cols),
                    Side::Right => (right_cols, left_cols),
                };
                let here = self.locate_via(pos, table, &my_cols)?;
                Ok((
                    Position {
                        table: here,
                        cols: other_cols,
                        ot: value_ot,
                    },
                    role.fact,
                ))
            }
        }
    }

    /// Brings the cursor to `target`, a table keyed by the cursor entity's
    /// representation (anchor-style). Handles same-table, key-joined, `_Is`
    /// and link-table hops.
    fn locate(&mut self, pos: Position, target: TableId) -> Result<TableId, CompileError> {
        if pos.table == target {
            return Ok(target);
        }
        let ot = pos.ot.expect("locate called on entity positions");
        // The target might be keyed by a supertype's representation while
        // the cursor is at a subtype relation with its own key: go through
        // the sublink membership realisation.
        for (sid, sl) in self.schema.sublinks() {
            if self.schema.ancestors_of(ot).contains(&sl.sub) {
                match &self.out.sub_memb[sid.index()] {
                    Some(SubMembership::OwnKeyLinked {
                        table,
                        key_cols,
                        super_table,
                        is_cols,
                    }) if *table == pos.table && *super_table == target => {
                        let on = key_cols
                            .iter()
                            .zip(is_cols)
                            .map(|(k, i)| {
                                (
                                    self.qualified(pos.table, *k),
                                    self.out.rel.table(target).column(*i).name.clone(),
                                )
                            })
                            .collect();
                        self.join(target, on)?;
                        return Ok(target);
                    }
                    Some(SubMembership::LinkTable {
                        table,
                        key_cols,
                        link_table,
                        link_sub_cols,
                        link_sup_cols,
                    }) if *table == pos.table => {
                        // Two hops: sub → link → super.
                        let on = key_cols
                            .iter()
                            .zip(link_sub_cols)
                            .map(|(k, l)| {
                                (
                                    self.qualified(pos.table, *k),
                                    self.out.rel.table(*link_table).column(*l).name.clone(),
                                )
                            })
                            .collect();
                        self.join(*link_table, on)?;
                        let sup_anchor =
                            self.out
                                .anchor_of(self.out.host_of(sl.sup))
                                .ok_or_else(|| {
                                    CompileError::NotMapped("supertype has no relation".into())
                                })?;
                        if sup_anchor.table != target {
                            return Err(CompileError::Unsupported(
                                "link table does not lead to the requested relation".into(),
                            ));
                        }
                        let on2 = link_sup_cols
                            .iter()
                            .zip(&sup_anchor.key_cols)
                            .map(|(l, k)| {
                                (
                                    self.qualified(*link_table, *l),
                                    self.out.rel.table(target).column(*k).name.clone(),
                                )
                            })
                            .collect();
                        self.join(target, on2)?;
                        return Ok(target);
                    }
                    _ => {}
                }
            }
        }
        // Default: both tables are keyed by the same representation — join
        // key to key (sub-relation with inherited scheme, or vice versa).
        let target_key = self
            .out
            .rel
            .primary_key_of(target)
            .ok_or_else(|| CompileError::Unsupported("target relation has no key".into()))?
            .to_vec();
        if target_key.len() != pos.cols.len() {
            return Err(CompileError::Unsupported(format!(
                "key widths differ joining {} to {}",
                self.table_name(pos.table),
                self.table_name(target)
            )));
        }
        let on = pos
            .cols
            .iter()
            .zip(&target_key)
            .map(|(c, k)| {
                (
                    self.qualified(pos.table, *c),
                    self.out.rel.table(target).column(*k).name.clone(),
                )
            })
            .collect();
        self.join(target, on)?;
        Ok(target)
    }

    /// Brings the cursor to `target` joining on the given columns of the
    /// target (which hold the cursor entity's representation).
    fn locate_via(
        &mut self,
        pos: Position,
        target: TableId,
        target_cols: &[u32],
    ) -> Result<TableId, CompileError> {
        if pos.table == target {
            return Ok(target);
        }
        if target_cols.len() != pos.cols.len() {
            return Err(CompileError::Unsupported(format!(
                "representation widths differ joining {} to {}",
                self.table_name(pos.table),
                self.table_name(target)
            )));
        }
        let on = pos
            .cols
            .iter()
            .zip(target_cols)
            .map(|(c, k)| {
                (
                    self.qualified(pos.table, *c),
                    self.out.rel.table(target).column(*k).name.clone(),
                )
            })
            .collect();
        self.join(target, on)?;
        Ok(target)
    }
}

impl<'a> Compiler<'a> {
    /// Walks a whole path from the base position, using duplicated
    /// (combined) columns where the mapping provides them.
    fn walk_path(&mut self, base: &Position, path: &[PathStep]) -> Result<Position, CompileError> {
        let mut pos = base.clone();
        let mut prev: Option<(ridl_brm::FactTypeId, Position)> = None;
        for (i, step) in path.iter().enumerate() {
            if i > 0 && pos.ot.is_some() {
                // Prefer the denormalised duplicate when it covers this step.
                if let Some((via, via_pos)) = &prev {
                    if let Ok(next_role) = self.resolve_step(pos.ot.expect("checked above"), step) {
                        if let Some(short) = self.combine_shortcut(*via, via_pos, next_role) {
                            prev = Some((next_role.fact, short.clone()));
                            pos = short;
                            continue;
                        }
                    }
                }
                pos = self.anchor_position(&pos)?;
            }
            let before = pos.clone();
            let (next, fact) = self.walk(pos, step)?;
            let _ = before;
            prev = Some((fact, next.clone()));
            pos = next;
        }
        Ok(pos)
    }
}

/// Compiles a conceptual query against a mapping.
///
/// ```
/// use ridl_brm::builder::{identify, SchemaBuilder};
/// use ridl_brm::DataType;
/// use ridl_core::{MappingOptions, Workbench};
/// use ridl_query::{compile, ConceptualQuery};
///
/// let mut b = SchemaBuilder::new("demo");
/// b.nolot("Paper").unwrap();
/// identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
/// let wb = Workbench::new(b.finish().unwrap());
/// let out = wb.map(&MappingOptions::new()).unwrap();
/// let q = ConceptualQuery::list("Paper", &["identified_by"]);
/// let compiled = compile(&out, &q).unwrap();
/// assert_eq!(compiled.join_count, 0);
/// assert_eq!(compiled.columns, vec!["identified_by"]);
/// ```
pub fn compile(out: &MappingOutput, q: &ConceptualQuery) -> Result<CompiledQuery, CompileError> {
    let schema = &out.schema;
    let head = schema
        .object_type_by_name(&q.head)
        .ok_or_else(|| CompileError::UnknownObjectType(q.head.clone()))?;

    // The base relation and the implicit membership filters.
    let (base_table, base_cols, mut base_preds) = base_position(out, head)?;
    let mut c = Compiler {
        schema,
        out,
        query: Query::from(out.rel.table(base_table).name.clone()),
        joined: HashMap::new(),
        base_table,
    };

    let base_pos = Position {
        table: base_table,
        cols: base_cols,
        ot: Some(head),
    };

    // Projections.
    let mut select = Vec::new();
    let mut labels = Vec::new();
    for path in &q.projections {
        let pos = c.walk_path(&base_pos, path)?;
        let label_base: String = path
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>()
            .join(".");
        for (i, col) in pos.cols.iter().enumerate() {
            select.push(c.qualified(pos.table, *col));
            if pos.cols.len() == 1 {
                labels.push(label_base.clone());
            } else {
                labels.push(format!("{label_base}#{i}"));
            }
        }
    }

    // Filters.
    for f in &q.filters {
        let (path, pred): (&[PathStep], _) = match f {
            Comparison::Eq(p, v) => (p, Some(v.clone())),
            Comparison::Exists(p) | Comparison::Missing(p) => (p, None),
        };
        let pos = c.walk_path(&base_pos, path)?;
        match f {
            Comparison::Eq(_, _) => {
                if pos.cols.len() != 1 {
                    return Err(CompileError::Unsupported(
                        "equality against a compound reference".into(),
                    ));
                }
                base_preds.push(Pred::Eq(
                    c.qualified(pos.table, pos.cols[0]),
                    pred.expect("Eq carries a value"),
                ));
            }
            Comparison::Exists(_) => {
                for col in &pos.cols {
                    base_preds.push(Pred::NotNull(c.qualified(pos.table, *col)));
                }
            }
            Comparison::Missing(_) => {
                for col in &pos.cols {
                    base_preds.push(Pred::IsNull(c.qualified(pos.table, *col)));
                }
            }
        }
    }

    c.query.select = select;
    // Keep any predicates the path walking added (combine shortcuts).
    for p in base_preds {
        if !c.query.filter.contains(&p) {
            c.query.filter.push(p);
        }
    }
    let join_count = c.query.join_count();
    Ok(CompiledQuery {
        query: c.query,
        join_count,
        columns: labels,
    })
}

/// The base relation of an object type and the implicit membership filter.
fn base_position(
    out: &MappingOutput,
    head: ObjectTypeId,
) -> Result<(TableId, Vec<u32>, Vec<Pred>), CompileError> {
    let schema = &out.schema;
    if let Some(a) = out.anchor_of(head) {
        return Ok((a.table, a.key_cols.clone(), Vec::new()));
    }
    // A subtype without its own relation: start at the membership
    // selection, turning its filters into predicates.
    for (sid, sl) in schema.sublinks() {
        if sl.sub != head {
            continue;
        }
        if let Some(sel) = out.membership_selection(schema, sid) {
            let table = sel.table;
            let name = |c: &u32| {
                format!(
                    "{}.{}",
                    out.rel.table(table).name,
                    out.rel.table(table).column(*c).name
                )
            };
            let mut preds: Vec<Pred> = sel
                .not_null
                .iter()
                .map(|c| Pred::NotNull(name(c)))
                .collect();
            preds.extend(sel.eq.iter().map(|(c, v)| Pred::Eq(name(c), v.clone())));
            return Ok((table, sel.cols.clone(), preds));
        }
    }
    Err(CompileError::NotMapped(format!(
        "{} has neither a relation nor a membership realisation",
        schema.ot_name(head)
    )))
}

/// Labelled result rows of an executed conceptual query.
pub type LabelledRows = (Vec<String>, Vec<Vec<Option<Value>>>);

/// Compiles and runs a conceptual query on a database holding the mapped
/// state; returns the labelled rows.
pub fn execute(
    out: &MappingOutput,
    db: &ridl_engine::Database,
    q: &ConceptualQuery,
) -> Result<LabelledRows, CompileError> {
    let compiled = compile(out, q)?;
    let rows = db
        .select(&compiled.query)
        .map_err(|e| CompileError::Unsupported(format!("execution failed: {e}")))?;
    Ok((compiled.columns, rows))
}

//! Textual form of conceptual queries, in the spirit of the 1983 RIDL
//! query language:
//!
//! ```text
//! LIST Program_Paper ( has , presented_during , presented_by.has )
//!      WHERE presented_by.has EXISTS AND scheduled_in = 3
//! ```

use std::fmt;

use ridl_brm::Value;

use crate::ast::{Comparison, ConceptualQuery, PathStep};

/// A query-text parse error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryParseError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for QueryParseError {}

fn err(message: impl Into<String>) -> QueryParseError {
    QueryParseError {
        message: message.into(),
    }
}

fn parse_path(s: &str) -> Result<Vec<PathStep>, QueryParseError> {
    let steps: Vec<PathStep> = s
        .split('.')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(|p| PathStep { name: p.to_owned() })
        .collect();
    if steps.is_empty() {
        return Err(err(format!("empty path in `{s}`")));
    }
    Ok(steps)
}

/// Parses a literal token (string, number, TRUE/FALSE, `DATE n`). Shared
/// with the update notation.
pub fn parse_literal_pub(s: &str) -> Result<Value, QueryParseError> {
    parse_literal(s)
}

fn parse_literal(s: &str) -> Result<Value, QueryParseError> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('\'') {
        let inner = inner
            .strip_suffix('\'')
            .ok_or_else(|| err(format!("unterminated string {s}")))?;
        return Ok(Value::str(inner.replace("''", "'")));
    }
    if s.eq_ignore_ascii_case("TRUE") {
        return Ok(Value::Bool(true));
    }
    if s.eq_ignore_ascii_case("FALSE") {
        return Ok(Value::Bool(false));
    }
    if let Some(d) = s.strip_prefix("DATE ") {
        return Ok(Value::Date(
            d.trim().parse().map_err(|_| err(format!("bad date {s}")))?,
        ));
    }
    if let Some((whole, frac)) = s.split_once('.') {
        let mantissa: i64 = format!("{whole}{frac}")
            .parse()
            .map_err(|_| err(format!("bad number {s}")))?;
        return Ok(Value::Num(ridl_brm::Decimal::new(
            mantissa,
            frac.len() as u8,
        )));
    }
    s.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| err(format!("bad literal {s}")))
}

/// Parses `LIST <Head> ( path , … ) [WHERE cond [AND cond]*]`.
pub fn parse_query(src: &str) -> Result<ConceptualQuery, QueryParseError> {
    let src = src.trim();
    let rest = src
        .strip_prefix("LIST ")
        .or_else(|| src.strip_prefix("list "))
        .ok_or_else(|| err("query must start with LIST"))?;
    let open = rest.find('(').ok_or_else(|| err("missing ( after head"))?;
    let head = rest[..open].trim().to_owned();
    if head.is_empty() {
        return Err(err("missing head object type"));
    }
    let close = rest.rfind(')').ok_or_else(|| err("missing )"))?;
    // Split projection list from an optional trailing WHERE.
    let (proj_part, tail) = {
        // The projection parens close at the matching paren of `open`.
        let mut depth = 0usize;
        let mut end = None;
        for (i, ch) in rest.char_indices().skip(open) {
            match ch {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| err("unbalanced parentheses"))?;
        (&rest[open + 1..end], rest[end + 1..].trim())
    };
    let _ = close;
    let projections = proj_part
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(parse_path)
        .collect::<Result<Vec<_>, _>>()?;
    if projections.is_empty() {
        return Err(err("at least one projection is required"));
    }

    let mut filters = Vec::new();
    if !tail.is_empty() {
        let conds = tail
            .strip_prefix("WHERE ")
            .or_else(|| tail.strip_prefix("where "))
            .ok_or_else(|| err(format!("unexpected trailing `{tail}`")))?;
        for cond in conds.split(" AND ") {
            let cond = cond.trim();
            if let Some((path, lit)) = cond.split_once('=') {
                filters.push(Comparison::Eq(parse_path(path)?, parse_literal(lit)?));
            } else if let Some(path) = cond
                .strip_suffix(" EXISTS")
                .or_else(|| cond.strip_suffix(" exists"))
            {
                filters.push(Comparison::Exists(parse_path(path)?));
            } else if let Some(path) = cond
                .strip_suffix(" MISSING")
                .or_else(|| cond.strip_suffix(" missing"))
            {
                filters.push(Comparison::Missing(parse_path(path)?));
            } else {
                return Err(err(format!("cannot parse condition `{cond}`")));
            }
        }
    }
    Ok(ConceptualQuery {
        head,
        projections,
        filters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_query_parses() {
        let q = parse_query(
            "LIST Program_Paper ( has , presented_during , presented_by.has ) \
             WHERE presented_by.has EXISTS AND scheduled_in = 3",
        )
        .unwrap();
        assert_eq!(q.head, "Program_Paper");
        assert_eq!(q.projections.len(), 3);
        assert_eq!(q.projections[2].len(), 2);
        assert_eq!(q.filters.len(), 2);
        assert!(matches!(&q.filters[0], Comparison::Exists(p) if p.len() == 2));
        assert!(matches!(&q.filters[1], Comparison::Eq(_, Value::Int(3))));
    }

    #[test]
    fn literals() {
        assert_eq!(parse_literal("'a''b'").unwrap(), Value::str("a'b"));
        assert_eq!(parse_literal("42").unwrap(), Value::Int(42));
        assert_eq!(
            parse_literal("3.25").unwrap(),
            Value::Num(ridl_brm::Decimal::new(325, 2))
        );
        assert_eq!(parse_literal("TRUE").unwrap(), Value::Bool(true));
        assert_eq!(parse_literal("DATE 100").unwrap(), Value::Date(100));
        assert!(parse_literal("nonsense").is_err());
    }

    #[test]
    fn errors() {
        assert!(parse_query("FETCH X ( a )").is_err());
        assert!(parse_query("LIST X a, b").is_err());
        assert!(parse_query("LIST X ( )").is_err());
        assert!(parse_query("LIST X ( a ) HAVING b = 1").is_err());
        assert!(parse_query("LIST X ( a ) WHERE b ~ 1").is_err());
    }
}

//! # ridl-query — the RIDL conceptual query compiler
//!
//! §4.3 of the paper: "this forwards map will also play a key role in
//! ultimately *compiling* such high-level process specifications into
//! relational application programs. An early production-quality prototype
//! of such a compiler for query processes on the BRM, known as the RIDL
//! compiler (built in 1983), has already proven the effectiveness of that
//! approach."
//!
//! This crate is that compiler for the query subset: conceptual **path
//! queries** phrased entirely over the binary schema —
//!
//! ```text
//! LIST Paper ( Paper_Id , titled , submitted_at )
//!      WHERE titled = 'On NIAM'
//! ```
//!
//! — are compiled *through the forwards map* ([`ridl_core::MappingOutput`])
//! into relational plans over whatever schema the chosen mapping options
//! produced, and executed on `ridl-engine`. The same conceptual query runs
//! unchanged against any of the figure-6 alternatives; only the compiled
//! join count differs, which is exactly the efficiency trade-off the
//! mapping options control (§4.2.2).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod compile;
pub mod parse;
pub mod update;

pub use ast::{Comparison, ConceptualQuery, PathStep};
pub use compile::{compile, execute, CompileError, CompiledQuery};
pub use parse::{parse_query, QueryParseError};
pub use update::{
    apply_add, apply_remove, parse_add, parse_remove, ConceptualAdd, ConceptualRemove,
};

//! Conceptual updates compiled through the forwards map — the write half of
//! "compiling high-level process specifications into relational application
//! programs" (§4.3).
//!
//! ```text
//! ADD Paper ( identified_by = 'P9' , titled = 'A new result' );
//! REMOVE Paper WHERE identified_by = 'P9';
//! ```
//!
//! An `ADD` names the instance by its reference path(s) and assigns values
//! to (single-step) fact paths; the compiler places every value into the
//! relation(s) the mapping chose and executes the inserts/updates inside
//! one engine transaction, so the generated constraints judge the whole
//! conceptual update atomically — exactly the discipline the paper wants
//! application programs to follow.

use std::collections::HashMap;

use ridl_brm::{ObjectTypeId, Value};
use ridl_core::{FactRealization, MappingOutput, SubMembership};
use ridl_engine::{Database, Pred};
use ridl_relational::TableId;

use crate::ast::PathStep;
use crate::compile::CompileError;
use crate::parse::QueryParseError;

/// A conceptual instance addition: assignments of lexical values to
/// single-step fact paths of the head object type. The head's reference
/// path(s) must be among the assignments.
#[derive(Clone, PartialEq, Debug)]
pub struct ConceptualAdd {
    /// The head object type.
    pub head: String,
    /// `(step, value)` assignments.
    pub assignments: Vec<(PathStep, Value)>,
}

/// A conceptual instance removal, identified by its reference value(s).
#[derive(Clone, PartialEq, Debug)]
pub struct ConceptualRemove {
    /// The head object type.
    pub head: String,
    /// `(step, value)` identification.
    pub key: Vec<(PathStep, Value)>,
}

fn parse_assignments(s: &str) -> Result<Vec<(PathStep, Value)>, QueryParseError> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (path, lit) = part.split_once('=').ok_or_else(|| QueryParseError {
            message: format!("expected `path = literal` in `{part}`"),
        })?;
        let path = path.trim();
        if path.contains('.') {
            return Err(QueryParseError {
                message: format!("updates take single-step paths, got `{path}`"),
            });
        }
        out.push((
            PathStep {
                name: path.to_owned(),
            },
            crate::parse::parse_literal_pub(lit)?,
        ));
    }
    if out.is_empty() {
        return Err(QueryParseError {
            message: "at least one assignment is required".into(),
        });
    }
    Ok(out)
}

/// Parses `ADD <Head> ( step = lit , … );`.
pub fn parse_add(src: &str) -> Result<ConceptualAdd, QueryParseError> {
    let src = src.trim().trim_end_matches(';');
    let rest = src
        .strip_prefix("ADD ")
        .or_else(|| src.strip_prefix("add "))
        .ok_or_else(|| QueryParseError {
            message: "update must start with ADD".into(),
        })?;
    let open = rest.find('(').ok_or_else(|| QueryParseError {
        message: "missing (".into(),
    })?;
    let close = rest.rfind(')').ok_or_else(|| QueryParseError {
        message: "missing )".into(),
    })?;
    Ok(ConceptualAdd {
        head: rest[..open].trim().to_owned(),
        assignments: parse_assignments(&rest[open + 1..close])?,
    })
}

/// Parses `REMOVE <Head> WHERE step = lit [AND …];`.
pub fn parse_remove(src: &str) -> Result<ConceptualRemove, QueryParseError> {
    let src = src.trim().trim_end_matches(';');
    let rest = src
        .strip_prefix("REMOVE ")
        .or_else(|| src.strip_prefix("remove "))
        .ok_or_else(|| QueryParseError {
            message: "update must start with REMOVE".into(),
        })?;
    let (head, conds) = rest.split_once(" WHERE ").ok_or_else(|| QueryParseError {
        message: "REMOVE needs a WHERE identification".into(),
    })?;
    let key = conds
        .split(" AND ")
        .map(parse_assignments)
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .flatten()
        .collect();
    Ok(ConceptualRemove {
        head: head.trim().to_owned(),
        key,
    })
}

fn head_id(out: &MappingOutput, head: &str) -> Result<ObjectTypeId, CompileError> {
    out.schema
        .object_type_by_name(head)
        .ok_or_else(|| CompileError::UnknownObjectType(head.to_owned()))
}

/// Resolves a single-step assignment to `(table, value columns)`.
fn place(
    out: &MappingOutput,
    head: ObjectTypeId,
    step: &PathStep,
) -> Result<(TableId, Vec<u32>), CompileError> {
    let schema = &out.schema;
    for ot in schema.ancestors_of(head) {
        for role in schema.roles_of(ot) {
            let ft = schema.fact_type(role.fact);
            let named = ft.role(role.side).name == step.name
                || ft.name == step.name
                || ft.role(role.side.other()).name == step.name;
            if !named {
                continue;
            }
            return match out.realization(role.fact) {
                FactRealization::KeyOf { table, cols, .. } => Ok((*table, cols.clone())),
                FactRealization::Attribute {
                    table, value_cols, ..
                } => Ok((*table, value_cols.clone())),
                FactRealization::OwnTable { .. } => Err(CompileError::Unsupported(
                    "many-to-many facts need their own ADD (one per pair)".into(),
                )),
                FactRealization::Omitted => Err(CompileError::NotMapped(format!(
                    "fact {} was omitted by option",
                    ft.name
                ))),
            };
        }
    }
    Err(CompileError::UnknownStep {
        step: step.name.clone(),
        at: schema.ot_name(head).to_owned(),
    })
}

/// Applies a conceptual ADD: assembles one row per touched relation and
/// inserts (or completes) them inside a transaction. Returns the touched
/// table names.
pub fn apply_add(
    out: &MappingOutput,
    db: &mut Database,
    add: &ConceptualAdd,
) -> Result<Vec<String>, CompileError> {
    let head = head_id(out, &add.head)?;
    // Group the assigned cells per table.
    let mut cells: HashMap<TableId, Vec<(u32, Value)>> = HashMap::new();
    for (step, value) in &add.assignments {
        let (table, cols) = place(out, head, step)?;
        if cols.len() != 1 {
            return Err(CompileError::Unsupported(format!(
                "`{}` is a compound reference; assign its components separately",
                step.name
            )));
        }
        cells
            .entry(table)
            .or_default()
            .push((cols[0], value.clone()));
    }
    // Indicator columns of the head's sublinks must be set on the super row.
    for (sid, sl) in out.schema.sublinks() {
        if let Some(SubMembership::Indicator { table, col, .. }) = &out.sub_memb[sid.index()] {
            let is_member = out.schema.ancestors_of(head).contains(&sl.sub);
            let touches = cells.contains_key(table)
                || out.anchor_of(out.host_of(sl.sup)).map(|a| a.table) == Some(*table);
            if touches && out.schema.ancestors_of(head).contains(&sl.sup) {
                cells
                    .entry(*table)
                    .or_default()
                    .push((*col, Value::Bool(is_member)));
            }
        }
    }

    db.begin();
    let mut touched = Vec::new();
    for (table, assigns) in &cells {
        let t = out.rel.table(*table);
        let mut row = vec![None; t.arity()];
        for (col, v) in assigns {
            row[*col as usize] = Some(v.clone());
        }
        touched.push(t.name.clone());
        db.insert_unchecked(&t.name, row)
            .map_err(|e| CompileError::Unsupported(format!("insert failed: {e}")))?;
    }
    db.commit().map_err(|e| {
        CompileError::Unsupported(format!("conceptual ADD violates the schema: {e}"))
    })?;
    touched.sort();
    Ok(touched)
}

/// Applies a conceptual REMOVE: deletes the instance's rows from every
/// relation keyed by its identification, inside a transaction.
pub fn apply_remove(
    out: &MappingOutput,
    db: &mut Database,
    remove: &ConceptualRemove,
) -> Result<usize, CompileError> {
    let head = head_id(out, &remove.head)?;
    // Identification columns in the head's base relation.
    let anchor = out
        .anchor_of(out.host_of(head))
        .ok_or_else(|| CompileError::NotMapped(format!("{} has no relation", remove.head)))?
        .clone();
    let mut preds = Vec::new();
    for (step, value) in &remove.key {
        let (table, cols) = place(out, head, step)?;
        if table != anchor.table || cols.len() != 1 {
            return Err(CompileError::Unsupported(
                "REMOVE identification must use the head's own reference facts".into(),
            ));
        }
        preds.push(Pred::Eq(
            out.rel.table(table).column(cols[0]).name.clone(),
            value.clone(),
        ));
    }
    db.begin();
    let n = db
        .delete_where(&out.rel.table(anchor.table).name, &preds)
        .map_err(|e| CompileError::Unsupported(format!("delete failed: {e}")));
    match n {
        Ok(n) => {
            db.commit().map_err(|e| {
                CompileError::Unsupported(format!("conceptual REMOVE violates the schema: {e}"))
            })?;
            Ok(n)
        }
        Err(e) => {
            let _ = db.rollback();
            Err(e)
        }
    }
}

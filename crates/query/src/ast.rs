//! The conceptual query model: paths over the binary schema.

use ridl_brm::Value;

/// One step of a conceptual path: follow a fact away from the current
/// object type. The step is named by the *role the current object type
/// plays* (e.g. `titled` from `Paper`) or, equivalently, by the fact-type
/// name; resolution tries the role name first.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PathStep {
    /// Role or fact name.
    pub name: String,
}

/// A comparison in the WHERE clause.
#[derive(Clone, PartialEq, Debug)]
pub enum Comparison {
    /// The path's value equals the literal.
    Eq(Vec<PathStep>, Value),
    /// The path has a value.
    Exists(Vec<PathStep>),
    /// The path has no value.
    Missing(Vec<PathStep>),
}

/// A conceptual query:
/// `LIST <ObjectType> ( path , path , … ) [ WHERE cond [AND cond …] ]`.
///
/// The result lists, per instance of the head object type, the lexical
/// values reached by each projection path (the head's own reference tuple
/// can be listed by naming its identifier role). Optional paths yield NULL;
/// many-valued paths multiply rows, as a relational join would.
#[derive(Clone, PartialEq, Debug)]
pub struct ConceptualQuery {
    /// The head object type name.
    pub head: String,
    /// The projection paths, in output order.
    pub projections: Vec<Vec<PathStep>>,
    /// Conjunctive filter.
    pub filters: Vec<Comparison>,
}

impl ConceptualQuery {
    /// A query listing the head with the given single-step projections.
    pub fn list(head: impl Into<String>, steps: &[&str]) -> Self {
        Self {
            head: head.into(),
            projections: steps
                .iter()
                .map(|s| {
                    s.split('.')
                        .map(|n| PathStep { name: n.to_owned() })
                        .collect()
                })
                .collect(),
            filters: Vec::new(),
        }
    }

    /// Adds an equality filter on a dotted path.
    pub fn where_eq(mut self, path: &str, value: Value) -> Self {
        self.filters.push(Comparison::Eq(
            path.split('.')
                .map(|n| PathStep { name: n.to_owned() })
                .collect(),
            value,
        ));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_splits_dotted_paths() {
        let q = ConceptualQuery::list("Person", &["affiliated_with.located_in"])
            .where_eq("has_name", Value::str("Olga"));
        assert_eq!(q.projections[0].len(), 2);
        assert_eq!(q.projections[0][1].name, "located_in");
        assert!(matches!(&q.filters[0], Comparison::Eq(p, _) if p.len() == 1));
    }
}

//! Bench-rot smoke tests: one `#[test]` per criterion bench, running the
//! bench's setup plus one measured iteration at tiny scale.
//!
//! The criterion harnesses only compile under `cargo bench`, so a bench
//! whose setup assumptions rot (a renamed table, a probe that no longer
//! finds a target, a schema that stops being mappable) would fail at
//! bench time, long after the offending change merged. Each test here
//! exercises the same public entry points the corresponding bench uses —
//! the three migrated engine benches call the exact shared-harness
//! functions — so `cargo test -q` catches the rot.

use std::sync::Arc;

use ridl_bench::artifact::validate_artifact;
use ridl_bench::harness::{
    bench_dir, build_db, build_load_scenario, commit_pair, durability, pick_mutation_target,
};
use ridl_bench::pipeline::{run_macro, MacroConfig};
use ridl_engine::{Database, FsyncPolicy, StdIo, ValidationMode};
use ridl_workloads::macrobench::MacroParams;
use ridl_workloads::synth::{self, GenParams};

/// Small synthetic schema parameters shared by the mapper-side smokes.
fn small(seed: u64) -> GenParams {
    GenParams {
        seed,
        nolots: 10,
        sublinks: 2,
        mn_facts: 5,
        ..GenParams::default()
    }
}

// -- engine_mutation: harness setup + one of each measured statement --
#[test]
fn engine_mutation_smoke() {
    let mut db = build_db(300);
    let t = pick_mutation_target(&mut db);
    for mode in [ValidationMode::FullState, ValidationMode::Incremental] {
        db.set_validation_mode(mode);
        assert!(db.insert(&t.table, t.reject_row.clone()).is_err());
        assert_eq!(
            db.update_where(&t.table, &t.preds, &[(&t.assign_col, t.assign_val.clone())])
                .unwrap(),
            1
        );
        commit_pair(&mut db, &t);
    }
}

// -- bulk_load: scenario build + all three measured load paths --
#[test]
fn bulk_load_smoke() {
    let sc = build_load_scenario(300);
    let rows = sc.state.num_rows();
    assert!(ridl_relational::validate(&sc.schema, &sc.state).is_empty());
    assert!(ridl_relational::validate_with_workers(&sc.schema, &sc.state, 2).is_empty());
    let mut db = Database::create(sc.schema.clone()).unwrap();
    assert_eq!(db.bulk_load(sc.rows.iter().cloned()).unwrap(), rows);
}

// -- durable_commit: WAL-backed commit pair + replay-count accounting --
#[test]
fn durable_commit_smoke() {
    let sc = build_load_scenario(300);
    let dir = bench_dir("smoke-durable");
    let mut db = Database::open_with(
        Arc::new(StdIo),
        &dir,
        sc.schema.clone(),
        durability(FsyncPolicy::Never),
    )
    .unwrap();
    db.bulk_load(sc.rows.iter().cloned()).unwrap();
    let t = pick_mutation_target(&mut db); // probe commits 2 units
    commit_pair(&mut db, &t); // +2
    db.flush_wal().unwrap();
    drop(db);
    let db = Database::open_with(
        Arc::new(StdIo),
        &dir,
        sc.schema.clone(),
        durability(FsyncPolicy::Never),
    )
    .unwrap();
    let rep = db.recovery_report().expect("durable open reports");
    assert_eq!(rep.units_replayed, 4);
    assert_eq!(rep.bytes_discarded, 0);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

// -- macro_pipeline: one tiny end-to-end run, artifact validates --
#[test]
fn macro_pipeline_smoke() {
    let cfg = MacroConfig {
        params: MacroParams {
            seed: 1989,
            target_rows: 600,
        },
        traffic_ops: 60,
        server_sessions: 24,
        ..MacroConfig::default()
    };
    let art = run_macro(&cfg).expect("macro pipeline runs clean at smoke scale");
    assert!(art.rows_loaded >= 300);
    assert!(art.sigex_examples >= 3);
    assert!(art.per_class.iter().any(|c| c.class == "key"));
    let server = art
        .server
        .as_ref()
        .expect("v4 artifact carries the server object");
    assert_eq!(server.anomalies, 0);
    assert!(server.sessions >= 24, "served {} sessions", server.sessions);
    assert!(server.admission_rejects > 0, "overload wave never rejected");
    assert!(server.reads > 0 && server.writes > 0);
    validate_artifact(&art.to_json()).expect("artifact validates");
}

// -- server_bench: the many-client phase alone at tiny scale --
#[test]
fn server_bench_smoke() {
    let s = ridl_bench::server_bench::run_server_bench(12).expect("server bench runs clean");
    assert_eq!(s.anomalies, 0);
    assert!(s.sessions >= 12);
    assert!(s.writes >= 12 + 4 * 25, "churn + burst inserts committed");
    assert!(s.admission_rejects > 0);
    assert!(s.commit_batch_max >= 1);
}

// -- fig4_sublink: eliminate one sublink, state round trip --
#[test]
fn fig4_sublink_smoke() {
    use ridl_brm::population::is_model;
    use ridl_transform::EliminateSublink;
    use ridl_workloads::popgen::{self, PopParams};
    let s = synth::generate(&GenParams {
        seed: 1,
        sublinks: 2,
        ..small(1)
    });
    assert!(s.schema.num_sublinks() > 0);
    let pop = popgen::generate(&s.schema, &PopParams::default());
    assert!(is_model(&s.schema, &pop));
    let t = EliminateSublink {
        sublink: ridl_brm::SublinkId::from_raw(0),
    };
    let out = t.apply(&s.schema).unwrap();
    let mapped = t.map_state(&s.schema, &out, &pop);
    assert!(is_model(&out.schema, &mapped));
    let back = t.unmap_state(&out, &mapped);
    assert_eq!(back.compacted(), pop.compacted());
}

// -- fig6_alternatives: the figure's schema maps under option sets --
#[test]
fn fig6_alternatives_smoke() {
    use ridl_core::{MappingOptions, SublinkOption, Workbench};
    let wb = Workbench::new(ridl_workloads::fig6::schema());
    assert!(wb.analysis().is_mappable());
    let a1 = wb.map(&MappingOptions::new()).unwrap();
    let a4 = wb
        .map(&MappingOptions::new().with_sublinks(SublinkOption::Together))
        .unwrap();
    assert!(a1.table_count() >= a4.table_count());
}

// -- nf_sweep: dependency extraction + normal-form classification --
#[test]
fn nf_sweep_smoke() {
    use ridl_core::{MappingOptions, Workbench};
    use ridl_relational::normal_form_of;
    let s = synth::generate(&small(0));
    let wb = Workbench::new(s.schema);
    assert!(wb.analysis().is_mappable());
    let out = wb.map(&MappingOptions::new()).unwrap();
    let mut classified = 0usize;
    for (_, deps) in out.table_dependencies() {
        let _ = normal_form_of(&deps);
        classified += 1;
    }
    assert_eq!(classified, out.table_count());
}

// -- industrial_scale: map + DDL generation and page estimate --
#[test]
fn industrial_scale_smoke() {
    use ridl_core::{MappingOptions, Workbench};
    use ridl_sqlgen::{generate_for, DialectKind};
    let s = synth::generate(&small(1989));
    let wb = Workbench::new(s.schema);
    assert!(wb.analysis().is_mappable());
    let out = wb.map(&MappingOptions::new()).unwrap();
    let ddl = generate_for(&out.rel, DialectKind::Oracle);
    assert!(ddl.total_lines() > 0);
    assert!(ddl.pages_per_table(50) > 0.0);
}

// -- null_option_sweep: the strict option admits no nullable column --
#[test]
fn null_option_sweep_smoke() {
    use ridl_core::{MappingOptions, NullOption, Workbench};
    let s = synth::generate(&small(0));
    let wb = Workbench::new(s.schema);
    let strict = wb
        .map(&MappingOptions::new().with_nulls(NullOption::NullNotAllowed))
        .unwrap();
    assert_eq!(strict.nullable_column_count(), 0);
    let lax = wb
        .map(&MappingOptions::new().with_nulls(NullOption::NullAllowed))
        .unwrap();
    assert!(lax.table_count() <= strict.table_count());
}

// -- sublink_option_sweep: every sublink option maps --
#[test]
fn sublink_option_sweep_smoke() {
    use ridl_core::{MappingOptions, SublinkOption, Workbench};
    let s = synth::generate(&GenParams {
        seed: 3,
        sublinks: 3,
        ..small(3)
    });
    let wb = Workbench::new(s.schema);
    assert!(wb.analysis().is_mappable());
    for opt in [
        SublinkOption::Separate,
        SublinkOption::Together,
        SublinkOption::IndicatorForSupot,
    ] {
        let out = wb.map(&MappingOptions::new().with_sublinks(opt)).unwrap();
        assert!(out.table_count() > 0);
    }
}

// -- analyzer_throughput: analysis over a generated schema --
#[test]
fn analyzer_throughput_smoke() {
    use ridl_analyzer::analyze;
    let s = synth::generate(&GenParams {
        seed: 11,
        nolots: 10,
        sublinks: 2,
        mn_facts: 5,
        ..GenParams::default()
    });
    let r = analyze(&s.schema);
    assert!(r.is_mappable());
}

// -- roundtrip: forwards map, backwards map, equivalence --
#[test]
fn roundtrip_smoke() {
    use ridl_core::state_map::{equivalent, map_population, unmap_state};
    use ridl_core::{MappingOptions, Workbench};
    use ridl_workloads::popgen::{self, PopParams};
    let s = synth::generate(&GenParams::default());
    let wb = Workbench::new(s.schema);
    let out = wb.map(&MappingOptions::new()).unwrap();
    let pop = popgen::generate(
        &out.schema,
        &PopParams {
            instances_per_entity: 4,
            ..PopParams::default()
        },
    );
    let st = map_population(&out.schema, &out, &pop).unwrap();
    let back = unmap_state(&out.schema, &out, &st).unwrap();
    assert!(equivalent(&out.schema, &out, &pop, &back).unwrap());
}

// -- mapper_throughput: map a generated schema, trace non-empty --
#[test]
fn mapper_throughput_smoke() {
    use ridl_core::{MappingOptions, Workbench};
    let s = synth::generate(&GenParams {
        seed: 23,
        nolots: 10,
        sublinks: 2,
        mn_facts: 5,
        ..GenParams::default()
    });
    let wb = Workbench::new(s.schema.clone());
    let out = wb.map(&MappingOptions::new()).unwrap();
    assert!(out.table_count() > 0);
    assert!(!out.trace.steps().is_empty());
}

// -- denorm_ablation: combine directive removes a dynamic join while
//    both plans return identical answers --
#[test]
fn denorm_ablation_smoke() {
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::{DataType, Side};
    use ridl_core::options::CombineDirective;
    use ridl_core::state_map::map_population;
    use ridl_core::{MappingOptions, Workbench};
    use ridl_query::{compile, ConceptualQuery};
    use ridl_workloads::popgen::{self, PopParams};

    let mut b = SchemaBuilder::new("smoke_chain");
    b.nolot("Order").unwrap();
    identify(&mut b, "Order", "Order_No", DataType::Char(8)).unwrap();
    b.nolot("Customer").unwrap();
    identify(&mut b, "Customer", "Customer_No", DataType::Char(8)).unwrap();
    b.lot("Region", DataType::Char(12)).unwrap();
    b.fact(
        "cust_region",
        ("based_in", "Customer"),
        ("region_of", "Region"),
    )
    .unwrap();
    b.unique("cust_region", Side::Left).unwrap();
    b.total_role("cust_region", Side::Left).unwrap();
    b.fact("placed_by", ("placed", "Order"), ("placing", "Customer"))
        .unwrap();
    b.unique("placed_by", Side::Left).unwrap();
    b.total_role("placed_by", Side::Left).unwrap();
    let schema = b.finish().unwrap();

    let placed_by = schema.fact_type_by_name("placed_by").unwrap();
    let wb = Workbench::new(schema);
    let q = ConceptualQuery::list("Order", &["identified_by", "placed_by.based_in"]);
    let normal = wb.map(&MappingOptions::new()).unwrap();
    let mut denorm_opts = MappingOptions::new();
    denorm_opts.combine.push(CombineDirective {
        via: placed_by,
        weight: 10,
    });
    let denorm = wb.map(&denorm_opts).unwrap();
    let cn = compile(&normal, &q).unwrap();
    let cd = compile(&denorm, &q).unwrap();
    assert!(cn.join_count > cd.join_count);

    let mut answers = Vec::new();
    for (out, compiled) in [(&normal, &cn), (&denorm, &cd)] {
        let pop = popgen::generate(
            &out.schema,
            &PopParams {
                instances_per_entity: 8,
                ..PopParams::default()
            },
        );
        let mut db = Database::create(out.rel.clone()).unwrap();
        db.load_state(map_population(&out.schema, out, &pop).unwrap())
            .unwrap();
        let mut rows = db.select(&compiled.query).unwrap();
        rows.sort();
        answers.push(rows);
    }
    assert_eq!(answers[0], answers[1], "plans disagree");
}

//! Experiment **E-F6** (figure 6): regenerates the paper's four alternative
//! relational schemas for the Paper / Program_Paper fragment and reports
//! their shapes (table count, nullable columns, extended constraints), then
//! benches the mapping under each option combination.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ridl_core::{MappingOptions, NullOption, SublinkOption, Workbench};
use ridl_workloads::fig6;

fn alternatives(wb: &Workbench) -> Vec<(&'static str, MappingOptions)> {
    let invited = wb.schema().object_type_by_name("Invited_Paper").unwrap();
    let sl = wb
        .schema()
        .sublinks()
        .find(|(_, s)| s.sub == invited)
        .map(|(sid, _)| sid)
        .unwrap();
    vec![
        (
            "A1 NULL NOT ALLOWED + SEPARATE",
            MappingOptions::new().with_nulls(NullOption::NullNotAllowed),
        ),
        ("A2 DEFAULT + SEPARATE", MappingOptions::new()),
        (
            "A3 DEFAULT + INDICATOR(Invited)",
            MappingOptions::new().override_sublink(sl, SublinkOption::IndicatorForSupot),
        ),
        (
            "A4 TOGETHER",
            MappingOptions::new().with_sublinks(SublinkOption::Together),
        ),
    ]
}

fn report() {
    println!("\n== E-F6: the four alternatives of figure 6 ==");
    println!(
        "{:<34} {:>7} {:>9} {:>10} {:>8}",
        "alternative", "tables", "nullable", "extended", "C_EQ/EE/DE"
    );
    let wb = Workbench::new(fig6::schema());
    for (label, options) in alternatives(&wb) {
        let out = wb.map(&options).unwrap();
        let extended = out
            .rel
            .constraints
            .iter()
            .filter(|c| !c.kind.natively_enforceable())
            .count();
        let special = out
            .rel
            .constraints
            .iter()
            .filter(|c| {
                c.name.starts_with("C_EQ$")
                    || c.name.starts_with("C_EE$")
                    || c.name.starts_with("C_DE$")
            })
            .count();
        println!(
            "{:<34} {:>7} {:>9} {:>10} {:>8}",
            label,
            out.table_count(),
            out.nullable_column_count(),
            extended,
            special
        );
    }
    println!(
        "shape check: A1 has the most tables and zero nullables; A4 has one\n\
         wide table; A3 carries the C_EQ$ equality view of the paper's text."
    );
}

fn bench(c: &mut Criterion) {
    report();
    let wb = Workbench::new(fig6::schema());
    let mut group = c.benchmark_group("fig6_map");
    for (label, options) in alternatives(&wb) {
        group.bench_with_input(BenchmarkId::from_parameter(label), &options, |b, o| {
            b.iter(|| wb.map(o).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

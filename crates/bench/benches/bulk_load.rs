//! Experiment **E-LOAD**: populating a large database under constraints.
//!
//! Loading the initial population is the paper's "engineering of large
//! databases" moment: every generated constraint must hold over the loaded
//! state before the database is usable. This harness compares three ways
//! of getting the industrial-scale mapped population (~1k/10k/50k rows,
//! 120–150 tables) into the engine:
//!
//! * `sequential` — the naive path: full sequential validation of the
//!   state plus a from-scratch [`ConstraintIndexes`] rebuild (what
//!   `load_state` cost before parallel validation);
//! * `parallel` — the same full validation distributed over scoped
//!   threads (`validate_with_workers`), plus the index rebuild;
//! * `bulk_load` — the engine's streaming path: rows flow through fresh
//!   constraint indexes and every row is checked as an insert delta —
//!   O(rows × constraints-per-table) probes, no per-constraint state
//!   scans or selection materialisation.
//!
//! The claim to verify: `bulk_load` beats sequential full revalidation by
//! ≥2× at 50k rows (it replaces per-constraint scans with hash probes),
//! and parallel validation closes on the sequential path as cores are
//! added while returning byte-identical violation reports.
//!
//! Scenario construction and the timing loop live in
//! `ridl_bench::harness`, shared with the other load benches and
//! smoke-tested under `cargo test`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ridl_bench::harness::{build_load_scenario, time_op_heavy, LoadScenario};
use ridl_engine::Database;
use ridl_relational::{validate, validate_with_workers, ConstraintIndexes};

fn report() -> Vec<LoadScenario> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\n== E-LOAD: loading a population under constraints ({workers} cores) ==");
    println!(
        "{:<8} {:>16} {:>16} {:>16} {:>10}",
        "rows", "sequential(us)", "parallel(us)", "bulk_load(us)", "speedup"
    );
    let mut out = Vec::new();
    for target in [1_000usize, 10_000, 50_000] {
        let sc = build_load_scenario(target);
        let rows = sc.state.num_rows();
        let seq_us = time_op_heavy(|| {
            let v = validate::validate(&sc.schema, &sc.state);
            assert!(v.is_empty());
            let idx = ConstraintIndexes::build(&sc.schema, &sc.state);
            std::hint::black_box(idx);
        });
        let par_us = time_op_heavy(|| {
            let v = validate_with_workers(&sc.schema, &sc.state, workers);
            assert!(v.is_empty());
            let idx = ConstraintIndexes::build(&sc.schema, &sc.state);
            std::hint::black_box(idx);
        });
        let mut db = Database::create(sc.schema.clone()).unwrap();
        let load_us = time_op_heavy(|| {
            let n = db.bulk_load(sc.rows.iter().cloned()).expect("clean load");
            assert_eq!(n, rows);
        });
        println!(
            "{:<8} {:>16.0} {:>16.0} {:>16.0} {:>9.1}x",
            rows,
            seq_us,
            par_us,
            load_us,
            seq_us / load_us
        );
        out.push(sc);
    }
    println!(
        "shape check: bulk_load replaces per-constraint state scans with\n\
         O(1) index probes per row, so its advantage over the sequential\n\
         path widens with the row count; the parallel column tracks the\n\
         sequential one divided by the core count (minus merge overhead)."
    );
    out
}

fn bench(c: &mut Criterion) {
    ridl_obs::init_from_env();
    let obs_before = ridl_obs::snapshot();
    let scenarios = report();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("bulk_load");
    group.sample_size(10);
    for sc in &scenarios {
        let rows = sc.state.num_rows();
        group.bench_function(BenchmarkId::new("sequential_validate", rows), |b| {
            b.iter(|| {
                let v = validate::validate(&sc.schema, &sc.state);
                let idx = ConstraintIndexes::build(&sc.schema, &sc.state);
                (v, idx)
            })
        });
        group.bench_function(BenchmarkId::new("parallel_validate", rows), |b| {
            b.iter(|| {
                let v = validate_with_workers(&sc.schema, &sc.state, workers);
                let idx = ConstraintIndexes::build(&sc.schema, &sc.state);
                (v, idx)
            })
        });
        let mut db = Database::create(sc.schema.clone()).unwrap();
        group.bench_function(BenchmarkId::new("bulk_load", rows), |b| {
            b.iter(|| db.bulk_load(sc.rows.iter().cloned()).expect("clean load"))
        });
    }
    group.finish();
    // Enforcement counters for the whole run, next to the timings in the
    // CRITERION_SUMMARY_JSON artifact.
    let diff = ridl_obs::snapshot().since(&obs_before);
    ridl_obs::append_summary_snapshot("bulk_load", &diff);
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation **E-DENORM**: what the controlled redundancy of the combine
//! directives actually buys — the paper's motivation via Inmon: "the many
//! smaller tables derived by normalization have to be joined dynamically
//! which may result in an unacceptable increase of I/O consumption" (§4).
//!
//! The same conceptual two-step query (person → institution → country) is
//! compiled against the normalized mapping (one dynamic join) and against a
//! denormalised mapping (served from the duplicated column, zero joins),
//! and executed on the engine over growing populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ridl_core::options::CombineDirective;
use ridl_core::state_map::map_population;
use ridl_core::{MappingOptions, MappingOutput, Workbench};
use ridl_engine::Database;
use ridl_query::{compile, ConceptualQuery};
use ridl_workloads::popgen::{self, PopParams};

/// A schema with a hot functional chain E0 → E1 → attribute: every E0
/// references E1 (total), and E1 carries a mandatory lexical attribute.
fn chain_schema() -> ridl_brm::Schema {
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::{DataType, Side};
    let mut b = SchemaBuilder::new("chain");
    b.nolot("Order").unwrap();
    identify(&mut b, "Order", "Order_No", DataType::Char(8)).unwrap();
    b.nolot("Customer").unwrap();
    identify(&mut b, "Customer", "Customer_No", DataType::Char(8)).unwrap();
    b.lot("Region", DataType::Char(12)).unwrap();
    b.fact(
        "cust_region",
        ("based_in", "Customer"),
        ("region_of", "Region"),
    )
    .unwrap();
    b.unique("cust_region", Side::Left).unwrap();
    b.total_role("cust_region", Side::Left).unwrap();
    b.fact("placed_by", ("placed", "Order"), ("placing", "Customer"))
        .unwrap();
    b.unique("placed_by", Side::Left).unwrap();
    b.total_role("placed_by", Side::Left).unwrap();
    b.finish().unwrap()
}

fn loaded(out: &MappingOutput, instances: usize) -> Database {
    let pop = popgen::generate(
        &out.schema,
        &PopParams {
            instances_per_entity: instances,
            ..PopParams::default()
        },
    );
    let mut db = Database::create(out.rel.clone()).unwrap();
    db.load_state(map_population(&out.schema, out, &pop).unwrap())
        .unwrap();
    db
}

fn report() {
    println!("\n== E-DENORM: dynamic join vs controlled redundancy ==");
    let schema = chain_schema();
    let placed_by = schema.fact_type_by_name("placed_by").unwrap();
    let wb = Workbench::new(schema);
    let q = ConceptualQuery::list("Order", &["identified_by", "placed_by.based_in"]);

    let normal = wb.map(&MappingOptions::new()).unwrap();
    let mut denorm_opts = MappingOptions::new();
    denorm_opts.combine.push(CombineDirective {
        via: placed_by,
        weight: 10,
    });
    let denorm = wb.map(&denorm_opts).unwrap();

    let cn = compile(&normal, &q).unwrap();
    let cd = compile(&denorm, &q).unwrap();
    println!(
        "normalized mapping:   {} tables, query joins = {}",
        normal.table_count(),
        cn.join_count
    );
    println!(
        "denormalised mapping: {} tables, query joins = {} (duplicate exploited)",
        denorm.table_count(),
        cd.join_count
    );
    assert!(cn.join_count > cd.join_count);
    // Same answers.
    let db_n = loaded(&normal, 64);
    let db_d = loaded(&denorm, 64);
    let mut rn = db_n.select(&cn.query).unwrap();
    let mut rd = db_d.select(&cd.query).unwrap();
    rn.sort();
    rd.sort();
    assert_eq!(rn, rd, "plans disagree");
    println!("identical answers over 64-instance populations; timing below.");
}

fn bench(c: &mut Criterion) {
    report();
    let schema = chain_schema();
    let placed_by = schema.fact_type_by_name("placed_by").unwrap();
    let wb = Workbench::new(schema);
    let q = ConceptualQuery::list("Order", &["identified_by", "placed_by.based_in"]);
    let normal = wb.map(&MappingOptions::new()).unwrap();
    let mut denorm_opts = MappingOptions::new();
    denorm_opts.combine.push(CombineDirective {
        via: placed_by,
        weight: 10,
    });
    let denorm = wb.map(&denorm_opts).unwrap();
    let cn = compile(&normal, &q).unwrap();
    let cd = compile(&denorm, &q).unwrap();

    let mut group = c.benchmark_group("denorm_ablation");
    for n in [64usize, 256, 1024] {
        let db_n = loaded(&normal, n);
        let db_d = loaded(&denorm, n);
        group.bench_with_input(BenchmarkId::new("join_plan", n), &db_n, |b, db| {
            b.iter(|| db.select(&cn.query).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("duplicate_plan", n), &db_d, |b, db| {
            b.iter(|| db.select(&cd.query).unwrap())
        });
    }
    group.finish();

    // The price of the redundancy: constraint checking on insert.
    let mut group = c.benchmark_group("denorm_write_price");
    group.sample_size(20);
    for (label, out) in [("normalized", &normal), ("denormalised", &denorm)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), out, |b, out| {
            let db = loaded(out, 64);
            b.iter(|| {
                let mut db2 = Database::create(out.rel.clone()).unwrap();
                db2.load_state(db.state().clone()).unwrap();
                db2
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

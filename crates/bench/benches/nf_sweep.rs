//! Experiment **E-5NF** (§4): the default synthesis "always yields a
//! relational schema in fifth normal form"; denormalising directives leave
//! that regime knowingly. The harness sweeps seeds and reports the
//! normal-form distribution of the generated tables per configuration.

use criterion::{criterion_group, criterion_main, Criterion};

use ridl_core::options::CombineDirective;
use ridl_core::{MappingOptions, Workbench};
use ridl_relational::{normal_form_of, NormalForm};
use ridl_workloads::synth::{self, GenParams};

fn nf_counts(out: &ridl_core::MappingOutput) -> [usize; 5] {
    let mut counts = [0usize; 5];
    for (_, deps) in out.table_dependencies() {
        let i = match normal_form_of(&deps) {
            NormalForm::First => 0,
            NormalForm::Second => 1,
            NormalForm::Third => 2,
            NormalForm::Bcnf => 3,
            NormalForm::FifthApprox => 4,
        };
        counts[i] += 1;
    }
    counts
}

/// A denormalising option set: combine along every functional
/// entity-reference fact.
fn denormalising(wb: &Workbench) -> MappingOptions {
    let mut options = MappingOptions::new();
    for (fid, ft) in wb.schema().fact_types() {
        let (lu, ru) = wb.schema().fact_multiplicity(fid);
        let side = match (lu, ru) {
            (true, false) => ridl_brm::Side::Left,
            (false, true) => ridl_brm::Side::Right,
            _ => continue,
        };
        let co = wb
            .schema()
            .role_player(ridl_brm::RoleRef::new(fid, side.other()));
        if wb.schema().kind_of(co).is_entity_like() {
            options.combine.push(CombineDirective {
                via: fid,
                weight: 10,
            });
        }
        let _ = ft;
    }
    options
}

fn report() {
    println!("\n== E-5NF: normal-form distribution of generated tables ==");
    println!(
        "{:<26} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "configuration", "1NF", "2NF", "3NF", "BCNF", "5NF"
    );
    let mut default_total = [0usize; 5];
    let mut denorm_total = [0usize; 5];
    for seed in 0..10u64 {
        let s = synth::generate(&GenParams {
            seed,
            ..GenParams::default()
        });
        let wb = Workbench::new(s.schema);
        if !wb.analysis().is_mappable() {
            continue;
        }
        let d = nf_counts(&wb.map(&MappingOptions::new()).unwrap());
        let n = nf_counts(&wb.map(&denormalising(&wb)).unwrap());
        for i in 0..5 {
            default_total[i] += d[i];
            denorm_total[i] += n[i];
        }
    }
    println!(
        "{:<26} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "default (10 seeds)",
        default_total[0],
        default_total[1],
        default_total[2],
        default_total[3],
        default_total[4]
    );
    println!(
        "{:<26} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "denormalised (combine)",
        denorm_total[0],
        denorm_total[1],
        denorm_total[2],
        denorm_total[3],
        denorm_total[4]
    );
    assert_eq!(
        default_total[0] + default_total[1] + default_total[2] + default_total[3],
        0,
        "default synthesis must be fully normalized"
    );
    println!(
        "shape check: default = 100% 5NF (the paper's §4 claim); combining\n\
         tables drops some below BCNF (\"not even necessarily in 3NF\")."
    );
}

fn bench(c: &mut Criterion) {
    report();
    let s = synth::generate(&GenParams::default());
    let wb = Workbench::new(s.schema);
    let out = wb.map(&MappingOptions::new()).unwrap();
    c.bench_function("nf_classification", |b| {
        b.iter(|| {
            out.table_dependencies()
                .iter()
                .map(|(_, d)| normal_form_of(d))
                .filter(|nf| *nf == NormalForm::FifthApprox)
                .count()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

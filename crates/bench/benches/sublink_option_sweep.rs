//! Experiment **E-SUBOPT** (§4.2.2): the sublink options trade relation
//! count and dynamic joins against controlled redundancy. "The default
//! sublink mapping option (strong typing) in general results in a larger
//! number of relations with only a few attributes. Therefore more dynamic
//! joins might be needed."
//!
//! Join cost metric: for every fact played by a subtype, the number of
//! joins needed to list the fact together with the *supertype's* identifier
//! (0 when both live in one relation keyed by that identifier; 1 when a
//! sub-relation with its own key must be joined back through `_Is`/link
//! columns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ridl_core::{FactRealization, MappingOptions, MappingOutput, SublinkOption, Workbench};
use ridl_workloads::synth::{self, GenParams};

const OPTIONS: [(&str, SublinkOption); 3] = [
    ("SEPARATE (default)", SublinkOption::Separate),
    ("TOGETHER", SublinkOption::Together),
    ("INDICATOR", SublinkOption::IndicatorForSupot),
];

/// Joins needed to read each subtype fact in supertype-key space, plus the
/// membership-test cost per sublink.
fn join_cost(out: &MappingOutput) -> (usize, usize) {
    let schema = &out.schema;
    let mut fact_joins = 0usize;
    let mut membership_joins = 0usize;
    for (sid, sl) in schema.sublinks() {
        let sup_host = out.host_of(sl.sup);
        let sup_anchor = out.anchor_of(sup_host);
        // Membership test: free with an indicator or absorbed columns,
        // one join when it needs the sub-relation.
        match &out.sub_memb[sid.index()] {
            Some(ridl_core::SubMembership::Indicator { .. })
            | Some(ridl_core::SubMembership::AbsorbedColumns { .. })
            | Some(ridl_core::SubMembership::OwnKeyLinked { .. }) => {}
            Some(ridl_core::SubMembership::SubRelation { .. })
            | Some(ridl_core::SubMembership::LinkTable { .. }) => membership_joins += 1,
            None => {}
        }
        // Facts anchored at the subtype.
        for (fid, _) in schema.fact_types() {
            if let FactRealization::Attribute { table, anchor, .. } = out.realization(fid) {
                if *anchor == sl.sub || (out.host_of(sl.sub) != sl.sub && *anchor == sup_host) {
                    // Is the hosting table keyed by the supertype's rep?
                    let same_table = sup_anchor.map(|a| a.table) == Some(*table);
                    if *anchor == sl.sub && !same_table {
                        fact_joins += 1;
                    }
                }
            }
        }
    }
    (fact_joins, membership_joins)
}

/// Compiled join counts for real conceptual queries: per subtype, a query
/// projecting one subtype fact together with the supertype identifier —
/// compiled through the forwards map by `ridl-query`.
fn compiled_join_cost(out: &MappingOutput) -> usize {
    let schema = &out.schema;
    let mut total = 0usize;
    for (_, sl) in schema.sublinks() {
        let sub_name = schema.ot_name(sl.sub);
        // The supertype's identifier role is named `identified_by` in the
        // synthetic schemas; the subtype's first own fact provides the
        // second projection when it exists.
        let own_fact = schema.fact_types().find_map(|(fid, ft)| {
            if ft.player(ridl_brm::Side::Left) == sl.sub {
                Some((fid, ft.role(ridl_brm::Side::Left).name.clone()))
            } else {
                None
            }
        });
        let steps: Vec<&str> = match &own_fact {
            Some((_, role)) => vec!["identified_by", role.as_str()],
            None => vec!["identified_by"],
        };
        let q = ridl_query::ConceptualQuery::list(sub_name, &steps);
        if let Ok(compiled) = ridl_query::compile(out, &q) {
            total += compiled.join_count;
        }
    }
    total
}

fn report() {
    println!("\n== E-SUBOPT: relations and dynamic joins per sublink option ==");
    println!(
        "{:<22} {:>8} {:>11} {:>12} {:>10} {:>9}",
        "option", "tables", "fact joins", "member joins", "qry joins", "ext cons"
    );
    let mut rows = Vec::new();
    for (label, opt) in OPTIONS {
        let mut tables = 0usize;
        let mut fj = 0usize;
        let mut mj = 0usize;
        let mut qj = 0usize;
        let mut extended = 0usize;
        for seed in 0..8u64 {
            let s = synth::generate(&GenParams {
                seed,
                sublinks: 6,
                own_ref_prob: 0.5,
                ..GenParams::default()
            });
            let wb = Workbench::new(s.schema);
            let out = wb.map(&MappingOptions::new().with_sublinks(opt)).unwrap();
            tables += out.table_count();
            let (a, b) = join_cost(&out);
            fj += a;
            mj += b;
            qj += compiled_join_cost(&out);
            extended += out
                .rel
                .constraints
                .iter()
                .filter(|c| !c.kind.natively_enforceable())
                .count();
        }
        println!(
            "{:<22} {:>8} {:>11} {:>12} {:>10} {:>9}",
            label, tables, fj, mj, qj, extended
        );
        rows.push((label, tables, fj + mj));
    }
    assert!(
        rows[0].2 > rows[1].2,
        "SEPARATE needs more joins than TOGETHER"
    );
    assert!(
        rows[0].1 >= rows[1].1,
        "SEPARATE makes at least as many tables"
    );
    println!(
        "shape check: SEPARATE (strong typing) needs the most dynamic joins;\n\
         TOGETHER removes them at the cost of nullable columns; INDICATOR\n\
         buys cheap membership tests with controlled redundancy (C_CEQ$)."
    );
}

fn bench(c: &mut Criterion) {
    report();
    let s = synth::generate(&GenParams {
        seed: 5,
        sublinks: 10,
        ..GenParams::default()
    });
    let wb = Workbench::new(s.schema);
    let mut group = c.benchmark_group("sublink_option_map");
    for (label, opt) in OPTIONS {
        group.bench_with_input(BenchmarkId::from_parameter(label), &opt, |b, o| {
            b.iter(|| wb.map(&MappingOptions::new().with_sublinks(*o)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment **E-SCALE** (§5): "routinely generates databases of up to
//! 120-150 ORACLE tables (this is not a limit). … the generated
//! (pseudo-)SQL constraints cause the output design to reach approx. 1 to
//! 1.2 pages per table on the average, not counting forwards or backwards
//! maps."
//!
//! The harness reports the table count and constraint-volume band for
//! several industrial-sized seeds and benches each pipeline stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ridl_analyzer::analyze;
use ridl_core::{map_schema, MappingOptions, Workbench};
use ridl_sqlgen::{generate_for, DialectKind};
use ridl_workloads::synth::{self, GenParams};

fn report() {
    println!(
        "\n== E-SCALE: industrial-size generation (paper: 120-150 tables, ~1-1.2 pages/table) =="
    );
    println!(
        "{:<6} {:>7} {:>11} {:>10} {:>12} {:>14}",
        "seed", "tables", "constraints", "ddl lines", "pages@50", "band"
    );
    for seed in [1989u64, 7, 42] {
        let s = synth::generate(&GenParams::industrial(seed));
        let wb = Workbench::new(s.schema);
        assert!(wb.analysis().is_mappable());
        let out = wb.map(&MappingOptions::new()).unwrap();
        let ddl = generate_for(&out.rel, DialectKind::Oracle);
        let pages = ddl.pages_per_table(50);
        println!(
            "{:<6} {:>7} {:>11} {:>10} {:>12.2} {:>14}",
            seed,
            out.table_count(),
            out.rel.constraints.len(),
            ddl.total_lines(),
            pages,
            if (110..=160).contains(&out.table_count()) {
                "in band"
            } else {
                "OUT OF BAND"
            }
        );
    }
    println!(
        "shape check: table counts land in the paper's industrial band; the\n\
         constraint volume is the same order as the paper's 1-1.2 pages/table\n\
         (our DDL renderer is denser than the 1989 report generator)."
    );
}

fn bench(c: &mut Criterion) {
    report();
    let s = synth::generate(&GenParams::industrial(1989));
    let analysis = analyze(&s.schema);

    let mut group = c.benchmark_group("industrial_scale");
    group.sample_size(10);
    group.bench_function("ridl_a_analyze", |b| b.iter(|| analyze(&s.schema)));
    group.bench_function("ridl_m_map", |b| {
        b.iter(|| map_schema(&s.schema, &analysis.references, &MappingOptions::new()).unwrap())
    });
    let out = map_schema(&s.schema, &analysis.references, &MappingOptions::new()).unwrap();
    for kind in [DialectKind::Sql2, DialectKind::Oracle, DialectKind::Db2] {
        group.bench_with_input(
            BenchmarkId::new("ddl", format!("{kind:?}")),
            &kind,
            |b, k| b.iter(|| generate_for(&out.rel, *k)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

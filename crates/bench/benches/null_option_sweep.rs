//! Experiment **E-NULLOPT** (§4.2.1): the null-value options trade table
//! count against nullable columns. "NULL NOT ALLOWED … As a consequence, a
//! large number of small tables will in general be generated."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ridl_core::{MappingOptions, NullOption, Workbench};
use ridl_workloads::synth::{self, GenParams};

const OPTIONS: [(&str, NullOption); 4] = [
    ("DEFAULT", NullOption::Default),
    ("NULL NOT ALLOWED", NullOption::NullNotAllowed),
    ("NULL NOT IN KEYS", NullOption::NullNotInKeys),
    ("NULL ALLOWED", NullOption::NullAllowed),
];

fn report() {
    println!("\n== E-NULLOPT: table count vs nullable columns per null option ==");
    println!(
        "{:<20} {:>8} {:>10} {:>14} {:>12}",
        "option", "tables", "nullable", "avg cols/table", "constraints"
    );
    let mut counts = Vec::new();
    for (label, nulls) in OPTIONS {
        let mut tables = 0usize;
        let mut nullable = 0usize;
        let mut cols = 0usize;
        let mut cons = 0usize;
        for seed in 0..8u64 {
            let s = synth::generate(&GenParams {
                seed,
                ..GenParams::default()
            });
            let wb = Workbench::new(s.schema);
            let out = wb.map(&MappingOptions::new().with_nulls(nulls)).unwrap();
            tables += out.table_count();
            nullable += out.nullable_column_count();
            cols += out.rel.tables.iter().map(|t| t.arity()).sum::<usize>();
            cons += out.rel.constraints.len();
        }
        println!(
            "{:<20} {:>8} {:>10} {:>14.2} {:>12}",
            label,
            tables,
            nullable,
            cols as f64 / tables as f64,
            cons
        );
        counts.push((label, tables, nullable));
    }
    let default = counts[0];
    let strict = counts[1];
    assert!(strict.1 > default.1, "NULL NOT ALLOWED makes more tables");
    assert_eq!(strict.2, 0, "NULL NOT ALLOWED admits no nullable column");
    println!(
        "shape check: NULL NOT ALLOWED generated {:.2}x the tables of the default\n\
         with zero nullable columns — the paper's \"large number of small tables\".",
        strict.1 as f64 / default.1.max(1) as f64
    );
}

fn bench(c: &mut Criterion) {
    report();
    let s = synth::generate(&GenParams {
        seed: 3,
        nolots: 30,
        ..GenParams::default()
    });
    let wb = Workbench::new(s.schema);
    let mut group = c.benchmark_group("null_option_map");
    for (label, nulls) in OPTIONS {
        group.bench_with_input(BenchmarkId::from_parameter(label), &nulls, |b, n| {
            b.iter(|| wb.map(&MappingOptions::new().with_nulls(*n)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment **E-DUR**: what durability costs on the engine's commit
//! path, and how fast recovery replays a committed WAL.
//!
//! Four configurations run the same single-statement workload
//! (delete one row by primary key, re-insert it — two committed
//! statements) against the industrial-scale mapped schema:
//!
//! * `memory`    — no WAL at all (`Database::create`), the baseline;
//! * `wal_never` — WAL appended but never fsynced: the CPU cost of
//!   encoding + CRC + the write syscall in isolation;
//! * `wal_group` — group commit, fsync at most once per 500 µs window;
//! * `wal_fsync` — fsync on every commit (the default policy).
//!
//! A second phase commits a long run of statements under `wal_never`,
//! reopens the store, and measures recovery replay throughput
//! (row ops per second through the incremental-validation path).
//!
//! Experiment **E-CKPT** rides along: a full v2 base snapshot vs an
//! incremental dirty-extent delta after a small churn, on the same
//! store — bytes written and wall-clock for each, with the delta/full
//! byte ratio printed (the paper-scale acceptance bound is <20% at
//! ≤5% churn).
//!
//! The claims to verify: the WAL's CPU overhead is small next to
//! constraint validation; group commit recovers most of the distance
//! between `Never` and `Always`; and replay is fast enough that
//! checkpoint spacing is a log-size policy, not a startup-latency one.
//!
//! Store setup, target probing and the timing loop live in
//! `ridl_bench::harness`, shared with the other engine benches and
//! smoke-tested under `cargo test`.

use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ridl_bench::harness::{
    bench_dir, build_load_scenario, commit_pair, durability, pick_mutation_target, time_op,
    LoadScenario,
};
use ridl_engine::{Database, FsyncPolicy};

const TARGET_ROWS: usize = 5_000;
/// Committed delete+reinsert pairs in the replay phase (2 ops each).
const REPLAY_UNITS: usize = 1_000;

struct Config {
    tag: &'static str,
    fsync: Option<FsyncPolicy>,
}

const CONFIGS: [Config; 4] = [
    Config {
        tag: "memory",
        fsync: None,
    },
    Config {
        tag: "wal_never",
        fsync: Some(FsyncPolicy::Never),
    },
    Config {
        tag: "wal_group",
        fsync: Some(FsyncPolicy::GroupCommit { window_micros: 500 }),
    },
    Config {
        tag: "wal_fsync",
        fsync: Some(FsyncPolicy::Always),
    },
];

fn open_config(cfg: &Config, sc: &LoadScenario) -> (Database, Option<PathBuf>) {
    match cfg.fsync {
        None => {
            let mut db = Database::create(sc.schema.clone()).unwrap();
            db.load_state(sc.state.clone()).unwrap();
            (db, None)
        }
        Some(policy) => {
            let dir = bench_dir(&format!("durable-{}", cfg.tag));
            let mut db = Database::open_with(
                std::sync::Arc::new(ridl_engine::StdIo),
                &dir,
                sc.schema.clone(),
                durability(policy),
            )
            .unwrap();
            db.bulk_load(sc.rows.iter().cloned()).unwrap();
            (db, Some(dir))
        }
    }
}

fn report(sc: &LoadScenario) {
    println!("\n== E-DUR: commit latency, WAL off vs on ({TARGET_ROWS} target rows) ==");
    println!("{:<10} {:>14} {:>8}", "config", "del+reins(us)", "vs mem");
    let mut baseline = None;
    for cfg in &CONFIGS {
        let (mut db, dir) = open_config(cfg, sc);
        let target = pick_mutation_target(&mut db);
        let us = time_op(|| commit_pair(&mut db, &target));
        let base = *baseline.get_or_insert(us);
        println!("{:<10} {:>14.1} {:>7.2}x", cfg.tag, us, us / base);
        drop(db);
        if let Some(dir) = dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
    println!(
        "shape check: wal_never ≈ memory (encoding+CRC are cheap next to\n\
         validation); wal_fsync pays one fsync per statement; wal_group\n\
         sits between them, bounded by the window."
    );
}

/// E-CKPT: full base snapshot vs incremental delta on one store.
/// Returns the store dir so the criterion group can reuse it.
fn report_checkpoint(sc: &LoadScenario) -> (Database, PathBuf) {
    let dir = bench_dir("durable-ckpt");
    let mut db = Database::open_with(
        std::sync::Arc::new(ridl_engine::StdIo),
        &dir,
        sc.schema.clone(),
        durability(FsyncPolicy::Never),
    )
    .unwrap();
    db.bulk_load(sc.rows.iter().cloned()).unwrap();
    let target = pick_mutation_target(&mut db);

    let start = Instant::now();
    db.checkpoint_full().unwrap();
    let full_secs = start.elapsed().as_secs_f64();
    let full = db.last_checkpoint_stats().unwrap();
    assert_eq!(full.kind, ridl_engine::CheckpointKind::Base);

    // Small churn: one hot row, a handful of commits.
    for _ in 0..16 {
        commit_pair(&mut db, &target);
    }
    let start = Instant::now();
    db.checkpoint().unwrap();
    let delta_secs = start.elapsed().as_secs_f64();
    let delta = db.last_checkpoint_stats().unwrap();
    assert_eq!(delta.kind, ridl_engine::CheckpointKind::Delta);

    println!("\n== E-CKPT: full vs incremental checkpoint ({TARGET_ROWS} target rows) ==");
    println!(
        "{:<8} {:>12} {:>10} {:>16}",
        "kind", "bytes", "ms", "extents"
    );
    println!(
        "{:<8} {:>12} {:>10.2} {:>9}/{}",
        "full",
        full.bytes,
        full_secs * 1e3,
        full.extents_written,
        full.extents_total
    );
    println!(
        "{:<8} {:>12} {:>10.2} {:>9}/{}",
        "delta",
        delta.bytes,
        delta_secs * 1e3,
        delta.extents_written,
        delta.extents_total
    );
    println!(
        "delta/full byte ratio: {:.4} (bound at paper scale: <0.20)",
        delta.bytes as f64 / full.bytes as f64
    );
    (db, dir)
}

/// Commits `REPLAY_UNITS` delete+reinsert pairs into a WAL, then measures
/// how fast `Database::open` replays them. Returns the store dir (the WAL
/// is left clean, so every reopen replays the same units).
fn build_replay_store(sc: &LoadScenario) -> PathBuf {
    let dir = bench_dir("durable-replay");
    let mut db = Database::open_with(
        std::sync::Arc::new(ridl_engine::StdIo),
        &dir,
        sc.schema.clone(),
        durability(FsyncPolicy::Never),
    )
    .unwrap();
    db.bulk_load(sc.rows.iter().cloned()).unwrap();
    let target = pick_mutation_target(&mut db);
    for _ in 0..REPLAY_UNITS {
        commit_pair(&mut db, &target);
    }
    db.flush_wal().unwrap();
    dir
}

fn report_replay(sc: &LoadScenario, dir: &PathBuf) -> usize {
    let start = Instant::now();
    let db = Database::open_with(
        std::sync::Arc::new(ridl_engine::StdIo),
        dir,
        sc.schema.clone(),
        durability(FsyncPolicy::Never),
    )
    .unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    let rep = db.recovery_report().expect("durable open reports").clone();
    // +2: the pick_mutation_target probe commits one delete+reinsert
    // pair itself.
    assert_eq!(rep.units_replayed, 2 * REPLAY_UNITS + 2);
    assert_eq!(rep.bytes_discarded, 0);
    println!("\n== E-DUR: recovery replay throughput ==");
    println!(
        "replayed {} units ({} row ops, {} WAL bytes) in {:.1} ms: {:.0} ops/s",
        rep.units_replayed,
        rep.ops_replayed,
        rep.wal_bytes_scanned,
        elapsed * 1e3,
        rep.ops_replayed as f64 / elapsed
    );
    rep.ops_replayed
}

fn bench(c: &mut Criterion) {
    ridl_obs::init_from_env();
    ridl_obs::init_tracing_from_env();
    let obs_before = ridl_obs::snapshot();
    let sc = build_load_scenario(TARGET_ROWS);

    // Run the E-DUR report with detail on and assert the WAL
    // instrumentation is live: the fsync configs must bump the fsync
    // counter, populate the group-commit batch-size histogram, and (with
    // detail enabled) record a non-zero fsync latency.
    let detail_was = ridl_obs::detail_enabled();
    ridl_obs::set_detail(true);
    report(&sc);
    ridl_obs::set_detail(detail_was);
    let wal_diff = ridl_obs::snapshot().since(&obs_before);
    assert!(
        wal_diff.counter("wal.fsyncs") > 0,
        "wal_fsync/wal_group configs committed but wal.fsyncs stayed 0"
    );
    let batches = ridl_obs::hist::summary_named("wal.group_batch").unwrap_or_default();
    assert!(
        batches.count > 0,
        "fsyncs happened but the wal.group_batch histogram is empty"
    );
    let fsync_ns = ridl_obs::hist::summary_named("wal.fsync").unwrap_or_default();
    assert!(
        fsync_ns.max > 0,
        "detail was on but the wal.fsync timer recorded no nanoseconds"
    );

    let mut group = c.benchmark_group("durable_commit");
    group.sample_size(20);
    for cfg in &CONFIGS {
        let (mut db, dir) = open_config(cfg, &sc);
        let target = pick_mutation_target(&mut db);
        group.bench_function(BenchmarkId::new("delete_reinsert", cfg.tag), |b| {
            b.iter(|| commit_pair(&mut db, &target))
        });
        drop(db);
        if let Some(dir) = dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    // E-CKPT: report once, then time the two checkpoint flavors. Each
    // delta iteration commits one pair first so there is always a dirty
    // extent to write (an empty delta would time a no-op).
    let (mut db, ckpt_dir) = report_checkpoint(&sc);
    let target = pick_mutation_target(&mut db);
    group.bench_function(BenchmarkId::new("checkpoint", "full"), |b| {
        b.iter(|| db.checkpoint_full().unwrap())
    });
    // Every 8th call collapses the chain into a fresh base
    // (MAX_DELTA_CHAIN), so this times the real steady-state mix.
    group.bench_function(BenchmarkId::new("checkpoint", "delta"), |b| {
        b.iter(|| {
            commit_pair(&mut db, &target);
            db.checkpoint().unwrap()
        })
    });
    drop(db);
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let replay_dir = build_replay_store(&sc);
    let ops = report_replay(&sc, &replay_dir);
    group.bench_function(
        BenchmarkId::new("recovery_replay", format!("{ops}ops")),
        |b| {
            b.iter(|| {
                let db = Database::open_with(
                    std::sync::Arc::new(ridl_engine::StdIo),
                    &replay_dir,
                    sc.schema.clone(),
                    durability(FsyncPolicy::Never),
                )
                .unwrap();
                assert_eq!(
                    db.recovery_report().expect("reports").units_replayed,
                    2 * REPLAY_UNITS + 2
                );
                db
            })
        },
    );
    group.finish();
    let _ = std::fs::remove_dir_all(&replay_dir);

    // WAL/commit counters for the whole run, next to criterion's timings
    // in the CRITERION_SUMMARY_JSON artifact.
    let diff = ridl_obs::snapshot().since(&obs_before);
    ridl_obs::append_summary_snapshot("durable_commit", &diff);
    if let Some(path) = ridl_obs::write_chrome_trace_env() {
        eprintln!("durable_commit: chrome trace written to {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

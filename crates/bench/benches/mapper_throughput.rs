//! RIDL-M throughput against schema size, plus the engine executing a
//! generated schema (insert + select) — the interactive loop a database
//! engineer drives through the RIDL-M interface (§3.3, fig. 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ridl_brm::Value;
use ridl_core::{MappingOptions, Workbench};
use ridl_engine::{Database, Query};
use ridl_workloads::synth::{self, GenParams};

fn report() {
    println!("\n== RIDL-M scaling: tables generated per schema size ==");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>12}",
        "nolots", "facts", "tables", "cons", "trace steps"
    );
    for nolots in [10usize, 40, 85, 150] {
        let s = synth::generate(&GenParams {
            seed: 23,
            nolots,
            sublinks: nolots / 5,
            mn_facts: nolots / 2,
            ..GenParams::default()
        });
        let wb = Workbench::new(s.schema.clone());
        let out = wb.map(&MappingOptions::new()).unwrap();
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>12}",
            nolots,
            s.schema.num_fact_types(),
            out.table_count(),
            out.rel.constraints.len(),
            out.trace.steps().len()
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("ridl_m");
    group.sample_size(10);
    for nolots in [10usize, 40, 85] {
        let s = synth::generate(&GenParams {
            seed: 23,
            nolots,
            sublinks: nolots / 5,
            mn_facts: nolots / 2,
            ..GenParams::default()
        });
        let wb = Workbench::new(s.schema.clone());
        group.throughput(Throughput::Elements(s.schema.num_fact_types() as u64));
        group.bench_with_input(BenchmarkId::new("map", nolots), &wb, |b, w| {
            b.iter(|| w.map(&MappingOptions::new()).unwrap())
        });
    }
    group.finish();

    // Engine DML over a generated schema.
    let s = synth::generate(&GenParams {
        seed: 23,
        nolots: 10,
        ..GenParams::default()
    });
    let wb = Workbench::new(s.schema);
    let out = wb.map(&MappingOptions::new()).unwrap();
    let first_anchor = out
        .anchors
        .values()
        .next()
        .expect("at least one anchor")
        .table;
    let table_name = out.rel.table(first_anchor).name.clone();
    let arity = out.rel.table(first_anchor).arity();
    let mut group = c.benchmark_group("engine");
    group.bench_function("insert_validate", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let mut db = Database::create(out.rel.clone()).unwrap();
            i += 1;
            let mut row = vec![None; arity];
            row[0] = Some(Value::str(format!("K{i}")));
            for (ci, col) in out.rel.table(first_anchor).columns.iter().enumerate() {
                if !col.nullable && ci != 0 {
                    row[ci] = Some(Value::str(format!("v{ci}")));
                }
            }
            // May fail on domain width; the enforcement pass is the cost
            // being measured either way.
            let _ = db.insert(&table_name, row);
            db
        })
    });
    group.bench_function("select_full_table", |b| {
        let db = Database::create(out.rel.clone()).unwrap();
        let q = Query::from(table_name.clone());
        b.iter(|| db.select(&q).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment **E-RT**: throughput of the executable schema transformation
//! `g` and its inverse (state equivalence, §4.1) over growing populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ridl_core::state_map::{equivalent, map_population, unmap_state};
use ridl_core::{MappingOptions, Workbench};
use ridl_workloads::popgen::{self, PopParams};
use ridl_workloads::synth::{self, GenParams};

fn report() {
    println!("\n== E-RT: state-map round trips over growing populations ==");
    println!(
        "{:<12} {:>12} {:>10} {:>10}",
        "instances", "pop facts", "rows", "roundtrip"
    );
    let s = synth::generate(&GenParams::default());
    let wb = Workbench::new(s.schema);
    let out = wb.map(&MappingOptions::new()).unwrap();
    for n in [8usize, 64, 256] {
        let pop = popgen::generate(
            &out.schema,
            &PopParams {
                instances_per_entity: n,
                ..PopParams::default()
            },
        );
        let st = map_population(&out.schema, &out, &pop).unwrap();
        let back = unmap_state(&out.schema, &out, &st).unwrap();
        let ok = equivalent(&out.schema, &out, &pop, &back).unwrap();
        println!(
            "{:<12} {:>12} {:>10} {:>10}",
            n,
            pop.num_fact_instances(),
            st.num_rows(),
            if ok { "lossless" } else { "DIVERGED" }
        );
        assert!(ok);
    }
}

fn bench(c: &mut Criterion) {
    report();
    let s = synth::generate(&GenParams::default());
    let wb = Workbench::new(s.schema);
    let out = wb.map(&MappingOptions::new()).unwrap();

    let mut group = c.benchmark_group("state_map");
    group.sample_size(10);
    for n in [8usize, 64, 256] {
        let pop = popgen::generate(
            &out.schema,
            &PopParams {
                instances_per_entity: n,
                ..PopParams::default()
            },
        );
        let st = map_population(&out.schema, &out, &pop).unwrap();
        group.throughput(Throughput::Elements(pop.num_fact_instances() as u64));
        group.bench_with_input(BenchmarkId::new("forward_g", n), &pop, |b, p| {
            b.iter(|| map_population(&out.schema, &out, p).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("inverse_g", n), &st, |b, s| {
            b.iter(|| unmap_state(&out.schema, &out, s).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

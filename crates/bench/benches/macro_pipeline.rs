//! Experiment **E-MACRO**: the RIDL-Bench end-to-end macro benchmark.
//!
//! One closed loop through the whole tool chain — synthesize the
//! industrial-band BRM schema, analyze and map it through RIDL-M,
//! generate the calibrated population, `bulk_load` it into a WAL-backed
//! engine, drive mixed mutation/query traffic, stress every constraint
//! class with verified significant examples, checkpoint, commit more
//! traffic, crash, and recover. The same driver backs `ridl bench`
//! (which writes the per-PR `BENCH_<pr>.json` trajectory artifact); here
//! criterion times the loop at reduced scale so the end-to-end number
//! lands in the CRITERION_SUMMARY_JSON artifact next to the micro
//! benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ridl_bench::pipeline::{run_macro, MacroConfig};
use ridl_workloads::macrobench::MacroParams;

fn bench(c: &mut Criterion) {
    ridl_obs::init_from_env();
    ridl_obs::init_tracing_from_env();
    let obs_before = ridl_obs::snapshot();
    let cfg = MacroConfig {
        params: MacroParams {
            seed: 1989,
            target_rows: 2_000,
        },
        traffic_ops: 200,
        ..MacroConfig::default()
    };
    // One full run up front: print the phase table and fail loudly if any
    // end-to-end expectation (rejected tip, replayed units, clean
    // recovered state) does not hold.
    let art = run_macro(&cfg).expect("macro pipeline runs clean");
    println!(
        "\n== E-MACRO: end-to-end pipeline at {} rows ==",
        art.rows_loaded
    );
    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>10}",
        "phase", "sec", "units", "units/s", "p99(us)"
    );
    for p in &art.phases {
        println!(
            "{:<24} {:>10.4} {:>10} {:>12.0} {:>10.1}",
            p.name,
            p.seconds,
            p.units,
            p.per_second,
            p.p99_ns.unwrap_or(0) as f64 / 1e3
        );
    }
    let mut group = c.benchmark_group("macro_pipeline");
    group.sample_size(10);
    group.bench_function(
        BenchmarkId::new("full_run", format!("{}rows", art.rows_loaded)),
        |b| b.iter(|| run_macro(&cfg).expect("macro pipeline runs clean")),
    );
    group.finish();
    let diff = ridl_obs::snapshot().since(&obs_before);
    ridl_obs::append_summary_snapshot("macro_pipeline", &diff);
    if let Some(path) = ridl_obs::write_chrome_trace_env() {
        eprintln!("macro_pipeline: chrome trace written to {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment **E-INC**: incremental constraint enforcement on the engine's
//! mutation hot path.
//!
//! The engine validates each mutation either by re-checking the whole
//! state (`ValidationMode::FullState`, O(database) per statement — what a
//! naive reading of the paper's "generated constraints" gives you) or by
//! delta validation against maintained hash indexes
//! (`ValidationMode::Incremental`, O(change)). This harness loads the
//! industrial-scale mapped schema at ~1k/10k/50k rows and times three
//! statement shapes under both modes:
//!
//! * `insert` — a rejected insert (duplicate primary key with a tweaked
//!   non-key column), i.e. validate + undo-log rollback;
//! * `update` — an identity `UPDATE ... WHERE pk = ...` on one row;
//! * `delete+reinsert` — removing a safe row and putting it back.
//!
//! The claim to verify: incremental cost stays flat as the database grows,
//! while full-state validation scales with the row count.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ridl_brm::Value;
use ridl_engine::{Database, Pred, ValidationMode};
use ridl_relational::{Row, TableId};
use ridl_workloads::scenario;

/// Builds the industrial-scale database with roughly `target_rows` rows
/// (the shared calibrated scenario from `ridl-workloads`).
fn build_db(target_rows: usize) -> Database {
    let sc = scenario::industrial_population(1989, target_rows);
    let mut db = Database::create(sc.schema).unwrap();
    db.load_state(sc.state).unwrap();
    db
}

/// The concrete rows/predicates a measurement run needs.
struct Targets {
    table: String,
    /// Insert that is rejected by key validation (distinct row, same PK).
    reject_row: Row,
    /// Predicates identifying one safe-to-delete row by primary key.
    row_preds: Vec<Pred>,
    /// That row, for re-insertion.
    safe_row: Row,
    /// Identity assignment for `update_where` on the same row.
    assign_col: String,
    assign_val: Option<Value>,
}

/// Picks, from the largest suitable table, a row that can be deleted and
/// re-inserted, plus a PK-duplicate row for the rejected insert.
fn pick_targets(db: &mut Database) -> Targets {
    let schema = db.schema().clone();
    let mut tables: Vec<(TableId, usize)> = schema
        .tables()
        .map(|(tid, _)| (tid, db.state().rows(tid).len()))
        .collect();
    tables.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    for (tid, n) in tables {
        if n < 2 {
            continue;
        }
        let Some(pk) = schema.primary_key_of(tid) else {
            continue;
        };
        let pk = pk.to_vec();
        let t = schema.table(tid);
        let Some(non_key) = (0..t.arity() as u32).find(|c| !pk.contains(c)) else {
            continue;
        };
        let rows: Vec<Row> = db.state().rows(tid).iter().cloned().collect();
        for row in &rows {
            if pk.iter().any(|c| row[*c as usize].is_none()) {
                continue;
            }
            // A distinct row with the same primary key: tweak one non-key
            // column to a value no existing row has there.
            let mut reject_row = row.clone();
            let candidates = rows
                .iter()
                .map(|r| r[non_key as usize].clone())
                .chain([None])
                .filter(|v| *v != row[non_key as usize]);
            let mut found_reject = None;
            for cand in candidates {
                reject_row[non_key as usize] = cand;
                if !db.state().rows(tid).contains(&reject_row) {
                    found_reject = Some(reject_row.clone());
                    break;
                }
            }
            let Some(reject_row) = found_reject else {
                continue;
            };
            let row_preds: Vec<Pred> = pk
                .iter()
                .map(|c| {
                    Pred::Eq(
                        t.column(*c).name.clone(),
                        row[*c as usize].clone().expect("checked non-null"),
                    )
                })
                .collect();
            // Probe: deletable (and re-insertable) without violations?
            if db.delete_where(&t.name, &row_preds) == Ok(1) {
                db.insert(&t.name, row.clone()).expect("reinsert probe");
                return Targets {
                    table: t.name.clone(),
                    reject_row,
                    row_preds,
                    safe_row: row.clone(),
                    assign_col: t.column(non_key).name.clone(),
                    assign_val: row[non_key as usize].clone(),
                };
            }
        }
    }
    panic!("no suitable benchmark table in the industrial mapping");
}

/// Adaptive wall-clock timing: returns microseconds per iteration.
fn time_op(mut f: impl FnMut()) -> f64 {
    let warmup = Instant::now();
    f();
    let est = warmup.elapsed().as_secs_f64();
    let iters = ((0.05 / est.max(1e-7)) as usize).clamp(5, 400);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

struct Measured {
    insert_us: f64,
    update_us: f64,
    delete_us: f64,
}

fn measure(db: &mut Database, t: &Targets, mode: ValidationMode) -> Measured {
    db.set_validation_mode(mode);
    let insert_us = time_op(|| {
        let r = db.insert(&t.table, t.reject_row.clone());
        assert!(r.is_err(), "duplicate-PK insert must be rejected");
    });
    let update_us = time_op(|| {
        let n = db
            .update_where(
                &t.table,
                &t.row_preds,
                &[(&t.assign_col, t.assign_val.clone())],
            )
            .expect("identity update is valid");
        assert_eq!(n, 1);
    });
    let delete_us = time_op(|| {
        let n = db
            .delete_where(&t.table, &t.row_preds)
            .expect("safe delete");
        assert_eq!(n, 1);
        db.insert(&t.table, t.safe_row.clone()).expect("reinsert");
    });
    db.set_validation_mode(ValidationMode::Incremental);
    Measured {
        insert_us,
        update_us,
        delete_us,
    }
}

fn report() -> Vec<(usize, Database, Targets)> {
    println!("\n== E-INC: mutation cost, delta validation vs full re-validation ==");
    println!(
        "{:<8} {:<6} {:>12} {:>12} {:>18}",
        "rows", "mode", "insert(us)", "update(us)", "del+reins(us)"
    );
    let mut out = Vec::new();
    for target in [1_000usize, 10_000, 50_000] {
        let mut db = build_db(target);
        let rows = db.state().num_rows();
        let targets = pick_targets(&mut db);
        let full = measure(&mut db, &targets, ValidationMode::FullState);
        let delta = measure(&mut db, &targets, ValidationMode::Incremental);
        println!(
            "{:<8} {:<6} {:>12.1} {:>12.1} {:>18.1}",
            rows, "full", full.insert_us, full.update_us, full.delete_us
        );
        println!(
            "{:<8} {:<6} {:>12.1} {:>12.1} {:>18.1}",
            rows, "delta", delta.insert_us, delta.update_us, delta.delete_us
        );
        println!(
            "{:<8} {:<6} {:>11.1}x {:>11.1}x {:>17.1}x",
            "",
            "ratio",
            full.insert_us / delta.insert_us,
            full.update_us / delta.update_us,
            full.delete_us / delta.delete_us
        );
        out.push((rows, db, targets));
    }
    println!(
        "shape check: the delta row stays flat as rows grow (O(change) per\n\
         statement); the full row scales with the database and the ratio\n\
         widens — the reason the engine keeps indexes and an undo log."
    );
    out
}

fn bench(c: &mut Criterion) {
    ridl_obs::init_from_env();
    // Under RIDL_TRACE_JSON the whole run is span-traced and exported as a
    // Chrome trace (CI validates the file with `ridl tracecheck`).
    ridl_obs::init_tracing_from_env();
    let obs_before = ridl_obs::snapshot();
    let dbs = report();
    let mut group = c.benchmark_group("engine_mutation");
    group.sample_size(20);
    for (rows, mut db, targets) in dbs {
        for mode in [ValidationMode::Incremental, ValidationMode::FullState] {
            let tag = match mode {
                ValidationMode::Incremental => "delta",
                ValidationMode::FullState => "full",
            };
            db.set_validation_mode(mode);
            group.bench_function(
                BenchmarkId::new("insert_reject", format!("{tag}/{rows}")),
                |b| {
                    b.iter(|| {
                        db.insert(&targets.table, targets.reject_row.clone())
                            .is_err()
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new("update_identity", format!("{tag}/{rows}")),
                |b| {
                    b.iter(|| {
                        db.update_where(
                            &targets.table,
                            &targets.row_preds,
                            &[(&targets.assign_col, targets.assign_val.clone())],
                        )
                        .expect("identity update")
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new("delete_reinsert", format!("{tag}/{rows}")),
                |b| {
                    b.iter(|| {
                        db.delete_where(&targets.table, &targets.row_preds)
                            .expect("safe delete");
                        db.insert(&targets.table, targets.safe_row.clone())
                            .expect("reinsert");
                    })
                },
            );
        }
        db.set_validation_mode(ValidationMode::Incremental);
    }
    group.finish();
    // Enforcement counters for the whole run, next to the timings in the
    // CRITERION_SUMMARY_JSON artifact.
    let diff = ridl_obs::snapshot().since(&obs_before);
    ridl_obs::append_summary_snapshot("engine_mutation", &diff);
    if let Some(path) = ridl_obs::write_chrome_trace_env() {
        eprintln!("engine_mutation: chrome trace written to {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

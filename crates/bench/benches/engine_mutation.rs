//! Experiment **E-INC**: incremental constraint enforcement on the engine's
//! mutation hot path.
//!
//! The engine validates each mutation either by re-checking the whole
//! state (`ValidationMode::FullState`, O(database) per statement — what a
//! naive reading of the paper's "generated constraints" gives you) or by
//! delta validation against maintained hash indexes
//! (`ValidationMode::Incremental`, O(change)). This harness loads the
//! industrial-scale mapped schema at ~1k/10k/50k rows and times three
//! statement shapes under both modes:
//!
//! * `insert` — a rejected insert (duplicate primary key with a tweaked
//!   non-key column), i.e. validate + undo-log rollback;
//! * `update` — an identity `UPDATE ... WHERE pk = ...` on one row;
//! * `delete+reinsert` — removing a safe row and putting it back.
//!
//! The claim to verify: incremental cost stays flat as the database grows,
//! while full-state validation scales with the row count.
//!
//! Setup (database construction, target probing, adaptive timing) lives
//! in `ridl_bench::harness`, shared with the other engine benches and
//! smoke-tested under `cargo test`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ridl_bench::harness::{build_db, pick_mutation_target, time_op, MutationTarget};
use ridl_engine::{Database, ValidationMode};

struct Measured {
    insert_us: f64,
    update_us: f64,
    delete_us: f64,
}

fn measure(db: &mut Database, t: &MutationTarget, mode: ValidationMode) -> Measured {
    db.set_validation_mode(mode);
    let insert_us = time_op(|| {
        let r = db.insert(&t.table, t.reject_row.clone());
        assert!(r.is_err(), "duplicate-PK insert must be rejected");
    });
    let update_us = time_op(|| {
        let n = db
            .update_where(&t.table, &t.preds, &[(&t.assign_col, t.assign_val.clone())])
            .expect("identity update is valid");
        assert_eq!(n, 1);
    });
    let delete_us = time_op(|| {
        let n = db.delete_where(&t.table, &t.preds).expect("safe delete");
        assert_eq!(n, 1);
        db.insert(&t.table, t.row.clone()).expect("reinsert");
    });
    db.set_validation_mode(ValidationMode::Incremental);
    Measured {
        insert_us,
        update_us,
        delete_us,
    }
}

fn report() -> Vec<(usize, Database, MutationTarget)> {
    println!("\n== E-INC: mutation cost, delta validation vs full re-validation ==");
    println!(
        "{:<8} {:<6} {:>12} {:>12} {:>18}",
        "rows", "mode", "insert(us)", "update(us)", "del+reins(us)"
    );
    let mut out = Vec::new();
    for target in [1_000usize, 10_000, 50_000] {
        let mut db = build_db(target);
        let rows = db.state().num_rows();
        let targets = pick_mutation_target(&mut db);
        let full = measure(&mut db, &targets, ValidationMode::FullState);
        let delta = measure(&mut db, &targets, ValidationMode::Incremental);
        println!(
            "{:<8} {:<6} {:>12.1} {:>12.1} {:>18.1}",
            rows, "full", full.insert_us, full.update_us, full.delete_us
        );
        println!(
            "{:<8} {:<6} {:>12.1} {:>12.1} {:>18.1}",
            rows, "delta", delta.insert_us, delta.update_us, delta.delete_us
        );
        println!(
            "{:<8} {:<6} {:>11.1}x {:>11.1}x {:>17.1}x",
            "",
            "ratio",
            full.insert_us / delta.insert_us,
            full.update_us / delta.update_us,
            full.delete_us / delta.delete_us
        );
        out.push((rows, db, targets));
    }
    println!(
        "shape check: the delta row stays flat as rows grow (O(change) per\n\
         statement); the full row scales with the database and the ratio\n\
         widens — the reason the engine keeps indexes and an undo log."
    );
    out
}

fn bench(c: &mut Criterion) {
    ridl_obs::init_from_env();
    // Under RIDL_TRACE_JSON the whole run is span-traced and exported as a
    // Chrome trace (CI validates the file with `ridl tracecheck`).
    ridl_obs::init_tracing_from_env();
    let obs_before = ridl_obs::snapshot();
    let dbs = report();
    let mut group = c.benchmark_group("engine_mutation");
    group.sample_size(20);
    for (rows, mut db, targets) in dbs {
        for mode in [ValidationMode::Incremental, ValidationMode::FullState] {
            let tag = match mode {
                ValidationMode::Incremental => "delta",
                ValidationMode::FullState => "full",
            };
            db.set_validation_mode(mode);
            group.bench_function(
                BenchmarkId::new("insert_reject", format!("{tag}/{rows}")),
                |b| {
                    b.iter(|| {
                        db.insert(&targets.table, targets.reject_row.clone())
                            .is_err()
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new("update_identity", format!("{tag}/{rows}")),
                |b| {
                    b.iter(|| {
                        db.update_where(
                            &targets.table,
                            &targets.preds,
                            &[(&targets.assign_col, targets.assign_val.clone())],
                        )
                        .expect("identity update")
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new("delete_reinsert", format!("{tag}/{rows}")),
                |b| {
                    b.iter(|| {
                        db.delete_where(&targets.table, &targets.preds)
                            .expect("safe delete");
                        db.insert(&targets.table, targets.row.clone())
                            .expect("reinsert");
                    })
                },
            );
        }
        db.set_validation_mode(ValidationMode::Incremental);
    }
    group.finish();
    // Enforcement counters for the whole run, next to the timings in the
    // CRITERION_SUMMARY_JSON artifact.
    let diff = ridl_obs::snapshot().since(&obs_before);
    ridl_obs::append_summary_snapshot("engine_mutation", &diff);
    if let Some(path) = ridl_obs::write_chrome_trace_env() {
        eprintln!("engine_mutation: chrome trace written to {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment **E-F4** (figure 4): sublink elimination is a lossless
//! binary→binary schema transformation.
//!
//! The harness regenerates the figure's claim: a schema with sublinks
//! transforms into a state-equivalent schema without them — measured here
//! as forward+backward state-map round trips over generated populations —
//! and reports transformation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ridl_brm::population::is_model;
use ridl_transform::EliminateSublink;
use ridl_workloads::popgen::{self, PopParams};
use ridl_workloads::synth::{self, GenParams};

fn report() {
    println!("\n== E-F4: sublink elimination (fig. 4) state equivalence ==");
    println!(
        "{:<8} {:>9} {:>10} {:>12} {:>10}",
        "seed", "sublinks", "facts", "pop facts", "roundtrip"
    );
    for seed in [1u64, 2, 3, 4, 5] {
        let s = synth::generate(&GenParams {
            seed,
            sublinks: 5,
            ..GenParams::default()
        });
        let pop = popgen::generate(&s.schema, &PopParams::default());
        assert!(is_model(&s.schema, &pop));
        // Eliminate every sublink in turn (each elimination renumbers the
        // survivors, so always eliminate sublink 0 of the current schema).
        let mut schema = s.schema.clone();
        let mut pop_cur = pop.clone();
        let mut outs = Vec::new();
        while schema.num_sublinks() > 0 {
            let t = EliminateSublink {
                sublink: ridl_brm::SublinkId::from_raw(0),
            };
            let out = t.apply(&schema).unwrap();
            pop_cur = t.map_state(&schema, &out, &pop_cur);
            schema = out.schema.clone();
            outs.push((t, out));
        }
        assert!(
            is_model(&schema, &pop_cur),
            "mapped state is a model of the sublink-free schema"
        );
        // Walk back.
        let mut back = pop_cur.clone();
        for (t, out) in outs.iter().rev() {
            back = t.unmap_state(out, &back);
        }
        let ok = back.compacted() == pop.compacted();
        println!(
            "{:<8} {:>9} {:>10} {:>12} {:>10}",
            seed,
            s.schema.num_sublinks(),
            s.schema.num_fact_types(),
            pop.num_fact_instances(),
            if ok { "lossless" } else { "DIVERGED" }
        );
        assert!(ok);
    }
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("fig4_sublink_elimination");
    group.sample_size(20);
    for sublinks in [2usize, 8, 16] {
        let s = synth::generate(&GenParams {
            seed: 9,
            sublinks,
            ..GenParams::default()
        });
        group.bench_with_input(
            BenchmarkId::new("eliminate_all", sublinks),
            &s.schema,
            |b, schema| {
                b.iter(|| {
                    let mut cur = schema.clone();
                    while cur.num_sublinks() > 0 {
                        let t = EliminateSublink {
                            sublink: ridl_brm::SublinkId::from_raw(0),
                        };
                        cur = t.apply(&cur).unwrap().schema;
                    }
                    cur
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment **E-A**: RIDL-A throughput across schema sizes — the paper's
//! workflow validates "at each stage of the database engineering project"
//! (§3.2), so analysis must stay interactive at industrial size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ridl_analyzer::analyze;
use ridl_workloads::synth::{self, GenParams};

fn report() {
    println!("\n== E-A: analyzer findings across sizes ==");
    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>9} {:>9}",
        "nolots", "facts", "cons", "mappable", "warnings", "info"
    );
    for nolots in [10usize, 40, 85] {
        let s = synth::generate(&GenParams {
            seed: 11,
            nolots,
            sublinks: nolots / 5,
            mn_facts: nolots / 2,
            ..GenParams::default()
        });
        let r = analyze(&s.schema);
        println!(
            "{:<8} {:>8} {:>8} {:>10} {:>9} {:>9}",
            nolots,
            s.schema.num_fact_types(),
            s.schema.num_constraints(),
            r.is_mappable(),
            r.count(ridl_analyzer::Severity::Warning),
            r.count(ridl_analyzer::Severity::Info)
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("ridl_a");
    group.sample_size(10);
    for nolots in [10usize, 40, 85] {
        let s = synth::generate(&GenParams {
            seed: 11,
            nolots,
            sublinks: nolots / 5,
            mn_facts: nolots / 2,
            ..GenParams::default()
        });
        group.throughput(Throughput::Elements(s.schema.num_fact_types() as u64));
        group.bench_with_input(
            BenchmarkId::new("analyze", nolots),
            &s.schema,
            |b, schema| b.iter(|| analyze(schema)),
        );
    }
    group.finish();

    // The individual functions, at mid size.
    let s = synth::generate(&GenParams {
        seed: 11,
        nolots: 40,
        sublinks: 8,
        mn_facts: 20,
        ..GenParams::default()
    });
    let mut group = c.benchmark_group("ridl_a_functions");
    group.bench_function("correctness", |b| {
        b.iter(|| ridl_analyzer::correctness::check(&s.schema))
    });
    group.bench_function("completeness", |b| {
        b.iter(|| ridl_analyzer::completeness::check(&s.schema))
    });
    group.bench_function("setalg_consistency", |b| {
        b.iter(|| ridl_analyzer::setalg::check(&s.schema))
    });
    group.bench_function("reference_inference", |b| {
        b.iter(|| ridl_analyzer::reference::infer(&s.schema))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! The RIDL-Bench macro driver: one closed-loop run through the whole
//! pipeline — synthesize → analyze/map → populate → `bulk_load` into a
//! WAL-backed store → mixed mutation/query traffic → significant-example
//! stress → checkpoint → more traffic → simulated crash → recovery →
//! many-client server bench — with every phase timed and the result
//! packaged as a [`BenchArtifact`].
//!
//! `ridl bench` and the `macro_pipeline` criterion bench both call
//! [`run_macro`]; the smoke test runs it at tiny scale under
//! `cargo test`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use ridl_engine::{BatchOp, Database, FsyncPolicy, Query, StdIo};
use ridl_obs::Histogram;
use ridl_workloads::macrobench::{self, MacroParams, TrafficOp};
use ridl_workloads::{scenario, sigex};

use crate::artifact::{
    BenchArtifact, CheckpointSummary, ClassCost, PhaseStat, WalMetrics, WalStats,
};
use crate::harness::{self, MutationTarget};

/// How many probed mutation targets the traffic plan spreads over.
const TRAFFIC_TARGETS: usize = 8;

/// Configuration of one macro run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MacroConfig {
    /// Seed and target row count of the workload.
    pub params: MacroParams,
    /// Total traffic operations (split around the checkpoint).
    pub traffic_ops: usize,
    /// PR number stamped into the artifact.
    pub pr: u64,
    /// Durable store directory; `None` uses a scratch dir under the
    /// system temp dir, removed when the run finishes.
    pub store_dir: Option<PathBuf>,
    /// Closed-loop sessions in the many-client server phase.
    pub server_sessions: usize,
}

impl Default for MacroConfig {
    fn default() -> Self {
        Self {
            params: MacroParams::default(),
            traffic_ops: 2_000,
            pr: 7,
            store_dir: None,
            server_sessions: 1_000,
        }
    }
}

impl MacroConfig {
    /// A tiny configuration for smoke tests and CI: same pipeline, a few
    /// thousand rows, a couple hundred ops.
    pub fn smoke() -> Self {
        Self {
            params: MacroParams {
                seed: 1989,
                target_rows: 1_500,
            },
            traffic_ops: 120,
            server_sessions: 40,
            ..Self::default()
        }
    }

    /// Reads overrides from `RIDL_BENCH_SEED`, `RIDL_BENCH_ROWS`,
    /// `RIDL_BENCH_OPS`, `RIDL_BENCH_PR` and `RIDL_BENCH_SESSIONS` on
    /// top of the defaults (seed 1989, 100k rows, 2000 ops, pr 7, 1000
    /// server sessions).
    pub fn from_env() -> Self {
        fn get(var: &str) -> Option<u64> {
            std::env::var(var).ok().and_then(|v| v.parse().ok())
        }
        let mut cfg = Self::default();
        if let Some(v) = get("RIDL_BENCH_SEED") {
            cfg.params.seed = v;
        }
        if let Some(v) = get("RIDL_BENCH_ROWS") {
            cfg.params.target_rows = v as usize;
        }
        if let Some(v) = get("RIDL_BENCH_OPS") {
            cfg.traffic_ops = v as usize;
        }
        if let Some(v) = get("RIDL_BENCH_PR") {
            cfg.pr = v;
        }
        if let Some(v) = get("RIDL_BENCH_SESSIONS") {
            cfg.server_sessions = v as usize;
        }
        cfg
    }
}

/// What one traffic slice did: per-op latency distribution plus the WAL
/// units its committed statements appended.
struct TrafficOutcome {
    latencies: Histogram,
    committed_units: u64,
}

/// Executes one slice of the traffic plan against the engine, recording
/// per-op wall-clock latency.
fn run_traffic(
    db: &mut Database,
    targets: &[MutationTarget],
    queries: &[Query],
    plan: &[TrafficOp],
) -> Result<TrafficOutcome, String> {
    let mut latencies = Histogram::new();
    let mut committed_units = 0u64;
    for op in plan {
        let start = Instant::now();
        match *op {
            TrafficOp::DeleteReinsert(i) => {
                harness::commit_pair(db, &targets[i]);
                committed_units += 2;
            }
            TrafficOp::Batch(i) => {
                let t = &targets[i];
                let n = db
                    .apply_batch([
                        BatchOp::delete(t.table.clone(), t.row.clone()),
                        BatchOp::insert(t.table.clone(), t.row.clone()),
                    ])
                    .map_err(|e| format!("traffic batch failed: {e}"))?;
                if n != 2 {
                    return Err(format!("traffic batch changed {n} rows, expected 2"));
                }
                committed_units += 1;
            }
            TrafficOp::RejectInsert(i) => {
                let t = &targets[i];
                if db.insert(&t.table, t.reject_row.clone()).is_ok() {
                    return Err(format!("duplicate-PK insert into {} was accepted", t.table));
                }
            }
            TrafficOp::PointQuery(i) => {
                let rows = db
                    .select(&queries[i])
                    .map_err(|e| format!("point query failed: {e}"))?;
                if rows.len() != 1 {
                    return Err(format!(
                        "point query matched {} rows, expected 1",
                        rows.len()
                    ));
                }
            }
        }
        latencies.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    Ok(TrafficOutcome {
        latencies,
        committed_units,
    })
}

/// Exercises every verified significant example against the live engine:
/// pads go in as one batch (must be accepted), the tipping row must be
/// rejected with a violation, then the pads come back out. The engine's
/// incremental path must agree with the full validator the generator
/// used as its oracle.
fn run_sigex(db: &mut Database, examples: &[sigex::SignificantExample]) -> Result<(), String> {
    let schema = db.schema().clone();
    let name_of = |tid| schema.table(tid).name.clone();
    for ex in examples {
        if !ex.pads.is_empty() {
            let pads: Vec<BatchOp> = ex
                .pads
                .iter()
                .map(|(tid, row)| BatchOp::insert(name_of(*tid), row.clone()))
                .collect();
            db.apply_batch(pads)
                .map_err(|e| format!("sigex pads for {} rejected: {e}", ex.constraint))?;
        }
        let (tid, row) = &ex.tip;
        if db.insert(&name_of(*tid), row.clone()).is_ok() {
            return Err(format!(
                "sigex tip for {} ({}) was accepted by the engine",
                ex.constraint,
                ex.class.name()
            ));
        }
        if !ex.pads.is_empty() {
            let pads: Vec<BatchOp> = ex
                .pads
                .iter()
                .map(|(tid, row)| BatchOp::delete(name_of(*tid), row.clone()))
                .collect();
            db.apply_batch(pads)
                .map_err(|e| format!("sigex pad removal for {} failed: {e}", ex.constraint))?;
        }
    }
    Ok(())
}

fn quantile_phase(name: &str, seconds: f64, h: &Histogram) -> PhaseStat {
    PhaseStat::with_quantiles(name, seconds, h.count(), h.p50(), h.p90(), h.p99())
}

/// Runs the full macro pipeline once and returns the artifact.
///
/// Fails (with a description, never a panic) when the engine disagrees
/// with the workload's expectations — a rejected batch, an accepted
/// tipping row, a recovery replaying the wrong unit count — so the bench
/// doubles as an end-to-end correctness check.
pub fn run_macro(cfg: &MacroConfig) -> Result<BenchArtifact, String> {
    let p = cfg.params;
    let mut phases = Vec::new();

    // Phase 1 — synthesize the industrial-band BRM schema.
    let t = Instant::now();
    let synth = macrobench::synthesize(&p);
    phases.push(PhaseStat::block("generate", t.elapsed().as_secs_f64(), 1));

    // Phase 2 — RIDL-A analysis + RIDL-M mapping.
    let t = Instant::now();
    let out = macrobench::analyze_and_map(&synth);
    let tables = out.table_count() as u64;
    let constraints = out.rel.constraints.len() as u64;
    phases.push(PhaseStat::block("map", t.elapsed().as_secs_f64(), tables));

    // Phase 3 — calibrated population generation.
    let t = Instant::now();
    let state = macrobench::populate(&synth, &out, &p);
    let pop_rows = state.num_rows() as u64;
    phases.push(PhaseStat::block(
        "populate",
        t.elapsed().as_secs_f64(),
        pop_rows,
    ));

    // Phase 4 — bulk_load into a WAL-backed store (group commit, no
    // auto-checkpoint: the run takes its own).
    let (dir, scratch) = match &cfg.store_dir {
        Some(d) => (d.clone(), false),
        None => (harness::bench_dir("macro"), true),
    };
    let schema = out.rel.clone();
    let rows = scenario::rows_of(&schema, &state);
    // Counter baseline for the durable portion of the run: everything
    // from bulk_load through recovery lands in the wal_metrics diff.
    let wal_obs_before = ridl_obs::snapshot();
    let mut db = Database::open_with(
        Arc::new(StdIo),
        &dir,
        schema.clone(),
        harness::durability(FsyncPolicy::GroupCommit { window_micros: 500 }),
    )
    .map_err(|e| format!("open durable store: {e}"))?;
    let t = Instant::now();
    let rows_loaded = db
        .bulk_load(rows)
        .map_err(|e| format!("bulk_load rejected the calibrated population: {e}"))?
        as u64;
    phases.push(PhaseStat::block(
        "bulk_load",
        t.elapsed().as_secs_f64(),
        rows_loaded,
    ));

    // Traffic setup: probe mutation targets, build their point queries,
    // and split the deterministic plan around the checkpoint.
    let targets = harness::pick_mutation_targets(&mut db, TRAFFIC_TARGETS);
    if targets.is_empty() {
        return Err("no probe-able mutation target in the mapped schema".to_owned());
    }
    let queries: Vec<Query> = targets
        .iter()
        .map(|t| {
            let mut q = Query::from(t.table.as_str());
            q.filter = t.preds.clone();
            q
        })
        .collect();
    let plan = macrobench::plan_traffic(p.seed, cfg.traffic_ops, targets.len());
    let (plan_pre, plan_post) = plan.split_at(plan.len() / 2);
    // The post half is split again around the incremental checkpoint.
    let (plan_churn, plan_tail) = plan_post.split_at(plan_post.len() / 2);

    // Detail on: per-constraint-class check counts and nanoseconds for
    // the interactive phases (traffic, sigex, checkpoint).
    let detail_was = ridl_obs::detail_enabled();
    ridl_obs::set_detail(true);
    let obs_before = ridl_obs::snapshot();

    // Phase 5 — pre-checkpoint mixed traffic.
    let t = Instant::now();
    let pre = run_traffic(&mut db, &targets, &queries, plan_pre)?;
    phases.push(quantile_phase(
        "traffic",
        t.elapsed().as_secs_f64(),
        &pre.latencies,
    ));

    // Phase 6 — significant examples against the live engine.
    let t = Instant::now();
    let examples = sigex::significant_examples(&schema, db.state());
    run_sigex(&mut db, &examples)?;
    phases.push(PhaseStat::block(
        "sigex",
        t.elapsed().as_secs_f64(),
        examples.len() as u64,
    ));
    let sigex_classes: Vec<&'static str> = examples.iter().map(|ex| ex.class.name()).collect();

    // Phase 7 — full checkpoint: a complete v2 base snapshot, WAL
    // truncated, extent geometry frozen for the delta below.
    let t = Instant::now();
    db.checkpoint_full()
        .map_err(|e| format!("checkpoint: {e}"))?;
    let full_seconds = t.elapsed().as_secs_f64();
    let full_stats = db
        .last_checkpoint_stats()
        .ok_or("checkpoint_full recorded no stats")?;
    phases.push(PhaseStat::block("checkpoint", full_seconds, 1));
    let churn_before = db.state().total_mutations();

    // Phase 8 — churn traffic between the two checkpoints.
    let t = Instant::now();
    let churn = run_traffic(&mut db, &targets, &queries, plan_churn)?;
    phases.push(quantile_phase(
        "traffic_post_checkpoint",
        t.elapsed().as_secs_f64(),
        &churn.latencies,
    ));

    // Phase 9 — incremental checkpoint: only the extents the churn
    // dirtied are rewritten. The bench asserts the engine actually chose
    // the delta path and (at real scale) that the delta stays under 20%
    // of the full snapshot — the paper-scale acceptance bound.
    let churn_rows = db.state().total_mutations() - churn_before;
    let t = Instant::now();
    db.checkpoint()
        .map_err(|e| format!("delta checkpoint: {e}"))?;
    let delta_seconds = t.elapsed().as_secs_f64();
    let delta_stats = db
        .last_checkpoint_stats()
        .ok_or("delta checkpoint recorded no stats")?;
    phases.push(PhaseStat::block("checkpoint_delta", delta_seconds, 1));
    if delta_stats.kind != ridl_engine::CheckpointKind::Delta {
        return Err(format!(
            "post-churn checkpoint wrote a full snapshot ({} of {} extents) instead of a delta",
            delta_stats.extents_written, delta_stats.extents_total
        ));
    }
    if p.target_rows >= 20_000 && delta_stats.bytes * 5 >= full_stats.bytes {
        return Err(format!(
            "delta checkpoint wrote {} bytes, not under 20% of the {}-byte full snapshot",
            delta_stats.bytes, full_stats.bytes
        ));
    }

    // Phase 10 — tail traffic: everything it commits lives only in the
    // WAL, so recovery below must replay exactly these units.
    let t = Instant::now();
    let post = run_traffic(&mut db, &targets, &queries, plan_tail)?;
    phases.push(quantile_phase(
        "traffic_post_delta",
        t.elapsed().as_secs_f64(),
        &post.latencies,
    ));

    let per_class: Vec<ClassCost> = {
        let diff = ridl_obs::snapshot().since(&obs_before);
        ridl_obs::ConstraintClass::ALL
            .iter()
            .map(|&class| (class, diff.kind(class)))
            .filter(|(_, k)| k.checks > 0)
            .map(|(class, k)| ClassCost {
                class: class.name(),
                checks: k.checks,
                violations: k.violations,
                nanos: k.nanos,
            })
            .collect()
    };
    ridl_obs::set_detail(detail_was);

    // Phase 11 — the many-client server bench: closed-loop sessions over
    // the wire protocol against an in-process server on its own durable
    // store. It runs before the simulated crash so the recovery events
    // below stay the newest entries in the bounded journal ring (the
    // flight recorder would otherwise evict them under thousands of
    // session.* events), and before the WAL accounting at the end so its
    // concurrent group commits land in `wal_metrics` (that's where the
    // commits-per-fsync evidence comes from).
    let t = Instant::now();
    let server = crate::server_bench::run_server_bench(cfg.server_sessions)?;
    phases.push(PhaseStat::block(
        "serve",
        t.elapsed().as_secs_f64(),
        server.sessions,
    ));
    if server.anomalies != 0 {
        return Err(format!(
            "server bench observed {} anomalies (see bench.server_anomaly journal events)",
            server.anomalies
        ));
    }

    // Phase 12 — simulated crash + recovery. flush_wal stands in for the
    // group-commit window; dropping the handle without a checkpoint
    // leaves the WAL as the only record of the tail traffic, on top of
    // the base + delta chain.
    db.flush_wal().map_err(|e| format!("flush_wal: {e}"))?;
    let wal_bytes = db.wal_bytes().unwrap_or(0);
    let state_at_crash = db.state().clone();
    drop(db);
    let db = Database::open_with(
        Arc::new(StdIo),
        &dir,
        schema.clone(),
        harness::durability(FsyncPolicy::GroupCommit { window_micros: 500 }),
    )
    .map_err(|e| format!("recovery reopen: {e}"))?;
    let rep = db
        .recovery_report()
        .ok_or("durable reopen produced no recovery report")?
        .clone();
    if rep.units_replayed as u64 != post.committed_units {
        return Err(format!(
            "recovery replayed {} units, expected the {} committed after the delta checkpoint",
            rep.units_replayed, post.committed_units
        ));
    }
    if *db.state() != state_at_crash {
        return Err("recovered state differs from the state at the simulated crash".to_owned());
    }
    let recovery_seconds = rep.elapsed_ns as f64 / 1e9;
    phases.push(PhaseStat::block(
        "recover",
        recovery_seconds,
        rep.ops_replayed as u64,
    ));
    let replay_ops_per_sec = if recovery_seconds > 0.0 {
        rep.ops_replayed as f64 / recovery_seconds
    } else {
        0.0
    };

    // The recovered state must still satisfy every generated constraint.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let violations = ridl_relational::validate_with_workers(db.schema(), db.state(), workers);
    if !violations.is_empty() {
        return Err(format!(
            "recovered state violates {} constraints (first: {})",
            violations.len(),
            violations[0]
        ));
    }
    drop(db);
    if scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }

    // WAL I/O accounting over the whole durable portion of the run:
    // counters as a diff against the pre-open baseline, group-commit and
    // fsync distributions from the global histogram registry (this
    // process only runs the pipeline, so the histograms are the run's).
    let wal_diff = ridl_obs::snapshot().since(&wal_obs_before);
    let group = ridl_obs::hist::summary_named("wal.group_batch").unwrap_or_default();
    let fsync = ridl_obs::hist::summary_named("wal.fsync").unwrap_or_default();
    let wal_metrics = WalMetrics {
        appends: wal_diff.counter("wal.appends"),
        append_bytes: wal_diff.counter("wal.append_bytes"),
        fsyncs: wal_diff.counter("wal.fsyncs"),
        checkpoints: wal_diff.counter("wal.checkpoints"),
        group_batch_p50: group.p50,
        group_batch_max: group.max,
        fsync_p99_ns: fsync.p99,
    };

    Ok(BenchArtifact {
        pr: cfg.pr,
        seed: p.seed,
        target_rows: p.target_rows as u64,
        rows_loaded,
        tables,
        constraints,
        phases,
        per_class,
        wal: WalStats {
            replay_units: rep.units_replayed as u64,
            replay_ops: rep.ops_replayed as u64,
            replay_ops_per_sec,
            bytes: wal_bytes,
        },
        recovery_seconds,
        sigex_examples: examples.len() as u64,
        sigex_classes,
        checkpoint: Some(CheckpointSummary {
            full_bytes: full_stats.bytes,
            full_seconds,
            delta_bytes: delta_stats.bytes,
            delta_seconds,
            dirty_extents: delta_stats.extents_written as u64,
            total_extents: delta_stats.extents_total as u64,
            churn_rows,
        }),
        wal_metrics: Some(wal_metrics),
        server: Some(server),
    })
}

//! The `BENCH_<pr>.json` trajectory artifact: a schema-versioned summary
//! of one macro-benchmark run, written per PR so successive sessions (and
//! re-anchors) can read the performance trajectory of the repo without
//! re-running old builds.
//!
//! The writer emits the JSON by hand (the workspace carries no serde);
//! [`validate_artifact`] is the matching checker — a small strict JSON
//! parser plus required-key and finite-number rules — run by CI and by
//! `ridl benchcheck`.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

/// Artifact schema version; bump when the layout changes shape.
///
/// v2 adds the `checkpoint` object (full-vs-incremental snapshot cost).
/// v3 adds the `wal_metrics` object (append/fsync/group-commit/recovery
/// observability counters) and emits `null` — not a misleading literal
/// `0` — for the percentile fields of block-timed phases that have no
/// per-unit latency distribution.
/// v4 adds the `server` object: the many-client closed-loop server bench
/// (sessions served, admission/backpressure rejects, client-observed
/// read/write latency, reader latency under a write burst, and the
/// cross-session commit-pipeline batch distribution). The validator still
/// accepts v1–v3 artifacts committed by earlier PRs.
pub const SCHEMA_VERSION: u64 = 4;

/// One timed phase of the macro run.
#[derive(Clone, PartialEq, Debug)]
pub struct PhaseStat {
    /// Phase name (`generate`, `map`, `populate`, `bulk_load`,
    /// `traffic`, `sigex`, `checkpoint`, `traffic_post_checkpoint`,
    /// `checkpoint_delta`, `traffic_post_delta`, `recover`).
    pub name: String,
    /// Wall-clock seconds for the whole phase.
    pub seconds: f64,
    /// Work units processed (rows, ops, tables… — see the phase name).
    pub units: u64,
    /// Units per second (zero when `seconds` is zero).
    pub per_second: f64,
    /// Median per-unit latency in nanoseconds; `None` (emitted as JSON
    /// `null`) when the phase was timed as a block rather than per unit —
    /// a block-timed phase has no latency distribution, and a literal `0`
    /// would read as "instant".
    pub p50_ns: Option<u64>,
    /// 90th-percentile per-unit latency (`None` for block-timed phases).
    pub p90_ns: Option<u64>,
    /// 99th-percentile per-unit latency (`None` for block-timed phases).
    pub p99_ns: Option<u64>,
}

impl PhaseStat {
    /// A block-timed phase (no per-unit latency distribution).
    pub fn block(name: &str, seconds: f64, units: u64) -> Self {
        Self {
            p50_ns: None,
            p90_ns: None,
            p99_ns: None,
            ..Self::with_quantiles(name, seconds, units, 0, 0, 0)
        }
    }

    /// A phase with per-unit latency quantiles.
    pub fn with_quantiles(
        name: &str,
        seconds: f64,
        units: u64,
        p50_ns: u64,
        p90_ns: u64,
        p99_ns: u64,
    ) -> Self {
        let per_second = if seconds > 0.0 {
            units as f64 / seconds
        } else {
            0.0
        };
        Self {
            name: name.to_owned(),
            seconds,
            units,
            per_second,
            p50_ns: Some(p50_ns),
            p90_ns: Some(p90_ns),
            p99_ns: Some(p99_ns),
        }
    }
}

/// Validation cost attributed to one constraint class over the traffic
/// and significant-example phases (from the obs per-kind counters; the
/// nanoseconds require the detail gate, which the driver turns on).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassCost {
    /// Constraint-class name (`key`, `foreign_key`, …).
    pub class: &'static str,
    /// Checks run.
    pub checks: u64,
    /// Violations reported (rejected statements produce these).
    pub violations: u64,
    /// Nanoseconds spent checking.
    pub nanos: u64,
}

/// WAL replay statistics from the crash-recovery phase.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WalStats {
    /// Committed units replayed on reopen.
    pub replay_units: u64,
    /// Row operations replayed.
    pub replay_ops: u64,
    /// Replay throughput in row ops per second.
    pub replay_ops_per_sec: f64,
    /// WAL bytes on disk at the simulated crash.
    pub bytes: u64,
}

/// WAL/checkpoint observability counters from the traffic phases (schema
/// v3): what the durability instrumentation recorded while the macro
/// run's commits flowed through the engine. Latency fields come from the
/// detail-gated `wal.fsync` histogram and are zero when the driver ran
/// without the detail gate.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WalMetrics {
    /// WAL units appended (`wal.appends` counter).
    pub appends: u64,
    /// Bytes appended (`wal.append_bytes` counter).
    pub append_bytes: u64,
    /// fsync calls from the commit path (`wal.fsyncs` counter).
    pub fsyncs: u64,
    /// Checkpoints written (`wal.checkpoints` counter).
    pub checkpoints: u64,
    /// Median group-commit batch size (commits per fsync, from the
    /// `wal.group_batch` histogram).
    pub group_batch_p50: u64,
    /// Largest group-commit batch observed.
    pub group_batch_max: u64,
    /// 99th-percentile fsync latency in nanoseconds (detail gate only).
    pub fsync_p99_ns: u64,
}

/// The many-client closed-loop server benchmark (schema v4): N sessions
/// over the wire protocol against one `ridl-server` instance, mixed
/// read/write traffic, a deliberate admission-control overload wave, and
/// a write burst with concurrent latency-probing readers.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ServerSummary {
    /// Total client sessions served (connect → hello → … → disconnect).
    pub sessions: u64,
    /// Peak concurrently admitted sessions.
    pub peak_sessions: u64,
    /// Connections rejected by admission control during the overload
    /// wave (`session.reject` / `server.admission_rejects`).
    pub admission_rejects: u64,
    /// Requests rejected by backpressure (in-flight or queue limits).
    pub busy_rejects: u64,
    /// Read statements served from published snapshots.
    pub reads: u64,
    /// Write statements committed through the pipeline.
    pub writes: u64,
    /// Correctness violations observed by the closed loop: a failed
    /// expected-ok statement, a non-monotonic snapshot version, a
    /// connection neither admitted nor cleanly rejected, or a final row
    /// count that disagrees with the acknowledged writes. Must be zero.
    pub anomalies: u64,
    /// Wall-clock seconds for the whole server bench.
    pub seconds: f64,
    /// Reads + writes per wall-clock second.
    pub ops_per_sec: f64,
    /// Client-observed read latency, median.
    pub read_p50_ns: u64,
    /// Client-observed read latency, 99th percentile.
    pub read_p99_ns: u64,
    /// Client-observed write (commit-acknowledged) latency, median.
    pub write_p50_ns: u64,
    /// Client-observed write latency, 99th percentile.
    pub write_p99_ns: u64,
    /// Reader-observed p99 latency *during the write burst* — the
    /// snapshot-read isolation evidence (readers never block on the
    /// writer).
    pub burst_read_p99_ns: u64,
    /// Median commit-pipeline batch size (concurrent writers coalesced
    /// per WAL fsync; >1 under concurrent write load).
    pub commit_batch_p50: u64,
    /// Largest commit-pipeline batch observed.
    pub commit_batch_max: u64,
}

/// Full-vs-incremental checkpoint cost from the macro run (schema v2).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CheckpointSummary {
    /// Bytes of the full (base) v2 snapshot.
    pub full_bytes: u64,
    /// Wall-clock seconds to write the full snapshot.
    pub full_seconds: f64,
    /// Bytes of the incremental (delta) snapshot taken after churn.
    pub delta_bytes: u64,
    /// Wall-clock seconds to write the delta.
    pub delta_seconds: f64,
    /// Extents the delta rewrote.
    pub dirty_extents: u64,
    /// Extents in the full geometry.
    pub total_extents: u64,
    /// Row operations committed between the two checkpoints.
    pub churn_rows: u64,
}

/// The complete per-PR benchmark artifact.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchArtifact {
    /// PR number this artifact belongs to (`BENCH_<pr>.json`).
    pub pr: u64,
    /// Seed of the run.
    pub seed: u64,
    /// Requested approximate row count.
    pub target_rows: u64,
    /// Rows actually loaded by `bulk_load`.
    pub rows_loaded: u64,
    /// Mapped tables in the schema.
    pub tables: u64,
    /// Generated constraints in the schema.
    pub constraints: u64,
    /// Timed phases, in execution order.
    pub phases: Vec<PhaseStat>,
    /// Per-constraint-class validation cost.
    pub per_class: Vec<ClassCost>,
    /// WAL replay statistics.
    pub wal: WalStats,
    /// Crash-recovery wall-clock seconds (from the engine's always-on
    /// recovery timer).
    pub recovery_seconds: f64,
    /// Verified significant examples exercised against the engine.
    pub sigex_examples: u64,
    /// Constraint classes those examples covered.
    pub sigex_classes: Vec<&'static str>,
    /// Checkpoint cost summary (required at [`SCHEMA_VERSION`] 2).
    pub checkpoint: Option<CheckpointSummary>,
    /// WAL observability counters (required at [`SCHEMA_VERSION`] 3).
    pub wal_metrics: Option<WalMetrics>,
    /// Many-client server bench (required at [`SCHEMA_VERSION`] 4).
    pub server: Option<ServerSummary>,
}

/// Formats a float: finite values in shortest-roundtrip form, non-finite
/// values as `0` (the validator rejects non-finite spellings, so the
/// writer must never emit them; phases guard their own divisions).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl BenchArtifact {
    /// Renders the artifact as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        s.push_str(&format!("  \"pr\": {},\n", self.pr));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"target_rows\": {},\n", self.target_rows));
        s.push_str(&format!("  \"rows_loaded\": {},\n", self.rows_loaded));
        s.push_str(&format!("  \"tables\": {},\n", self.tables));
        s.push_str(&format!("  \"constraints\": {},\n", self.constraints));
        s.push_str("  \"phases\": [\n");
        let opt = |v: Option<u64>| match v {
            Some(n) => n.to_string(),
            None => "null".to_owned(),
        };
        for (i, p) in self.phases.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": {}, \"seconds\": {}, \"units\": {}, \"per_second\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}{}\n",
                json_str(&p.name),
                num(p.seconds),
                p.units,
                num(p.per_second),
                opt(p.p50_ns),
                opt(p.p90_ns),
                opt(p.p99_ns),
                if i + 1 < self.phases.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"per_class\": [\n");
        for (i, c) in self.per_class.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"class\": {}, \"checks\": {}, \"violations\": {}, \"nanos\": {}}}{}\n",
                json_str(c.class),
                c.checks,
                c.violations,
                c.nanos,
                if i + 1 < self.per_class.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"wal\": {{\"replay_units\": {}, \"replay_ops\": {}, \"replay_ops_per_sec\": {}, \
             \"bytes\": {}}},\n",
            self.wal.replay_units,
            self.wal.replay_ops,
            num(self.wal.replay_ops_per_sec),
            self.wal.bytes,
        ));
        s.push_str(&format!(
            "  \"recovery\": {{\"seconds\": {}}},\n",
            num(self.recovery_seconds)
        ));
        if let Some(c) = &self.checkpoint {
            s.push_str(&format!(
                "  \"checkpoint\": {{\"full_bytes\": {}, \"full_seconds\": {}, \
                 \"delta_bytes\": {}, \"delta_seconds\": {}, \"dirty_extents\": {}, \
                 \"total_extents\": {}, \"churn_rows\": {}}},\n",
                c.full_bytes,
                num(c.full_seconds),
                c.delta_bytes,
                num(c.delta_seconds),
                c.dirty_extents,
                c.total_extents,
                c.churn_rows,
            ));
        }
        if let Some(w) = &self.wal_metrics {
            s.push_str(&format!(
                "  \"wal_metrics\": {{\"appends\": {}, \"append_bytes\": {}, \"fsyncs\": {}, \
                 \"checkpoints\": {}, \"group_batch_p50\": {}, \"group_batch_max\": {}, \
                 \"fsync_p99_ns\": {}}},\n",
                w.appends,
                w.append_bytes,
                w.fsyncs,
                w.checkpoints,
                w.group_batch_p50,
                w.group_batch_max,
                w.fsync_p99_ns,
            ));
        }
        if let Some(v) = &self.server {
            s.push_str(&format!(
                "  \"server\": {{\"sessions\": {}, \"peak_sessions\": {}, \
                 \"admission_rejects\": {}, \"busy_rejects\": {}, \"reads\": {}, \
                 \"writes\": {}, \"anomalies\": {}, \"server_seconds\": {}, \
                 \"server_ops_per_sec\": {}, \"read_p50_ns\": {}, \"read_p99_ns\": {}, \
                 \"write_p50_ns\": {}, \"write_p99_ns\": {}, \"burst_read_p99_ns\": {}, \
                 \"commit_batch_p50\": {}, \"commit_batch_max\": {}}},\n",
                v.sessions,
                v.peak_sessions,
                v.admission_rejects,
                v.busy_rejects,
                v.reads,
                v.writes,
                v.anomalies,
                num(v.seconds),
                num(v.ops_per_sec),
                v.read_p50_ns,
                v.read_p99_ns,
                v.write_p50_ns,
                v.write_p99_ns,
                v.burst_read_p99_ns,
                v.commit_batch_p50,
                v.commit_batch_max,
            ));
        }
        s.push_str(&format!(
            "  \"sigex\": {{\"examples\": {}, \"classes\": [{}]}}\n",
            self.sigex_examples,
            self.sigex_classes
                .iter()
                .map(|c| json_str(c))
                .collect::<Vec<_>>()
                .join(", "),
        ));
        s.push_str("}\n");
        s
    }

    /// Writes the artifact to `path` (the JSON is validated first, so a
    /// buggy writer fails loudly instead of committing a bad artifact).
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let text = self.to_json();
        validate_artifact(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, text)
    }
}

// ---- the validator: a strict little JSON scanner ----

/// Keys that must appear somewhere in a valid artifact.
const REQUIRED_KEYS: [&str; 25] = [
    "schema_version",
    "pr",
    "seed",
    "target_rows",
    "rows_loaded",
    "tables",
    "constraints",
    "phases",
    "name",
    "seconds",
    "units",
    "per_second",
    "p50_ns",
    "p90_ns",
    "p99_ns",
    "per_class",
    "class",
    "checks",
    "violations",
    "nanos",
    "wal",
    "replay_units",
    "replay_ops",
    "replay_ops_per_sec",
    "bytes",
];

/// Keys the `checkpoint` object must carry at schema v2 and later.
const CHECKPOINT_KEYS: [&str; 7] = [
    "full_bytes",
    "full_seconds",
    "delta_bytes",
    "delta_seconds",
    "dirty_extents",
    "total_extents",
    "churn_rows",
];

/// Keys the `wal_metrics` object must carry at schema v3 and later.
const WAL_METRICS_KEYS: [&str; 8] = [
    "wal_metrics",
    "appends",
    "append_bytes",
    "fsyncs",
    "checkpoints",
    "group_batch_p50",
    "group_batch_max",
    "fsync_p99_ns",
];

/// Keys the `server` object must carry at schema v4 and later. The
/// seconds/ops keys are prefixed so they don't collide with the phase
/// keys already in [`REQUIRED_KEYS`] (the validator checks key presence
/// document-wide, so a bare `"seconds"` here would always pass).
const SERVER_KEYS: [&str; 17] = [
    "server",
    "sessions",
    "peak_sessions",
    "admission_rejects",
    "busy_rejects",
    "reads",
    "writes",
    "anomalies",
    "server_seconds",
    "server_ops_per_sec",
    "read_p50_ns",
    "read_p99_ns",
    "write_p50_ns",
    "write_p99_ns",
    "burst_read_p99_ns",
    "commit_batch_p50",
    "commit_batch_max",
];

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    keys: BTreeSet<String>,
    numbers: Vec<f64>,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
            keys: BTreeSet::new(),
            numbers: Vec::new(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected byte '{}' at {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.keys.insert(key);
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut out = String::new();
        while let Some(b) = self.peek() {
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b' | b'f') => out.push(' '),
                        Some(b'u') => {
                            // \uXXXX — accept and decode the BMP scalar.
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let n = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().ok_or("unexpected end of string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        Err(format!("unterminated string starting at byte {start}"))
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let v: f64 = s
            .parse()
            .map_err(|_| format!("bad number '{s}' at byte {start}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number '{s}' at byte {start}"));
        }
        self.numbers.push(v);
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

/// Validates the text of a `BENCH_*.json` artifact: it must be a single
/// well-formed JSON document, every number must be finite, every
/// [`REQUIRED_KEYS`] entry must appear, `schema_version` must match, and
/// the `phases` and `per_class` arrays must be non-empty (their inner
/// keys are in the required set, so an empty array fails the key check).
pub fn validate_artifact(text: &str) -> Result<(), String> {
    let mut sc = Scanner::new(text);
    sc.skip_ws();
    if sc.peek() != Some(b'{') {
        return Err("artifact must be a JSON object".to_owned());
    }
    sc.object()?;
    sc.skip_ws();
    if sc.pos != sc.bytes.len() {
        return Err(format!("trailing garbage at byte {}", sc.pos));
    }
    for key in REQUIRED_KEYS {
        if !sc.keys.contains(key) {
            return Err(format!("missing required key \"{key}\""));
        }
    }
    let version = extract_number(text, "schema_version")
        .ok_or("artifact carries no schema_version number")?;
    match version as u64 {
        1 => {}
        v @ 2..=4 => {
            for key in CHECKPOINT_KEYS {
                if !sc.keys.contains(key) {
                    return Err(format!(
                        "schema v{v} artifact missing checkpoint key \"{key}\""
                    ));
                }
            }
            if v >= 3 {
                for key in WAL_METRICS_KEYS {
                    if !sc.keys.contains(key) {
                        return Err(format!(
                            "schema v{v} artifact missing wal_metrics key \"{key}\""
                        ));
                    }
                }
            }
            if v >= 4 {
                for key in SERVER_KEYS {
                    if !sc.keys.contains(key) {
                        return Err(format!("schema v{v} artifact missing server key \"{key}\""));
                    }
                }
            }
        }
        v => return Err(format!("unsupported artifact schema_version {v}")),
    }
    Ok(())
}

/// Pulls the numeric value of the *first* occurrence of `"key": <number>`
/// out of an artifact. Only meaningful for keys that appear once (the
/// top-level scalars and the `checkpoint` object fields).
pub fn extract_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !matches!(c, '-' | '+' | '.' | 'e' | 'E' | '0'..='9'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Asserts that incremental checkpoints scale with *churn*, not with
/// *state size*, across two artifacts from the same traffic plan at
/// different row counts:
///
/// 1. both runs wrote non-empty full and delta snapshots;
/// 2. the large run holds at least 3x the rows of the small one (the
///    ratio test below needs real separation between the scales);
/// 3. when a run is at real scale (`target_rows >= 20_000`) its delta is
///    under 20% of its full snapshot — the acceptance bound;
/// 4. in both runs the delta rewrote at most `churn_rows` extents: the
///    unit of rewrite is the dirtied extent, and churn touches at most
///    one extent per committed row op, so a dirty count above it means
///    the tracking rewrote state it didn't have to;
/// 5. the delta/full byte ratio must *shrink* as state grows (to at most
///    3/4 of the small run's ratio): the churn is the same at both
///    scales, so a delta tracking state keeps a constant ratio while a
///    churn-bound delta's share of the snapshot falls away.
///
/// Absolute delta bytes are deliberately not compared: with only a
/// handful of hot rows, extent quantization (a dirtied extent rewrites
/// all ~128 of its rows) lets the byte count creep with scale even
/// though the rewrite is churn-bound; the ratio and the dirty-extent
/// count are the quantization-immune observables.
pub fn check_checkpoint_scaling(small: &str, large: &str) -> Result<(), String> {
    validate_artifact(small).map_err(|e| format!("small artifact: {e}"))?;
    validate_artifact(large).map_err(|e| format!("large artifact: {e}"))?;
    let get = |text: &str, key: &str, which: &str| {
        extract_number(text, key).ok_or(format!("{which} artifact has no \"{key}\" number"))
    };
    let mut ratios = [0.0f64; 2];
    for (i, (text, which)) in [(small, "small"), (large, "large")].into_iter().enumerate() {
        let full = get(text, "full_bytes", which)?;
        let delta = get(text, "delta_bytes", which)?;
        if full <= 0.0 || delta <= 0.0 {
            return Err(format!(
                "{which} run wrote an empty snapshot (full {full} bytes, delta {delta} bytes)"
            ));
        }
        if get(text, "target_rows", which)? >= 20_000.0 && delta >= 0.20 * full {
            return Err(format!(
                "{which} delta wrote {delta} bytes, not under 20% of the {full}-byte full snapshot"
            ));
        }
        let dirty = get(text, "dirty_extents", which)?;
        let churn = get(text, "churn_rows", which)?;
        if dirty > churn {
            return Err(format!(
                "{which} delta rewrote {dirty} extents for only {churn} churned row ops — \
                 incremental checkpoints are tracking state size, not churn"
            ));
        }
        ratios[i] = delta / full;
    }
    let small_rows = get(small, "rows_loaded", "small")?;
    let large_rows = get(large, "rows_loaded", "large")?;
    if large_rows < 3.0 * small_rows {
        return Err(format!(
            "large run loaded {large_rows} rows, need at least 3x the small run's {small_rows}"
        ));
    }
    let [small_ratio, large_ratio] = ratios;
    if large_ratio > 0.75 * small_ratio {
        return Err(format!(
            "delta/full ratio went {small_ratio:.4} -> {large_ratio:.4} as state grew \
             {:.2}x — incremental checkpoints are tracking state size, not churn",
            large_rows / small_rows
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchArtifact {
        BenchArtifact {
            pr: 7,
            seed: 1989,
            target_rows: 1000,
            rows_loaded: 1042,
            tables: 130,
            constraints: 410,
            phases: vec![
                PhaseStat::block("generate", 0.5, 1),
                PhaseStat::with_quantiles("traffic", 1.25, 200, 10_000, 20_000, 40_000),
            ],
            per_class: vec![ClassCost {
                class: "key",
                checks: 123,
                violations: 4,
                nanos: 55_000,
            }],
            wal: WalStats {
                replay_units: 100,
                replay_ops: 200,
                replay_ops_per_sec: 12_345.6,
                bytes: 4096,
            },
            recovery_seconds: 0.012,
            sigex_examples: 3,
            sigex_classes: vec!["key", "foreign_key"],
            checkpoint: Some(CheckpointSummary {
                full_bytes: 500_000,
                full_seconds: 0.05,
                delta_bytes: 40_000,
                delta_seconds: 0.004,
                dirty_extents: 12,
                total_extents: 140,
                churn_rows: 220,
            }),
            wal_metrics: Some(WalMetrics {
                appends: 200,
                append_bytes: 51_200,
                fsyncs: 200,
                checkpoints: 2,
                group_batch_p50: 1,
                group_batch_max: 4,
                fsync_p99_ns: 0,
            }),
            server: Some(ServerSummary {
                sessions: 1000,
                peak_sessions: 48,
                admission_rejects: 17,
                busy_rejects: 0,
                reads: 6000,
                writes: 3000,
                anomalies: 0,
                seconds: 2.5,
                ops_per_sec: 3600.0,
                read_p50_ns: 80_000,
                read_p99_ns: 400_000,
                write_p50_ns: 250_000,
                write_p99_ns: 900_000,
                burst_read_p99_ns: 350_000,
                commit_batch_p50: 3,
                commit_batch_max: 14,
            }),
        }
    }

    #[test]
    fn artifact_roundtrips_through_validator() {
        let text = sample().to_json();
        validate_artifact(&text).expect("writer output validates");
    }

    #[test]
    fn validator_rejects_missing_keys_and_bad_json() {
        let text = sample().to_json();
        let broken = text.replace("\"recovery\"", "\"recouvery\"");
        // "recovery" is not in REQUIRED_KEYS but malformed JSON is caught.
        validate_artifact(&broken).expect("key rename still parses");
        let no_wal = text.replace("\"wal\"", "\"lawl\"");
        assert!(validate_artifact(&no_wal).is_err(), "missing wal key");
        assert!(validate_artifact("{").is_err(), "truncated");
        assert!(validate_artifact(&format!("{text} x")).is_err(), "trailing");
        let inf = text.replace("12345.6", "1e999");
        assert!(validate_artifact(&inf).is_err(), "non-finite number");
    }

    #[test]
    fn empty_phase_array_fails_required_keys() {
        let mut a = sample();
        a.phases.clear();
        assert!(validate_artifact(&a.to_json()).is_err());
    }

    #[test]
    fn older_schema_versions_still_validate() {
        let mut a = sample();
        a.checkpoint = None;
        let no_ckpt = a.to_json();
        assert!(
            validate_artifact(&no_ckpt).is_err(),
            "a v4 artifact must carry the checkpoint object"
        );
        let v1 = no_ckpt.replace("\"schema_version\": 4", "\"schema_version\": 1");
        validate_artifact(&v1).expect("legacy v1 layout validates");
        let v9 = no_ckpt.replace("\"schema_version\": 4", "\"schema_version\": 9");
        assert!(validate_artifact(&v9).is_err(), "unknown version rejected");

        // v2: checkpoint object present, no wal_metrics, numeric zero
        // percentiles — the exact shape of committed BENCH_7/BENCH_8.
        let mut b = sample();
        b.wal_metrics = None;
        b.server = None;
        let no_metrics = b.to_json();
        assert!(
            validate_artifact(&no_metrics).is_err(),
            "a v4 artifact must carry the wal_metrics object"
        );
        let v2 = no_metrics
            .replace("\"schema_version\": 4", "\"schema_version\": 2")
            .replace("\"p50_ns\": null", "\"p50_ns\": 0")
            .replace("\"p90_ns\": null", "\"p90_ns\": 0")
            .replace("\"p99_ns\": null", "\"p99_ns\": 0");
        validate_artifact(&v2).expect("legacy v2 layout validates");

        // v3: wal_metrics present, no server object — the exact shape of
        // the committed BENCH_9.
        let mut c = sample();
        c.server = None;
        let no_server = c.to_json();
        assert!(
            validate_artifact(&no_server).is_err(),
            "a v4 artifact must carry the server object"
        );
        let v3 = no_server.replace("\"schema_version\": 4", "\"schema_version\": 3");
        validate_artifact(&v3).expect("legacy v3 layout validates");
    }

    #[test]
    fn block_phases_emit_null_percentiles() {
        let text = sample().to_json();
        // The block-timed `generate` phase has no latency distribution.
        assert!(
            text.contains("\"name\": \"generate\", \"seconds\": 0.5, \"units\": 1, \"per_second\": 2, \"p50_ns\": null, \"p90_ns\": null, \"p99_ns\": null"),
            "{text}"
        );
        // The per-unit `traffic` phase keeps its numbers.
        assert!(text.contains("\"p50_ns\": 10000"), "{text}");
        validate_artifact(&text).expect("null percentiles validate at v4");
    }

    #[test]
    fn extract_number_reads_scalars() {
        let text = sample().to_json();
        assert_eq!(extract_number(&text, "full_bytes"), Some(500_000.0));
        assert_eq!(extract_number(&text, "rows_loaded"), Some(1042.0));
        assert_eq!(extract_number(&text, "no_such_key"), None);
    }

    #[test]
    fn scaling_check_accepts_churn_bound_deltas_and_rejects_state_bound() {
        let small = sample().to_json();
        let mut big = sample();
        let c = big.checkpoint.as_mut().unwrap();
        // 4x the state: full grows 4x, delta stays put (pure churn).
        big.rows_loaded *= 4;
        big.target_rows = 100_000;
        c.full_bytes *= 4;
        c.total_extents *= 4;
        check_checkpoint_scaling(&small, &big.to_json()).expect("churn-bound delta passes");

        // A delta that keeps pace with the state is a tracking bug.
        let mut bad = big.clone();
        bad.checkpoint.as_mut().unwrap().delta_bytes *= 4;
        let err = check_checkpoint_scaling(&small, &bad.to_json()).unwrap_err();
        assert!(err.contains("tracking state size"), "got: {err}");

        // At real scale the 20% acceptance bound applies.
        let mut fat = big.clone();
        fat.checkpoint.as_mut().unwrap().delta_bytes = fat.checkpoint.unwrap().full_bytes / 4;
        assert!(check_checkpoint_scaling(&small, &fat.to_json()).is_err());

        // Comparable row counts are not a scaling experiment.
        assert!(check_checkpoint_scaling(&small, &small).is_err());
    }
}

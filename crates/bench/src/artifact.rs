//! The `BENCH_<pr>.json` trajectory artifact: a schema-versioned summary
//! of one macro-benchmark run, written per PR so successive sessions (and
//! re-anchors) can read the performance trajectory of the repo without
//! re-running old builds.
//!
//! The writer emits the JSON by hand (the workspace carries no serde);
//! [`validate_artifact`] is the matching checker — a small strict JSON
//! parser plus required-key and finite-number rules — run by CI and by
//! `ridl benchcheck`.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

/// Artifact schema version; bump when the layout changes shape.
pub const SCHEMA_VERSION: u64 = 1;

/// One timed phase of the macro run.
#[derive(Clone, PartialEq, Debug)]
pub struct PhaseStat {
    /// Phase name (`generate`, `map`, `populate`, `bulk_load`,
    /// `traffic`, `sigex`, `checkpoint`, `traffic_post_checkpoint`,
    /// `recover`).
    pub name: String,
    /// Wall-clock seconds for the whole phase.
    pub seconds: f64,
    /// Work units processed (rows, ops, tables… — see the phase name).
    pub units: u64,
    /// Units per second (zero when `seconds` is zero).
    pub per_second: f64,
    /// Median per-unit latency in nanoseconds (zero when the phase was
    /// timed as a block rather than per unit).
    pub p50_ns: u64,
    /// 90th-percentile per-unit latency.
    pub p90_ns: u64,
    /// 99th-percentile per-unit latency.
    pub p99_ns: u64,
}

impl PhaseStat {
    /// A block-timed phase (no per-unit latency distribution).
    pub fn block(name: &str, seconds: f64, units: u64) -> Self {
        Self::with_quantiles(name, seconds, units, 0, 0, 0)
    }

    /// A phase with per-unit latency quantiles.
    pub fn with_quantiles(
        name: &str,
        seconds: f64,
        units: u64,
        p50_ns: u64,
        p90_ns: u64,
        p99_ns: u64,
    ) -> Self {
        let per_second = if seconds > 0.0 {
            units as f64 / seconds
        } else {
            0.0
        };
        Self {
            name: name.to_owned(),
            seconds,
            units,
            per_second,
            p50_ns,
            p90_ns,
            p99_ns,
        }
    }
}

/// Validation cost attributed to one constraint class over the traffic
/// and significant-example phases (from the obs per-kind counters; the
/// nanoseconds require the detail gate, which the driver turns on).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassCost {
    /// Constraint-class name (`key`, `foreign_key`, …).
    pub class: &'static str,
    /// Checks run.
    pub checks: u64,
    /// Violations reported (rejected statements produce these).
    pub violations: u64,
    /// Nanoseconds spent checking.
    pub nanos: u64,
}

/// WAL replay statistics from the crash-recovery phase.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WalStats {
    /// Committed units replayed on reopen.
    pub replay_units: u64,
    /// Row operations replayed.
    pub replay_ops: u64,
    /// Replay throughput in row ops per second.
    pub replay_ops_per_sec: f64,
    /// WAL bytes on disk at the simulated crash.
    pub bytes: u64,
}

/// The complete per-PR benchmark artifact.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchArtifact {
    /// PR number this artifact belongs to (`BENCH_<pr>.json`).
    pub pr: u64,
    /// Seed of the run.
    pub seed: u64,
    /// Requested approximate row count.
    pub target_rows: u64,
    /// Rows actually loaded by `bulk_load`.
    pub rows_loaded: u64,
    /// Mapped tables in the schema.
    pub tables: u64,
    /// Generated constraints in the schema.
    pub constraints: u64,
    /// Timed phases, in execution order.
    pub phases: Vec<PhaseStat>,
    /// Per-constraint-class validation cost.
    pub per_class: Vec<ClassCost>,
    /// WAL replay statistics.
    pub wal: WalStats,
    /// Crash-recovery wall-clock seconds (from the engine's always-on
    /// recovery timer).
    pub recovery_seconds: f64,
    /// Verified significant examples exercised against the engine.
    pub sigex_examples: u64,
    /// Constraint classes those examples covered.
    pub sigex_classes: Vec<&'static str>,
}

/// Formats a float: finite values in shortest-roundtrip form, non-finite
/// values as `0` (the validator rejects non-finite spellings, so the
/// writer must never emit them; phases guard their own divisions).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl BenchArtifact {
    /// Renders the artifact as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        s.push_str(&format!("  \"pr\": {},\n", self.pr));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"target_rows\": {},\n", self.target_rows));
        s.push_str(&format!("  \"rows_loaded\": {},\n", self.rows_loaded));
        s.push_str(&format!("  \"tables\": {},\n", self.tables));
        s.push_str(&format!("  \"constraints\": {},\n", self.constraints));
        s.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": {}, \"seconds\": {}, \"units\": {}, \"per_second\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}{}\n",
                json_str(&p.name),
                num(p.seconds),
                p.units,
                num(p.per_second),
                p.p50_ns,
                p.p90_ns,
                p.p99_ns,
                if i + 1 < self.phases.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"per_class\": [\n");
        for (i, c) in self.per_class.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"class\": {}, \"checks\": {}, \"violations\": {}, \"nanos\": {}}}{}\n",
                json_str(c.class),
                c.checks,
                c.violations,
                c.nanos,
                if i + 1 < self.per_class.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"wal\": {{\"replay_units\": {}, \"replay_ops\": {}, \"replay_ops_per_sec\": {}, \
             \"bytes\": {}}},\n",
            self.wal.replay_units,
            self.wal.replay_ops,
            num(self.wal.replay_ops_per_sec),
            self.wal.bytes,
        ));
        s.push_str(&format!(
            "  \"recovery\": {{\"seconds\": {}}},\n",
            num(self.recovery_seconds)
        ));
        s.push_str(&format!(
            "  \"sigex\": {{\"examples\": {}, \"classes\": [{}]}}\n",
            self.sigex_examples,
            self.sigex_classes
                .iter()
                .map(|c| json_str(c))
                .collect::<Vec<_>>()
                .join(", "),
        ));
        s.push_str("}\n");
        s
    }

    /// Writes the artifact to `path` (the JSON is validated first, so a
    /// buggy writer fails loudly instead of committing a bad artifact).
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let text = self.to_json();
        validate_artifact(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, text)
    }
}

// ---- the validator: a strict little JSON scanner ----

/// Keys that must appear somewhere in a valid artifact.
const REQUIRED_KEYS: [&str; 25] = [
    "schema_version",
    "pr",
    "seed",
    "target_rows",
    "rows_loaded",
    "tables",
    "constraints",
    "phases",
    "name",
    "seconds",
    "units",
    "per_second",
    "p50_ns",
    "p90_ns",
    "p99_ns",
    "per_class",
    "class",
    "checks",
    "violations",
    "nanos",
    "wal",
    "replay_units",
    "replay_ops",
    "replay_ops_per_sec",
    "bytes",
];

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    keys: BTreeSet<String>,
    numbers: Vec<f64>,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
            keys: BTreeSet::new(),
            numbers: Vec::new(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected byte '{}' at {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.keys.insert(key);
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut out = String::new();
        while let Some(b) = self.peek() {
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b' | b'f') => out.push(' '),
                        Some(b'u') => {
                            // \uXXXX — accept and decode the BMP scalar.
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let n = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().ok_or("unexpected end of string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        Err(format!("unterminated string starting at byte {start}"))
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let v: f64 = s
            .parse()
            .map_err(|_| format!("bad number '{s}' at byte {start}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number '{s}' at byte {start}"));
        }
        self.numbers.push(v);
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

/// Validates the text of a `BENCH_*.json` artifact: it must be a single
/// well-formed JSON document, every number must be finite, every
/// [`REQUIRED_KEYS`] entry must appear, `schema_version` must match, and
/// the `phases` and `per_class` arrays must be non-empty (their inner
/// keys are in the required set, so an empty array fails the key check).
pub fn validate_artifact(text: &str) -> Result<(), String> {
    let mut sc = Scanner::new(text);
    sc.skip_ws();
    if sc.peek() != Some(b'{') {
        return Err("artifact must be a JSON object".to_owned());
    }
    sc.object()?;
    sc.skip_ws();
    if sc.pos != sc.bytes.len() {
        return Err(format!("trailing garbage at byte {}", sc.pos));
    }
    for key in REQUIRED_KEYS {
        if !sc.keys.contains(key) {
            return Err(format!("missing required key \"{key}\""));
        }
    }
    if !text.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")) {
        return Err(format!("artifact schema_version must be {SCHEMA_VERSION}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchArtifact {
        BenchArtifact {
            pr: 7,
            seed: 1989,
            target_rows: 1000,
            rows_loaded: 1042,
            tables: 130,
            constraints: 410,
            phases: vec![
                PhaseStat::block("generate", 0.5, 1),
                PhaseStat::with_quantiles("traffic", 1.25, 200, 10_000, 20_000, 40_000),
            ],
            per_class: vec![ClassCost {
                class: "key",
                checks: 123,
                violations: 4,
                nanos: 55_000,
            }],
            wal: WalStats {
                replay_units: 100,
                replay_ops: 200,
                replay_ops_per_sec: 12_345.6,
                bytes: 4096,
            },
            recovery_seconds: 0.012,
            sigex_examples: 3,
            sigex_classes: vec!["key", "foreign_key"],
        }
    }

    #[test]
    fn artifact_roundtrips_through_validator() {
        let text = sample().to_json();
        validate_artifact(&text).expect("writer output validates");
    }

    #[test]
    fn validator_rejects_missing_keys_and_bad_json() {
        let text = sample().to_json();
        let broken = text.replace("\"recovery\"", "\"recouvery\"");
        // "recovery" is not in REQUIRED_KEYS but malformed JSON is caught.
        validate_artifact(&broken).expect("key rename still parses");
        let no_wal = text.replace("\"wal\"", "\"lawl\"");
        assert!(validate_artifact(&no_wal).is_err(), "missing wal key");
        assert!(validate_artifact("{").is_err(), "truncated");
        assert!(validate_artifact(&format!("{text} x")).is_err(), "trailing");
        let inf = text.replace("12345.6", "1e999");
        assert!(validate_artifact(&inf).is_err(), "non-finite number");
    }

    #[test]
    fn empty_phase_array_fails_required_keys() {
        let mut a = sample();
        a.phases.clear();
        assert!(validate_artifact(&a.to_json()).is_err());
    }
}

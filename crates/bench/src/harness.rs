//! The shared measurement harness the criterion benches and the macro
//! driver build on: scenario construction, engine-probed mutation
//! targets, adaptive wall-clock timing and scratch-directory management.
//!
//! Before this module existed every bench carried its own copy of
//! `build_db`/`pick_target`/`time_op`; the copies drifted (different
//! budgets, different probe rules) and their setup could not be smoke-
//! tested. The benches now call these functions, and
//! `tests/bench_smoke.rs` runs the same setup at tiny scale under
//! `cargo test`.

use std::path::PathBuf;
use std::time::Instant;

use ridl_brm::Value;
use ridl_engine::{Database, Durability, FsyncPolicy, Pred};
use ridl_relational::{RelSchema, RelState, Row, TableId};
use ridl_workloads::scenario;

/// The seed every bench pins (the year of the paper).
pub const BENCH_SEED: u64 = 1989;

/// Builds the industrial-scale database with roughly `target_rows` rows
/// (the shared calibrated scenario from `ridl-workloads`).
pub fn build_db(target_rows: usize) -> Database {
    let sc = scenario::industrial_population(BENCH_SEED, target_rows);
    let mut db = Database::create(sc.schema).unwrap();
    db.load_state(sc.state).unwrap();
    db
}

/// A calibrated population in the three shapes the load benches need.
pub struct LoadScenario {
    /// The mapped relational schema.
    pub schema: RelSchema,
    /// The calibrated population.
    pub state: RelState,
    /// The same population flattened for [`Database::bulk_load`].
    pub rows: Vec<(TableId, Row)>,
}

/// Builds the industrial population plus its flattened row list.
pub fn build_load_scenario(target_rows: usize) -> LoadScenario {
    let sc = scenario::industrial_population(BENCH_SEED, target_rows);
    let rows = scenario::rows_of(&sc.schema, &sc.state);
    LoadScenario {
        schema: sc.schema,
        state: sc.state,
        rows,
    }
}

/// The concrete rows and predicates one mutation measurement needs: a
/// probed safe-to-delete row addressed by primary key, a PK-duplicate
/// row the engine must reject, and an identity assignment for
/// `update_where`.
#[derive(Clone, PartialEq, Debug)]
pub struct MutationTarget {
    /// Table the row lives in.
    pub table: String,
    /// Predicates identifying the row by primary key.
    pub preds: Vec<Pred>,
    /// The row itself, for re-insertion.
    pub row: Row,
    /// A distinct row with the same primary key — key validation must
    /// reject its insertion.
    pub reject_row: Row,
    /// Non-key column for the identity update.
    pub assign_col: String,
    /// Its current value (so the update is a no-op w.r.t. constraints).
    pub assign_val: Option<Value>,
}

/// Picks one probed mutation target (see [`pick_mutation_targets`]).
///
/// The probe commits one delete+reinsert pair — **two WAL units** on a
/// durable database — which replay-count assertions must account for.
pub fn pick_mutation_target(db: &mut Database) -> MutationTarget {
    pick_mutation_targets(db, 1)
        .into_iter()
        .next()
        .expect("no suitable benchmark table in the industrial mapping")
}

/// Picks up to `want` distinct probed mutation targets, scanning tables
/// largest-first. A row qualifies when its table has a primary key and a
/// non-key column, its key columns are non-null, a PK-duplicate reject
/// row can be constructed, and the engine demonstrably lets the row be
/// deleted and re-inserted (the probe runs both statements, so each
/// returned target has already committed two statements).
pub fn pick_mutation_targets(db: &mut Database, want: usize) -> Vec<MutationTarget> {
    let schema = db.schema().clone();
    let mut tables: Vec<(TableId, usize)> = schema
        .tables()
        .map(|(tid, _)| (tid, db.state().rows(tid).len()))
        .collect();
    tables.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    let mut out = Vec::new();
    for (tid, n) in tables {
        if out.len() >= want {
            break;
        }
        if n < 2 {
            continue;
        }
        let Some(pk) = schema.primary_key_of(tid) else {
            continue;
        };
        let pk = pk.to_vec();
        let t = schema.table(tid);
        let Some(non_key) = (0..t.arity() as u32).find(|c| !pk.contains(c)) else {
            continue;
        };
        let rows: Vec<Row> = db.state().rows(tid).iter().cloned().collect();
        for row in &rows {
            if out.len() >= want {
                break;
            }
            if pk.iter().any(|c| row[*c as usize].is_none()) {
                continue;
            }
            // A distinct row with the same primary key: tweak one non-key
            // column to a value no existing row has there.
            let mut reject_row = row.clone();
            let candidates = rows
                .iter()
                .map(|r| r[non_key as usize].clone())
                .chain([None])
                .filter(|v| *v != row[non_key as usize]);
            let mut found_reject = None;
            for cand in candidates {
                reject_row[non_key as usize] = cand;
                if !db.state().rows(tid).contains(&reject_row) {
                    found_reject = Some(reject_row.clone());
                    break;
                }
            }
            let Some(reject_row) = found_reject else {
                continue;
            };
            let preds: Vec<Pred> = pk
                .iter()
                .map(|c| {
                    Pred::Eq(
                        t.column(*c).name.clone(),
                        row[*c as usize].clone().expect("checked non-null"),
                    )
                })
                .collect();
            // Probe: deletable (and re-insertable) without violations?
            if db.delete_where(&t.name, &preds) == Ok(1) {
                db.insert(&t.name, row.clone()).expect("reinsert probe");
                out.push(MutationTarget {
                    table: t.name.clone(),
                    preds,
                    row: row.clone(),
                    reject_row,
                    assign_col: t.column(non_key).name.clone(),
                    assign_val: row[non_key as usize].clone(),
                });
            }
        }
    }
    out
}

/// Deletes the target row by primary key and re-inserts it — two
/// committed statements through the delta-validation path.
pub fn commit_pair(db: &mut Database, t: &MutationTarget) {
    let n = db.delete_where(&t.table, &t.preds).expect("safe delete");
    assert_eq!(n, 1);
    db.insert(&t.table, t.row.clone()).expect("reinsert");
}

/// Adaptive wall-clock timing with an explicit budget: runs `f` once to
/// estimate its cost, picks an iteration count that fits `budget_secs`
/// clamped to `[min_iters, max_iters]`, and returns microseconds per
/// iteration.
pub fn time_op_with(
    budget_secs: f64,
    min_iters: usize,
    max_iters: usize,
    mut f: impl FnMut(),
) -> f64 {
    let warmup = Instant::now();
    f();
    let est = warmup.elapsed().as_secs_f64();
    let iters = ((budget_secs / est.max(1e-7)) as usize).clamp(min_iters, max_iters);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// [`time_op_with`] at the statement-level defaults (50 ms budget,
/// 5–400 iterations) used by the mutation and commit benches.
pub fn time_op(f: impl FnMut()) -> f64 {
    time_op_with(0.05, 5, 400, f)
}

/// [`time_op_with`] at the whole-load defaults (300 ms budget, 3–50
/// iterations) used by the bulk-load bench.
pub fn time_op_heavy(f: impl FnMut()) -> f64 {
    time_op_with(0.3, 3, 50, f)
}

/// A fresh scratch directory under the system temp dir, namespaced by
/// process id and `tag`. Any previous contents are removed.
pub fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ridl-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A [`Durability`] with the given fsync policy and auto-checkpointing
/// off (benches control WAL length themselves).
pub fn durability(fsync: FsyncPolicy) -> Durability {
    Durability {
        fsync,
        checkpoint_every_bytes: None,
    }
}

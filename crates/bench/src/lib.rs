pub fn noop() {}

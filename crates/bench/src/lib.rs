//! # ridl-bench — the shared benchmark harness and the RIDL-Bench macro
//! driver
//!
//! The `benches/` directory holds one criterion harness per paper
//! figure/claim; this library holds everything they share:
//!
//! * [`harness`] — scenario construction, engine-probed mutation
//!   targets, adaptive timing loops and scratch directories (previously
//!   copy-pasted into each bench);
//! * [`pipeline`] — [`pipeline::run_macro`]: the end-to-end macro
//!   benchmark (synthesize → map → populate → load → traffic → crash →
//!   recover) behind `ridl bench` and the `macro_pipeline` bench;
//! * [`artifact`] — the schema-versioned `BENCH_<pr>.json` trajectory
//!   artifact and its validator (`ridl benchcheck`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
pub mod harness;
pub mod pipeline;
pub mod server_bench;

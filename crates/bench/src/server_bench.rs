//! The many-client server benchmark behind the schema-v4 `server`
//! artifact object: N closed-loop sessions speak the wire protocol to an
//! in-process [`ridl_server::Server`] backed by a WAL-durable store.
//!
//! Three phases, all against one server instance:
//!
//! 1. **churn** — `sessions` short-lived sessions (connect → hello →
//!    one committed insert → a read-your-writes point query →
//!    disconnect) spread over a worker pool, so the commit pipeline sees
//!    genuinely concurrent writers and coalesces them into group-commit
//!    batches;
//! 2. **burst** — dedicated writer threads hammer inserts while probe
//!    readers measure query latency, demonstrating that snapshot reads
//!    stay fast (bounded p99) during a write burst;
//! 3. **admission wave** — more simultaneous connections than
//!    `max_sessions`, so admission control must reject the overflow with
//!    a proactive `busy` line.
//!
//! The loop is also a correctness check: every expected-ok statement
//! must succeed, commit sequences and snapshot versions must be
//! monotonic per session thread, every wave connection must be either
//! admitted or cleanly rejected, and the final row count must equal the
//! acknowledged inserts. Each violation increments the artifact's
//! `anomalies` field, which must be zero for the run to count.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use ridl_brm::DataType;
use ridl_engine::{Database, FsyncPolicy, StdIo};
use ridl_obs::Histogram;
use ridl_relational::{Column, RelConstraintKind, RelSchema, Table};
use ridl_server::json::{obj, Json};
use ridl_server::{Client, Server, ServerConfig};

use crate::artifact::ServerSummary;
use crate::harness;

/// Session-admission limit for the bench server; the wave phase opens
/// `WAVE_LIMIT + WAVE_EXTRA` simultaneous connections to force rejects.
const WAVE_LIMIT: usize = 48;
/// Connections past the limit in the admission wave (the guaranteed
/// minimum number of rejects).
const WAVE_EXTRA: usize = 16;
/// Writer threads in the burst phase.
const BURST_WRITERS: usize = 4;
/// Probe-reader threads measuring latency during the burst.
const BURST_READERS: usize = 4;

/// Everything the bench worker threads share.
struct Shared {
    addr: String,
    anomalies: AtomicU64,
    /// Successfully acknowledged inserts — compared against the final
    /// row count after shutdown.
    acked: AtomicU64,
    read_lat: Mutex<Histogram>,
    write_lat: Mutex<Histogram>,
    burst_lat: Mutex<Histogram>,
}

impl Shared {
    fn check(&self, ok: bool, what: &str) -> bool {
        if !ok {
            self.anomalies.fetch_add(1, Ordering::Relaxed);
            ridl_obs::journal::record(
                ridl_obs::Severity::Warn,
                "bench.server_anomaly",
                vec![("what", what.into())],
            );
        }
        ok
    }
}

/// The bench talks to its own two-column table — the server phase
/// measures session/pipeline mechanics, not constraint checking, which
/// the macro phases already cover on the mapped schema.
fn bench_schema() -> RelSchema {
    let mut s = RelSchema::new("bench");
    let d = s.domain("D", DataType::Char(24));
    let t = s.add_table(Table::new(
        "Bench",
        vec![Column::not_null("K", d), Column::nullable("V", d)],
    ));
    s.add_named(RelConstraintKind::PrimaryKey {
        table: t,
        cols: vec![0],
    });
    s
}

fn insert_req(key: &str) -> Json {
    obj([
        ("cmd", Json::str("insert")),
        ("table", Json::str("Bench")),
        ("row", Json::Arr(vec![Json::str(key), Json::Null])),
    ])
}

fn point_query(key: &str) -> Json {
    obj([
        ("cmd", Json::str("query")),
        ("table", Json::str("Bench")),
        (
            "where",
            Json::Arr(vec![obj([("col", Json::str("K")), ("eq", Json::str(key))])]),
        ),
    ])
}

/// One timed round trip; records into `hist` and returns the response
/// when the transport survived.
fn timed(c: &mut Client, req: Json, hist: &Mutex<Histogram>) -> Option<Json> {
    let t = Instant::now();
    let resp = c.request(req).ok()?;
    let ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
    hist.lock().expect("latency histogram").record(ns);
    Some(resp)
}

/// Phase 1: `sessions` short sessions over a closed-loop worker pool.
/// Each worker runs its share serially; the pool runs concurrently, so
/// inserts from different sessions pile into the commit queue together.
fn run_churn(sh: &Arc<Shared>, sessions: usize) {
    let workers = sessions.clamp(1, 32);
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let sh = sh.clone();
            std::thread::spawn(move || {
                let mut last_seq = 0i64;
                let mut last_version = -1i64;
                let mut s = w;
                while s < sessions {
                    let key = format!("C{s:06}");
                    let Ok(mut c) = Client::connect(&sh.addr) else {
                        sh.check(false, "churn connect failed");
                        s += workers;
                        continue;
                    };
                    let hello_ok = c.hello("churn").map(|r| Client::is_ok(&r));
                    sh.check(hello_ok.unwrap_or(false), "churn hello failed");
                    if let Some(r) = timed(&mut c, insert_req(&key), &sh.write_lat) {
                        if sh.check(Client::is_ok(&r), "churn insert rejected") {
                            sh.acked.fetch_add(1, Ordering::Relaxed);
                            let seq = r.get("seq").and_then(Json::as_i64).unwrap_or(0);
                            sh.check(seq > last_seq, "commit seq not increasing");
                            last_seq = seq;
                        }
                    } else {
                        sh.check(false, "churn insert transport failed");
                    }
                    if let Some(r) = timed(&mut c, point_query(&key), &sh.read_lat) {
                        let rows = r.get("rows").and_then(Json::as_arr).map_or(0, <[_]>::len);
                        sh.check(rows == 1, "read-your-writes query missed the insert");
                        let version = r.get("version").and_then(Json::as_i64).unwrap_or(-1);
                        sh.check(version >= last_version, "snapshot version went backwards");
                        last_version = version;
                    } else {
                        sh.check(false, "churn query transport failed");
                    }
                    s += workers;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("churn worker");
    }
}

/// Phase 2: a write burst with concurrent latency-probing readers. The
/// probe latencies land in their own histogram so the artifact can show
/// reader p99 *during* the burst stayed bounded.
fn run_burst(sh: &Arc<Shared>, writes_per_writer: usize) {
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..BURST_READERS)
        .map(|_| {
            let sh = sh.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let Ok(mut c) = Client::connect(&sh.addr) else {
                    sh.check(false, "burst reader connect failed");
                    return;
                };
                let _ = c.hello("burst-reader");
                let mut last_version = -1i64;
                while !stop.load(Ordering::Relaxed) {
                    let Some(r) = timed(&mut c, point_query("C000000"), &sh.burst_lat) else {
                        sh.check(false, "burst read transport failed");
                        return;
                    };
                    sh.check(Client::is_ok(&r), "burst read failed");
                    let version = r.get("version").and_then(Json::as_i64).unwrap_or(-1);
                    sh.check(version >= last_version, "burst version went backwards");
                    last_version = version;
                }
            })
        })
        .collect();
    let writers: Vec<_> = (0..BURST_WRITERS)
        .map(|t| {
            let sh = sh.clone();
            std::thread::spawn(move || {
                let Ok(mut c) = Client::connect(&sh.addr) else {
                    sh.check(false, "burst writer connect failed");
                    return;
                };
                let _ = c.hello("burst-writer");
                for i in 0..writes_per_writer {
                    let key = format!("B{t}-{i:06}");
                    if let Some(r) = timed(&mut c, insert_req(&key), &sh.write_lat) {
                        if sh.check(Client::is_ok(&r), "burst insert rejected") {
                            sh.acked.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        sh.check(false, "burst insert transport failed");
                    }
                }
            })
        })
        .collect();
    for h in writers {
        h.join().expect("burst writer");
    }
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().expect("burst reader");
    }
}

/// Phase 3: `WAVE_LIMIT + WAVE_EXTRA` simultaneous connections. Admitted
/// sessions hold their slot until every thread has an outcome, so at
/// least `WAVE_EXTRA` connections must be turned away. Each thread's
/// outcome must be a clean admit or a clean `busy` reject — a connection
/// reset mid-handshake also counts as rejected (the server closes the
/// socket right after the proactive busy line).
fn run_admission_wave(sh: &Arc<Shared>) {
    let total = WAVE_LIMIT + WAVE_EXTRA;
    let start = Arc::new(Barrier::new(total));
    let hold = Arc::new(Barrier::new(total));
    let handles: Vec<_> = (0..total)
        .map(|_| {
            let sh = sh.clone();
            let start = start.clone();
            let hold = hold.clone();
            std::thread::spawn(move || {
                start.wait();
                let conn = Client::connect(&sh.addr);
                let admitted = match conn {
                    Err(_) => None, // reset while the server shed load
                    Ok(mut c) => match c.hello("wave") {
                        Ok(r) if Client::is_ok(&r) => Some(c),
                        Ok(r) => {
                            sh.check(
                                Client::error_code(&r) == Some("busy"),
                                "wave reject was not a busy error",
                            );
                            None
                        }
                        Err(_) => None, // busy line lost to the close race
                    },
                };
                hold.wait();
                drop(admitted);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("wave thread");
    }
}

/// Runs the full server benchmark: starts a server on a scratch durable
/// store, drives the three phases, verifies the final state, and folds
/// the client-side histograms and server counters into a
/// [`ServerSummary`].
pub fn run_server_bench(sessions: usize) -> Result<ServerSummary, String> {
    let dir = harness::bench_dir("server");
    // FsyncPolicy::Never hands the fsync cadence to the commit pipeline:
    // one flush_wal per drained batch, so `wal.group_batch` records the
    // commits each fsync absorbed from the concurrent writers.
    let db = Database::open_with(
        Arc::new(StdIo),
        &dir,
        bench_schema(),
        harness::durability(FsyncPolicy::Never),
    )
    .map_err(|e| format!("open server bench store: {e}"))?;
    let before = ridl_obs::snapshot();
    let server = Server::start(
        db,
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: WAVE_LIMIT,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("start bench server: {e}"))?;
    let sh = Arc::new(Shared {
        addr: server.addr().to_string(),
        anomalies: AtomicU64::new(0),
        acked: AtomicU64::new(0),
        read_lat: Mutex::new(Histogram::new()),
        write_lat: Mutex::new(Histogram::new()),
        burst_lat: Mutex::new(Histogram::new()),
    });

    let t0 = Instant::now();
    run_churn(&sh, sessions);
    run_burst(&sh, (sessions / BURST_WRITERS).clamp(25, 2_000));
    run_admission_wave(&sh);
    let seconds = t0.elapsed().as_secs_f64();

    let acked = sh.acked.load(Ordering::Relaxed);
    let db = server
        .shutdown()
        .map_err(|e| format!("server shutdown: {e}"))?;
    sh.check(
        db.state().num_rows() as u64 == acked,
        "final row count differs from acknowledged inserts",
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    let diff = ridl_obs::snapshot().since(&before);
    sh.check(
        diff.counter("server.admission_rejects") > 0,
        "admission wave produced no rejects",
    );
    let read = sh.read_lat.lock().expect("read histogram");
    let write = sh.write_lat.lock().expect("write histogram");
    let burst = sh.burst_lat.lock().expect("burst histogram");
    let batch = ridl_obs::hist::summary_named("server.commit_batch").unwrap_or_default();
    let reads = diff.counter("server.reads");
    let writes = diff.counter("server.writes");
    Ok(ServerSummary {
        sessions: diff.counter("server.sessions"),
        peak_sessions: diff.counter("server.sessions.peak"),
        admission_rejects: diff.counter("server.admission_rejects"),
        busy_rejects: diff.counter("server.busy_rejects"),
        reads,
        writes,
        anomalies: sh.anomalies.load(Ordering::Relaxed),
        seconds,
        ops_per_sec: if seconds > 0.0 {
            (reads + writes) as f64 / seconds
        } else {
            0.0
        },
        read_p50_ns: read.p50(),
        read_p99_ns: read.p99(),
        write_p50_ns: write.p50(),
        write_p99_ns: write.p99(),
        burst_read_p99_ns: burst.p99(),
        commit_batch_p50: batch.p50,
        commit_batch_max: batch.max,
    })
}

//! Log-bucketed latency histograms.
//!
//! An HDR-style fixed layout: 65 power-of-two buckets, where bucket 0
//! holds the value `0` and bucket `b` (for `b >= 1`) holds values in
//! `[2^(b-1), 2^b - 1]`. Recording is one `leading_zeros` and one array
//! increment, quantiles are a linear walk over 65 slots, and two
//! histograms merge by adding bucket counts — so per-thread histograms
//! recorded by `relational::parallel` workers aggregate into one account
//! without locks on the record path.
//!
//! Quantile estimates return the *upper bound* of the bucket containing
//! the requested rank (clamped to the observed maximum), which makes them
//! a deterministic function of the bucket counts alone: merging
//! per-thread histograms yields bit-identical quantiles to recording the
//! concatenated samples single-threaded.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of buckets: value 0, plus one bucket per power of two up to
/// `u64::MAX`.
pub const BUCKETS: usize = 65;

/// A fixed-layout log-bucketed histogram of `u64` samples (typically
/// nanoseconds).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index of `v`: 0 for 0, else `64 - leading_zeros(v)`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The largest value bucket `b` can hold.
#[inline]
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// An empty histogram (const, so registries can hold them in statics).
    pub const fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        if v > self.max {
            self.max = v;
        }
        if v < self.min {
            self.min = v;
        }
    }

    /// Adds every bucket of `other` into `self`. Merging per-thread
    /// histograms this way is exactly equivalent to recording the
    /// concatenated samples into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.count += other.count;
        if other.max > self.max {
            self.max = other.max;
        }
        if other.min < self.min {
            self.min = other.min;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample, or zero when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest sample, or zero when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The raw bucket counts (index 0 = value 0, index `b` = values in
    /// `[2^(b-1), 2^b - 1]`).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`): the upper edge
    /// of the bucket containing the sample of rank `ceil(q * count)`,
    /// clamped to the observed maximum. Returns zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let mut rank = (q * self.count as f64).ceil() as u64;
        if rank == 0 {
            rank = 1;
        }
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A point-in-time quantile summary of one histogram — the exportable
/// face of [`Histogram`], consumed by benchmark artifacts and renderers
/// that need the quantiles without holding the bucket array.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample (zero when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median upper bound.
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
}

impl Histogram {
    /// The quantile summary of this histogram.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
        }
    }
}

// ---- the named registry spans record into ----

static REGISTRY: Mutex<BTreeMap<&'static str, Histogram>> = Mutex::new(BTreeMap::new());

/// Records `v` into the process-wide histogram named `name`. Span drops
/// call this, so worker threads spawned by `relational::parallel` all
/// aggregate into the same per-span-name account.
pub fn record_named(name: &'static str, v: u64) {
    let mut map = REGISTRY.lock().expect("histogram registry poisoned");
    map.entry(name).or_default().record(v);
}

/// A copy of every named histogram, sorted by name.
pub fn histograms_snapshot() -> Vec<(&'static str, Histogram)> {
    REGISTRY
        .lock()
        .expect("histogram registry poisoned")
        .iter()
        .map(|(k, v)| (*k, v.clone()))
        .collect()
}

/// The quantile summary of one named histogram, or `None` when nothing
/// was recorded under `name`.
pub fn summary_named(name: &str) -> Option<HistSummary> {
    REGISTRY
        .lock()
        .expect("histogram registry poisoned")
        .iter()
        .find(|(k, _)| **k == name)
        .map(|(_, h)| h.summary())
}

/// Clears the named-histogram registry (tests and fresh CLI runs).
pub fn clear_histograms() {
    REGISTRY
        .lock()
        .expect("histogram registry poisoned")
        .clear();
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the named histograms as an aligned table: one row per span
/// name with count, p50, p90, p99 and max.
pub fn render_histograms() -> String {
    let snap = histograms_snapshot();
    let mut out = String::new();
    out.push_str("-- LATENCY HISTOGRAMS (per span name)\n");
    if snap.is_empty() {
        out.push_str("   (no spans recorded)\n");
        return out;
    }
    let width = snap.iter().map(|(n, _)| n.len()).max().unwrap_or(0).max(4);
    out.push_str(&format!(
        "   {:<width$}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}\n",
        "span", "count", "p50", "p90", "p99", "max"
    ));
    for (name, h) in &snap {
        out.push_str(&format!(
            "   {:<width$}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}\n",
            name,
            h.count(),
            fmt_ns(h.p50()),
            fmt_ns(h.p90()),
            fmt_ns(h.p99()),
            fmt_ns(h.max()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 1..64 {
            assert_eq!(bucket_of(bucket_upper(b)), b, "upper edge stays in bucket");
            assert_eq!(bucket_of(bucket_upper(b) + 1), b + 1);
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 50_000, 50_000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.min(), 1);
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.max());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let samples_a = [0u64, 5, 17, 300, 4096, u64::MAX];
        let samples_b = [1u64, 1, 2, 900_000, 12];
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut all = Histogram::new();
        for v in samples_a {
            ha.record(v);
            all.record(v);
        }
        for v in samples_b {
            hb.record(v);
            all.record(v);
        }
        ha.merge(&hb);
        assert_eq!(ha, all);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(ha.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p99(), 0);
    }
}

//! Pluggable metric-event sinks.
//!
//! Hot paths report *counters* (see the crate root); discrete events that
//! deserve a line of their own — a statement's enforcement report, a
//! validator worker panic, a bulk-load summary — go through [`emit`] to
//! whichever [`MetricsSink`] is attached. When none is, [`emit`] is a
//! single relaxed atomic load and a branch, so instrumented code can call
//! it unconditionally.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// A consumer of discrete metric events. `name` is a dotted metric path
/// (e.g. `engine.statement`, `validate.worker_panic`), `value` the scalar
/// payload, `detail` a short human/JSON-safe annotation.
pub trait MetricsSink: Send + Sync {
    /// Consumes one event.
    fn event(&self, name: &str, value: u64, detail: &str);
}

static SINK_ATTACHED: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static RwLock<Option<Arc<dyn MetricsSink>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn MetricsSink>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Attaches `sink` as the process-wide event consumer (replacing any
/// previous one) and turns the detail gate on so timings flow.
pub fn attach_sink(sink: Arc<dyn MetricsSink>) {
    *sink_slot().write().expect("sink slot poisoned") = Some(sink);
    SINK_ATTACHED.store(true, Ordering::Release);
    crate::set_detail(true);
}

/// Detaches the current sink (if any) and turns the detail gate off.
pub fn detach_sink() {
    SINK_ATTACHED.store(false, Ordering::Release);
    *sink_slot().write().expect("sink slot poisoned") = None;
    crate::set_detail(false);
}

/// Whether a sink is attached — one relaxed load.
#[inline]
pub fn sink_attached() -> bool {
    SINK_ATTACHED.load(Ordering::Relaxed)
}

/// Forwards an event to the attached sink; a load-and-branch no-op when
/// none is attached.
#[inline]
pub fn emit(name: &str, value: u64, detail: &str) {
    if !sink_attached() {
        return;
    }
    emit_slow(name, value, detail);
}

#[cold]
fn emit_slow(name: &str, value: u64, detail: &str) {
    if let Some(sink) = sink_slot().read().expect("sink slot poisoned").as_ref() {
        sink.event(name, value, detail);
    }
}

/// A sink that appends each event as one JSON line
/// (`{"metric":NAME,"value":N,"detail":TEXT}`) to a file — the same
/// shape [`crate::export`] writes, so one artifact can carry both event
/// streams and snapshot dumps. I/O failures are reported on stderr
/// **once** per sink — not per event (an unwritable path under a
/// thousand-statement run must not spam a thousand lines) and not
/// silently (metrics dropped with no diagnostic at all) — and never
/// panicked on: observability must not take the engine down.
pub struct JsonlSink {
    path: PathBuf,
    file: Mutex<Option<std::fs::File>>,
    warned: AtomicBool,
}

impl JsonlSink {
    /// A sink appending to `path` (created on first event).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            file: Mutex::new(None),
            warned: AtomicBool::new(false),
        }
    }

    /// Reports `what` on stderr unless this sink has already warned.
    fn warn_once(&self, what: &str, e: &std::io::Error) {
        if !self.warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "ridl-obs: cannot {what} {} ({e}); further metric events will be dropped",
                self.path.display()
            );
        }
    }

    /// Whether this sink has reported an I/O error (test hook).
    pub fn has_warned(&self) -> bool {
        self.warned.load(Ordering::Relaxed)
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSink for JsonlSink {
    fn event(&self, name: &str, value: u64, detail: &str) {
        let line = format!(
            "{{\"metric\":\"{}\",\"value\":{},\"detail\":\"{}\"}}\n",
            json_escape(name),
            value,
            json_escape(detail)
        );
        let mut guard = self.file.lock().expect("jsonl sink poisoned");
        if guard.is_none() {
            match OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
            {
                Ok(f) => *guard = Some(f),
                Err(e) => {
                    self.warn_once("open", &e);
                    return;
                }
            }
        }
        if let Some(f) = guard.as_mut() {
            if let Err(e) = f.write_all(line.as_bytes()) {
                self.warn_once("write", &e);
            }
        }
    }
}

/// An in-memory sink that records events for assertions (tests and the
/// CLI profile report).
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<(String, u64, String)>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events recorded so far, in arrival order.
    pub fn events(&self) -> Vec<(String, u64, String)> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Events whose metric name equals `name`.
    pub fn named(&self, name: &str) -> Vec<(u64, String)> {
        self.events()
            .into_iter()
            .filter(|(n, _, _)| n == name)
            .map(|(_, v, d)| (v, d))
            .collect()
    }
}

impl MetricsSink for MemorySink {
    fn event(&self, name: &str, value: u64, detail: &str) {
        self.events.lock().expect("memory sink poisoned").push((
            name.to_owned(),
            value,
            detail.to_owned(),
        ));
    }
}

/// Installs a [`JsonlSink`] when the `RIDL_METRICS_JSONL` environment
/// variable names a file. Runs its check once per process; later calls are
/// free. Returns whether a sink is attached afterwards.
pub fn init_from_env() -> bool {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if let Ok(path) = std::env::var("RIDL_METRICS_JSONL") {
            if !path.is_empty() {
                attach_sink(Arc::new(JsonlSink::new(path)));
            }
        }
    });
    sink_attached()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_round_trips_events() {
        let sink = Arc::new(MemorySink::new());
        attach_sink(sink.clone());
        assert!(sink_attached());
        emit("test.event", 7, "hello");
        detach_sink();
        assert!(!sink_attached());
        emit("test.event", 8, "dropped");
        let got = sink.named("test.event");
        assert_eq!(got, vec![(7, "hello".to_owned())]);
    }

    #[test]
    fn jsonl_sink_appends_lines() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ridl-obs-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let sink = JsonlSink::new(&path);
        sink.event("a.b", 1, "x \"quoted\"");
        sink.event("a.c", 2, "");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"metric\":\"a.b\",\"value\":1,\"detail\":\"x \\\"quoted\\\"\"}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unwritable_sink_warns_once_and_keeps_running() {
        // A directory is not openable as an append file: every event
        // fails, but only the first reports (warn-once), and none panic.
        let sink = JsonlSink::new(std::env::temp_dir());
        assert!(!sink.has_warned());
        sink.event("a.b", 1, "");
        assert!(sink.has_warned());
        sink.event("a.b", 2, "");
        sink.event("a.b", 3, "");
        assert!(sink.has_warned());
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(json_escape("a\nb\t\"c\\"), "a\\nb\\t\\\"c\\\\");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

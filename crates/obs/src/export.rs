//! Snapshot export in the `CRITERION_SUMMARY_JSON` flow, and Chrome
//! trace-event export for span traces.
//!
//! The vendored criterion harness appends one JSON line per bench
//! (`{"name":..,"ns_per_iter":..,"iters":..}`) to the file named by the
//! `CRITERION_SUMMARY_JSON` environment variable. [`append_summary_snapshot`]
//! appends metric lines (`{"metric":"<label>/<name>","value":N}`) to the
//! same file, so one CI artifact carries timings and the enforcement
//! counters that explain them side by side.
//!
//! [`chrome_trace`] renders finished spans (see [`crate::span`]) as
//! Chrome trace-event JSON — duration (`ph:"B"`/`ph:"E"`) pairs that
//! `chrome://tracing` and Perfetto's legacy importer load directly.
//! `RIDL_TRACE_JSON=<path>` both enables tracing
//! ([`init_tracing_from_env`]) and names the file the trace is written to
//! at the end of a run ([`write_chrome_trace_env`]).

use std::fs::OpenOptions;
use std::io::Write;
use std::sync::OnceLock;

use crate::sink::json_escape;
use crate::span::{AttrValue, SpanEvent};
use crate::{ConstraintClass, MetricsSnapshot, COUNTER_NAMES};

/// Renders `snap` as JSON lines, one per non-zero counter, each prefixed
/// with `label` (`{"metric":"<label>/<name>","value":N}`). Zero counters
/// are skipped so bench artifacts stay small and diffs meaningful.
pub fn snapshot_jsonl(label: &str, snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let label = json_escape(label);
    for (i, name) in COUNTER_NAMES.iter().enumerate() {
        if snap.counters[i] != 0 {
            out.push_str(&format!(
                "{{\"metric\":\"{label}/{name}\",\"value\":{}}}\n",
                snap.counters[i]
            ));
        }
    }
    for class in ConstraintClass::ALL {
        let k = snap.kind(class);
        for (suffix, value) in [
            ("checks", k.checks),
            ("violations", k.violations),
            ("nanos", k.nanos),
        ] {
            if value != 0 {
                out.push_str(&format!(
                    "{{\"metric\":\"{label}/kind.{}.{suffix}\",\"value\":{value}}}\n",
                    class.name()
                ));
            }
        }
    }
    out
}

/// Appends `snap` (rendered by [`snapshot_jsonl`]) to the file named by
/// `CRITERION_SUMMARY_JSON`, creating it if needed. Does nothing when the
/// variable is unset; reports write errors to stderr rather than
/// panicking, mirroring the vendored criterion harness.
pub fn append_summary_snapshot(label: &str, snap: &MetricsSnapshot) {
    let Ok(path) = std::env::var("CRITERION_SUMMARY_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let body = snapshot_jsonl(label, snap);
    if body.is_empty() {
        return;
    }
    match OpenOptions::new().create(true).append(true).open(&path) {
        Ok(mut f) => {
            if let Err(e) = f.write_all(body.as_bytes()) {
                eprintln!("ridl-obs: cannot write {path}: {e}");
            }
        }
        Err(e) => eprintln!("ridl-obs: cannot open {path}: {e}"),
    }
}

/// Emits every non-zero counter of the current process-wide totals as one
/// event each (metric `<label>/<name>`) through the attached sink — an
/// end-of-run summary for CLI invocations running under
/// `RIDL_METRICS_JSONL`. A no-op when no sink is attached.
pub fn emit_snapshot(label: &str) {
    if !crate::sink_attached() {
        return;
    }
    let snap = crate::snapshot();
    for (i, name) in COUNTER_NAMES.iter().enumerate() {
        if snap.counters[i] != 0 {
            crate::emit(&format!("{label}/{name}"), snap.counters[i], "");
        }
    }
    for class in ConstraintClass::ALL {
        let k = snap.kind(class);
        for (suffix, value) in [
            ("checks", k.checks),
            ("violations", k.violations),
            ("nanos", k.nanos),
        ] {
            if value != 0 {
                crate::emit(
                    &format!("{label}/kind.{}.{suffix}", class.name()),
                    value,
                    "",
                );
            }
        }
    }
}

// ---- Chrome trace-event export ----

fn attr_json(v: &AttrValue) -> String {
    match v {
        AttrValue::Str(s) => format!("\"{}\"", json_escape(s)),
        AttrValue::U64(n) => n.to_string(),
        AttrValue::I64(n) => n.to_string(),
        AttrValue::Bool(b) => b.to_string(),
    }
}

fn push_event(out: &mut String, e: &SpanEvent, phase: char, ts_ns: u64, first: &mut bool) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"ridl\",\"ph\":\"{phase}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}",
        json_escape(e.name),
        ts_ns / 1_000,
        ts_ns % 1_000,
        e.thread
    ));
    if phase == 'B' && !e.attrs.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(k), attr_json(v)));
        }
        out.push('}');
    }
    out.push('}');
}

/// Renders finished spans as Chrome trace-event JSON: one `B`/`E` pair
/// per span, one event per line, timestamps in microseconds since the
/// trace epoch. Events are emitted thread by thread in nesting order, so
/// begin/end pairs are balanced and timestamps are monotone within each
/// `tid` — the two properties [`validate_chrome_trace`] (and CI) check.
///
/// Spans whose parent chain was truncated at the collector cap are
/// omitted (a child always finishes before its parent, so a missing
/// parent means the whole enclosing region is incomplete); `dropped` is
/// the cap count reported by [`crate::span::take_events`]. Both counts
/// land in the trace's `otherData` metadata.
pub fn chrome_trace(events: &[SpanEvent], dropped: u64) -> String {
    use std::collections::BTreeMap;
    use std::collections::HashSet;
    let ids: HashSet<u64> = events.iter().map(|e| e.id).collect();
    // thread -> roots; span id -> children. Kept in start order.
    let mut roots: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut orphans = 0u64;
    for (i, e) in events.iter().enumerate() {
        match e.parent {
            None => roots.entry(e.thread).or_default().push(i),
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(i),
            Some(_) => orphans += 1,
        }
    }
    for list in roots.values_mut().chain(children.values_mut()) {
        list.sort_by_key(|&i| (events[i].start_ns, events[i].id));
    }
    fn emit(
        out: &mut String,
        events: &[SpanEvent],
        children: &BTreeMap<u64, Vec<usize>>,
        idx: usize,
        first: &mut bool,
        emitted: &mut u64,
    ) {
        let e = &events[idx];
        *emitted += 1;
        push_event(out, e, 'B', e.start_ns, first);
        if let Some(kids) = children.get(&e.id) {
            for &c in kids {
                emit(out, events, children, c, first, emitted);
            }
        }
        push_event(out, e, 'E', e.start_ns.saturating_add(e.dur_ns), first);
    }
    let mut body = String::new();
    let mut first = true;
    let mut emitted = 0u64;
    for list in roots.values() {
        for &r in list {
            emit(&mut body, events, &children, r, &mut first, &mut emitted);
        }
    }
    // Descendants of an orphan are counted as unexported too.
    let unexported = events.len() as u64 - emitted;
    let _ = orphans;
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"spans\":{emitted},\"unexported\":{unexported},\"dropped_at_cap\":{dropped}}},\"traceEvents\":[\n{body}\n]}}\n"
    )
}

/// Enables span tracing when `RIDL_TRACE_JSON` names a file. Checked
/// once per process; returns whether tracing is on afterwards.
pub fn init_tracing_from_env() -> bool {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if let Ok(path) = std::env::var("RIDL_TRACE_JSON") {
            if !path.is_empty() {
                crate::span::set_tracing(true);
            }
        }
    });
    crate::span::tracing_enabled()
}

/// Writes `events` as Chrome trace JSON to `path`.
pub fn write_chrome_trace(path: &str, events: &[SpanEvent], dropped: u64) -> std::io::Result<()> {
    let text = chrome_trace(events, dropped);
    std::fs::write(path, text)
}

/// Drains the span collector and writes it as Chrome trace JSON to the
/// file named by `RIDL_TRACE_JSON`. Does nothing when the variable is
/// unset; reports I/O errors on stderr once rather than panicking.
/// Returns the path written, if any.
pub fn write_chrome_trace_env() -> Option<String> {
    let path = std::env::var("RIDL_TRACE_JSON").ok()?;
    if path.is_empty() {
        return None;
    }
    let (events, dropped) = crate::span::take_events();
    if events.is_empty() && dropped == 0 {
        // Nothing recorded (or already exported and drained): leave any
        // previously written file alone.
        return None;
    }
    match write_chrome_trace(&path, &events, dropped) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("ridl-obs: cannot write {path}: {e}");
            None
        }
    }
}

/// Summary statistics from a validated Chrome trace file.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ChromeTraceStats {
    /// Balanced begin/end pairs found.
    pub spans: u64,
    /// Distinct `tid` values seen.
    pub threads: u64,
    /// `dropped_at_cap` from the trace's `otherData`: spans lost when the
    /// collector hit its cap. Non-zero means the trace is incomplete —
    /// `ridl tracecheck` warns but does not fail.
    pub dropped_at_cap: u64,
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .char_indices()
        .find(|(i, c)| {
            if rest.starts_with('"') {
                *c == '"' && *i > 0 && rest.as_bytes()[i - 1] != b'\\'
            } else {
                *c == ',' || *c == '}'
            }
        })
        .map(|(i, _)| i)?;
    Some(rest[..end].trim_start_matches('"'))
}

/// Validates `text` as well-formed Chrome trace JSON in the shape
/// [`chrome_trace`] emits: every `B` has a matching `E` with the same
/// name on the same `tid` (properly nested), timestamps are monotone
/// non-decreasing within each `tid`, and at least one span is present.
/// Independent of any JSON parser so CI can run it via `ridl tracecheck`.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    use std::collections::BTreeMap;
    if !text.trim_start().starts_with('{') || !text.contains("\"traceEvents\"") {
        return Err("not a Chrome trace object (no traceEvents)".into());
    }
    let mut stacks: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
    let mut last_ts: BTreeMap<String, f64> = BTreeMap::new();
    let mut stats = ChromeTraceStats::default();
    for (lineno, line) in text.lines().enumerate() {
        let Some(ph) = field(line, "ph") else {
            if line.contains("\"otherData\"") {
                if let Some(n) = field(line, "dropped_at_cap") {
                    stats.dropped_at_cap = n.parse().unwrap_or(0);
                }
            }
            continue;
        };
        let name = field(line, "name")
            .ok_or_else(|| format!("line {}: event without name", lineno + 1))?;
        let tid = field(line, "tid")
            .ok_or_else(|| format!("line {}: event without tid", lineno + 1))?
            .to_owned();
        let ts: f64 = field(line, "ts")
            .ok_or_else(|| format!("line {}: event without ts", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad ts: {e}", lineno + 1))?;
        let prev = last_ts.entry(tid.clone()).or_insert(f64::NEG_INFINITY);
        if ts < *prev {
            return Err(format!(
                "line {}: timestamp {ts} goes backwards on tid {tid} (previous {prev})",
                lineno + 1
            ));
        }
        *prev = ts;
        let stack = stacks.entry(tid.clone()).or_default();
        match ph {
            "B" => stack.push((name.to_owned(), ts)),
            "E" => {
                let Some((open, open_ts)) = stack.pop() else {
                    return Err(format!(
                        "line {}: E event for {name} on tid {tid} with no open span",
                        lineno + 1
                    ));
                };
                if open != name {
                    return Err(format!(
                        "line {}: E event for {name} closes open span {open} on tid {tid}",
                        lineno + 1
                    ));
                }
                if ts < open_ts {
                    return Err(format!(
                        "line {}: span {name} ends before it begins on tid {tid}",
                        lineno + 1
                    ));
                }
                stats.spans += 1;
            }
            other => {
                return Err(format!("line {}: unexpected phase {other}", lineno + 1));
            }
        }
    }
    for (tid, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!(
                "unbalanced trace: span {name} on tid {tid} never ends"
            ));
        }
    }
    stats.threads = stacks.len() as u64;
    if stats.spans == 0 {
        return Err("trace contains no spans".into());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, snapshot};

    #[test]
    fn snapshot_jsonl_skips_zeros_and_prefixes_label() {
        let before = snapshot();
        metrics().statements.add(2);
        metrics().per_kind[ConstraintClass::ForeignKey.index()]
            .violations
            .add(1);
        let delta = snapshot().since(&before);
        let text = snapshot_jsonl("unit-test", &delta);
        assert!(text.contains("{\"metric\":\"unit-test/engine.statements\",\"value\":2}"));
        assert!(text.contains("{\"metric\":\"unit-test/kind.foreign_key.violations\",\"value\":1}"));
        assert!(!text.contains("bulk_loads"));
        for line in text.lines() {
            assert!(line.starts_with("{\"metric\":\"unit-test/"));
            assert!(line.ends_with('}'));
        }
    }

    fn ev(
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        thread: u64,
    ) -> SpanEvent {
        SpanEvent {
            id,
            parent,
            name,
            start_ns,
            dur_ns,
            thread,
            depth: 0,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn chrome_trace_round_trips_through_validation() {
        let mut root = ev(1, None, "outer", 100, 10_000, 1);
        root.attrs.push(("kind", AttrValue::Str("x \"q\"".into())));
        root.attrs.push(("n", AttrValue::U64(3)));
        let events = vec![
            root,
            ev(2, Some(1), "inner", 500, 1_000, 1),
            ev(3, Some(1), "inner", 2_000, 0, 1),
            ev(4, None, "worker", 600, 300, 2),
        ];
        let text = chrome_trace(&events, 0);
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"args\":{\"kind\":\"x \\\"q\\\"\",\"n\":3}"));
        let stats = validate_chrome_trace(&text).expect("well-formed");
        assert_eq!(stats.spans, 4);
        assert_eq!(stats.threads, 2);
    }

    #[test]
    fn chrome_trace_omits_orphaned_subtrees() {
        // Parent id 9 was dropped at the cap: its child and grandchild
        // must not be exported (they would break per-tid monotonicity).
        let events = vec![
            ev(1, None, "root", 0, 10_000, 1),
            ev(2, Some(9), "orphan", 2_000, 100, 1),
            ev(3, Some(2), "orphan_child", 2_010, 10, 1),
        ];
        let text = chrome_trace(&events, 5);
        assert!(!text.contains("orphan"));
        assert!(text.contains("\"unexported\":2"));
        assert!(text.contains("\"dropped_at_cap\":5"));
        let stats = validate_chrome_trace(&text).expect("well-formed");
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.dropped_at_cap, 5);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        let unbalanced =
            "{\"traceEvents\":[\n{\"name\":\"a\",\"ph\":\"B\",\"ts\":1.0,\"pid\":1,\"tid\":1}\n]}";
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("never ends"));
        let backwards = "{\"traceEvents\":[\n\
            {\"name\":\"a\",\"ph\":\"B\",\"ts\":5.0,\"pid\":1,\"tid\":1},\n\
            {\"name\":\"a\",\"ph\":\"E\",\"ts\":4.0,\"pid\":1,\"tid\":1}\n]}";
        assert!(validate_chrome_trace(backwards)
            .unwrap_err()
            .contains("backwards"));
        let crossed = "{\"traceEvents\":[\n\
            {\"name\":\"a\",\"ph\":\"B\",\"ts\":1.0,\"pid\":1,\"tid\":1},\n\
            {\"name\":\"b\",\"ph\":\"B\",\"ts\":2.0,\"pid\":1,\"tid\":1},\n\
            {\"name\":\"a\",\"ph\":\"E\",\"ts\":3.0,\"pid\":1,\"tid\":1},\n\
            {\"name\":\"b\",\"ph\":\"E\",\"ts\":4.0,\"pid\":1,\"tid\":1}\n]}";
        assert!(validate_chrome_trace(crossed)
            .unwrap_err()
            .contains("closes open span"));
        assert!(validate_chrome_trace("{\"traceEvents\":[\n]}")
            .unwrap_err()
            .contains("no spans"));
        assert!(validate_chrome_trace("[]").is_err());
    }
}

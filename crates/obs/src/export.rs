//! Snapshot export in the `CRITERION_SUMMARY_JSON` flow.
//!
//! The vendored criterion harness appends one JSON line per bench
//! (`{"name":..,"ns_per_iter":..,"iters":..}`) to the file named by the
//! `CRITERION_SUMMARY_JSON` environment variable. [`append_summary_snapshot`]
//! appends metric lines (`{"metric":"<label>/<name>","value":N}`) to the
//! same file, so one CI artifact carries timings and the enforcement
//! counters that explain them side by side.

use std::fs::OpenOptions;
use std::io::Write;

use crate::sink::json_escape;
use crate::{ConstraintClass, MetricsSnapshot, COUNTER_NAMES};

/// Renders `snap` as JSON lines, one per non-zero counter, each prefixed
/// with `label` (`{"metric":"<label>/<name>","value":N}`). Zero counters
/// are skipped so bench artifacts stay small and diffs meaningful.
pub fn snapshot_jsonl(label: &str, snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let label = json_escape(label);
    for (i, name) in COUNTER_NAMES.iter().enumerate() {
        if snap.counters[i] != 0 {
            out.push_str(&format!(
                "{{\"metric\":\"{label}/{name}\",\"value\":{}}}\n",
                snap.counters[i]
            ));
        }
    }
    for class in ConstraintClass::ALL {
        let k = snap.kind(class);
        for (suffix, value) in [
            ("checks", k.checks),
            ("violations", k.violations),
            ("nanos", k.nanos),
        ] {
            if value != 0 {
                out.push_str(&format!(
                    "{{\"metric\":\"{label}/kind.{}.{suffix}\",\"value\":{value}}}\n",
                    class.name()
                ));
            }
        }
    }
    out
}

/// Appends `snap` (rendered by [`snapshot_jsonl`]) to the file named by
/// `CRITERION_SUMMARY_JSON`, creating it if needed. Does nothing when the
/// variable is unset; reports write errors to stderr rather than
/// panicking, mirroring the vendored criterion harness.
pub fn append_summary_snapshot(label: &str, snap: &MetricsSnapshot) {
    let Ok(path) = std::env::var("CRITERION_SUMMARY_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let body = snapshot_jsonl(label, snap);
    if body.is_empty() {
        return;
    }
    match OpenOptions::new().create(true).append(true).open(&path) {
        Ok(mut f) => {
            if let Err(e) = f.write_all(body.as_bytes()) {
                eprintln!("ridl-obs: cannot write {path}: {e}");
            }
        }
        Err(e) => eprintln!("ridl-obs: cannot open {path}: {e}"),
    }
}

/// Emits every non-zero counter of the current process-wide totals as one
/// event each (metric `<label>/<name>`) through the attached sink — an
/// end-of-run summary for CLI invocations running under
/// `RIDL_METRICS_JSONL`. A no-op when no sink is attached.
pub fn emit_snapshot(label: &str) {
    if !crate::sink_attached() {
        return;
    }
    let snap = crate::snapshot();
    for (i, name) in COUNTER_NAMES.iter().enumerate() {
        if snap.counters[i] != 0 {
            crate::emit(&format!("{label}/{name}"), snap.counters[i], "");
        }
    }
    for class in ConstraintClass::ALL {
        let k = snap.kind(class);
        for (suffix, value) in [
            ("checks", k.checks),
            ("violations", k.violations),
            ("nanos", k.nanos),
        ] {
            if value != 0 {
                crate::emit(
                    &format!("{label}/kind.{}.{suffix}", class.name()),
                    value,
                    "",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, snapshot};

    #[test]
    fn snapshot_jsonl_skips_zeros_and_prefixes_label() {
        let before = snapshot();
        metrics().statements.add(2);
        metrics().per_kind[ConstraintClass::ForeignKey.index()]
            .violations
            .add(1);
        let delta = snapshot().since(&before);
        let text = snapshot_jsonl("unit-test", &delta);
        assert!(text.contains("{\"metric\":\"unit-test/engine.statements\",\"value\":2}"));
        assert!(text.contains("{\"metric\":\"unit-test/kind.foreign_key.violations\",\"value\":1}"));
        assert!(!text.contains("bulk_loads"));
        for line in text.lines() {
            assert!(line.starts_with("{\"metric\":\"unit-test/"));
            assert!(line.ends_with('}'));
        }
    }
}

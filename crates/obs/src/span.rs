//! Hierarchical span tracing.
//!
//! A [`Span`] is an RAII guard around a region of work: entering pushes
//! onto a thread-local stack (so nesting is recovered without any caller
//! plumbing), dropping records a finished [`SpanEvent`] with the parent
//! span id, wall-clock offsets from a process-wide epoch, and any typed
//! attributes attached along the way. Finished events land in a global
//! collector (drained by [`take_events`]) and each span's duration also
//! feeds the per-name latency histogram registry in [`crate::hist`], so
//! spans recorded on `relational::parallel` worker threads aggregate into
//! the same p50/p99 account as the coordinating thread.
//!
//! Tracing is off by default. When off, [`enter`] is one relaxed atomic
//! load and [`Span::drop`] one branch on a `None` — cheap enough to leave
//! in the engine's per-statement path (the `engine_mutation` bench budget
//! is ≤ 5 % overhead with tracing disabled). Turn it on with
//! [`set_tracing`] or by setting `RIDL_TRACE_JSON` (see
//! [`crate::export::init_tracing_from_env`]).
//!
//! The collector is bounded: past [`MAX_EVENTS`] finished spans, further
//! events are counted but not stored (whole spans are dropped, never a
//! start without its end, so Chrome-trace export stays balanced).

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A typed span-attribute value.
#[derive(Clone, PartialEq, Debug)]
pub enum AttrValue {
    /// A string attribute (transform site, statement kind, …).
    Str(String),
    /// An unsigned count.
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// A flag.
    Bool(bool),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// One finished span: offsets are nanoseconds since the process trace
/// epoch, `thread` a small per-process thread index (not the OS tid).
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Unique span id (process-wide, never reused).
    pub id: u64,
    /// The enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name — also the latency-histogram key.
    pub name: &'static str,
    /// Start offset from the trace epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (saturating).
    pub dur_ns: u64,
    /// Small per-process index of the recording thread.
    pub thread: u64,
    /// Nesting depth on the recording thread (0 = root).
    pub depth: u32,
    /// Typed attributes attached while the span was open.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Collector capacity: whole spans past this are dropped (and counted),
/// keeping begin/end pairs balanced for the Chrome-trace exporter.
pub const MAX_EVENTS: usize = 65_536;

static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

struct Collector {
    events: Vec<SpanEvent>,
    dropped: u64,
}

static COLLECTOR: Mutex<Collector> = Mutex::new(Collector {
    events: Vec::new(),
    dropped: 0,
});

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_INDEX: Cell<u64> = const { Cell::new(0) };
}

/// Turns span tracing on or off process-wide.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether tracing is on: one relaxed load, the only cost [`enter`] pays
/// when tracing is disabled.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_index() -> u64 {
    THREAD_INDEX.with(|c| {
        let mut idx = c.get();
        if idx == 0 {
            idx = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(idx);
        }
        idx
    })
}

fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

struct SpanRec {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_ns: u64,
    thread: u64,
    depth: u32,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// An RAII span guard: created by [`enter`], records a [`SpanEvent`] (and
/// a histogram sample) on drop. When tracing is off the guard is inert.
/// Not `Send`: a span must be dropped on the thread that entered it, so
/// the thread-local nesting stack stays consistent.
pub struct Span {
    rec: Option<SpanRec>,
    _not_send: PhantomData<*const ()>,
}

/// Opens a span named `name` nested under the current thread's innermost
/// open span. Returns an inert guard when tracing is off.
#[inline]
pub fn enter(name: &'static str) -> Span {
    if !tracing_enabled() {
        return Span {
            rec: None,
            _not_send: PhantomData,
        };
    }
    enter_slow(name)
}

#[cold]
fn enter_slow(name: &'static str) -> Span {
    let epoch = epoch();
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, depth) = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        let depth = stack.len() as u32;
        stack.push(id);
        (parent, depth)
    });
    let start = Instant::now();
    Span {
        rec: Some(SpanRec {
            id,
            parent,
            name,
            start,
            start_ns: saturating_ns(start.duration_since(epoch)),
            thread: thread_index(),
            depth,
            attrs: Vec::new(),
        }),
        _not_send: PhantomData,
    }
}

impl Span {
    /// Whether this guard is actually recording (tracing was on at
    /// [`enter`]). Use to skip attribute formatting on the off path.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// Attaches a typed attribute. A no-op on an inert guard — but guard
    /// with [`Span::is_recording`] when *building* the value allocates.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(rec) = &mut self.rec {
            rec.attrs.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(rec) = self.rec.take() else {
            return;
        };
        let dur_ns = saturating_ns(rec.start.elapsed());
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop in reverse entry order, so this is our id; be
            // defensive anyway (a mem::forget upstream must not corrupt
            // every later span on the thread).
            if stack.last() == Some(&rec.id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|i| *i == rec.id) {
                stack.truncate(pos);
            }
        });
        crate::hist::record_named(rec.name, dur_ns);
        let mut c = COLLECTOR.lock().expect("span collector poisoned");
        if c.events.len() < MAX_EVENTS {
            c.events.push(SpanEvent {
                id: rec.id,
                parent: rec.parent,
                name: rec.name,
                start_ns: rec.start_ns,
                dur_ns,
                thread: rec.thread,
                depth: rec.depth,
                attrs: rec.attrs,
            });
        } else {
            c.dropped += 1;
            crate::metrics().span_dropped.inc();
        }
    }
}

/// Runs `f` inside a span named `name`.
pub fn in_span<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _span = enter(name);
    f()
}

/// Drains the collector: every finished span so far (in completion
/// order) plus the count of spans dropped at the capacity cap.
pub fn take_events() -> (Vec<SpanEvent>, u64) {
    let mut c = COLLECTOR.lock().expect("span collector poisoned");
    let dropped = c.dropped;
    c.dropped = 0;
    (std::mem::take(&mut c.events), dropped)
}

/// Copies the collector without draining it.
pub fn events_snapshot() -> (Vec<SpanEvent>, u64) {
    let c = COLLECTOR.lock().expect("span collector poisoned");
    (c.events.clone(), c.dropped)
}

/// Clears the collector and the drop count.
pub fn clear() {
    let mut c = COLLECTOR.lock().expect("span collector poisoned");
    c.events.clear();
    c.dropped = 0;
}

fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders finished spans as an indented tree, one root per top-level
/// span, children ordered by start time. Spans whose parent is missing
/// (dropped at the cap, or recorded on a worker thread whose parent span
/// lives elsewhere) render as roots.
pub fn render_tree(events: &[SpanEvent]) -> String {
    use std::collections::{BTreeMap, HashSet};
    let ids: HashSet<u64> = events.iter().map(|e| e.id).collect();
    // parent id (0 = root) -> child indices, kept in start order.
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let key = match e.parent {
            Some(p) if ids.contains(&p) => p,
            _ => 0,
        };
        children.entry(key).or_default().push(i);
    }
    for list in children.values_mut() {
        list.sort_by_key(|&i| (events[i].start_ns, events[i].id));
    }
    let mut out = String::new();
    out.push_str("-- SPAN TREE\n");
    if events.is_empty() {
        out.push_str("   (no spans recorded)\n");
        return out;
    }
    fn emit(
        out: &mut String,
        events: &[SpanEvent],
        children: &BTreeMap<u64, Vec<usize>>,
        idx: usize,
        indent: usize,
    ) {
        let e = &events[idx];
        out.push_str("   ");
        out.push_str(&"  ".repeat(indent));
        out.push_str(&format!("{} [{}]", e.name, fmt_dur(e.dur_ns)));
        if e.thread != 1 {
            out.push_str(&format!(" t{}", e.thread));
        }
        for (k, v) in &e.attrs {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        if let Some(kids) = children.get(&e.id) {
            for &c in kids {
                emit(out, events, children, c, indent + 1);
            }
        }
    }
    if let Some(roots) = children.get(&0) {
        for &r in roots {
            emit(&mut out, events, &children, r, 0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector and tracing flag are process-global; every test in
    // this module serialises on one lock so unit tests stay independent.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn reset() {
        clear();
        crate::hist::clear_histograms();
        set_tracing(true);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_tracing(false);
        clear();
        {
            let mut s = enter("test.off");
            assert!(!s.is_recording());
            s.attr("k", 1u64);
        }
        let (events, dropped) = take_events();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn nesting_and_attributes_are_recorded() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        {
            let mut outer = enter("test.outer");
            outer.attr("n", 2u64);
            {
                let mut inner = enter("test.inner");
                inner.attr("what", "payload");
            }
            in_span("test.inner", || std::hint::black_box(7));
        }
        set_tracing(false);
        let (events, dropped) = take_events();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 3);
        let outer = events.iter().find(|e| e.name == "test.outer").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.attrs, vec![("n", AttrValue::U64(2))]);
        for inner in events.iter().filter(|e| e.name == "test.inner") {
            assert_eq!(inner.parent, Some(outer.id));
            assert_eq!(inner.depth, 1);
            assert!(inner.start_ns >= outer.start_ns);
            assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        }
        let hists = crate::hist::histograms_snapshot();
        let inner_hist = hists.iter().find(|(n, _)| *n == "test.inner").unwrap();
        assert_eq!(inner_hist.1.count(), 2);
        let tree = render_tree(&events);
        assert!(tree.contains("test.outer"));
        assert!(tree.contains("  test.inner"));
        assert!(tree.contains("what=payload"));
    }

    #[test]
    fn worker_thread_spans_share_the_histogram_registry() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| in_span("test.worker", || std::hint::black_box(1)));
            }
        });
        in_span("test.worker", || std::hint::black_box(1));
        set_tracing(false);
        let (events, _) = take_events();
        let workers: Vec<_> = events.iter().filter(|e| e.name == "test.worker").collect();
        assert_eq!(workers.len(), 3);
        // Spawned threads got distinct indices and root spans.
        assert!(workers.iter().all(|e| e.parent.is_none()));
        let hists = crate::hist::histograms_snapshot();
        let h = hists.iter().find(|(n, _)| *n == "test.worker").unwrap();
        assert_eq!(h.1.count(), 3);
    }

    #[test]
    fn collector_cap_drops_whole_spans() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        // Fill the collector artificially rather than burning 65k spans.
        {
            let mut c = COLLECTOR.lock().unwrap();
            let filler = SpanEvent {
                id: u64::MAX,
                parent: None,
                name: "test.filler",
                start_ns: 0,
                dur_ns: 0,
                thread: 1,
                depth: 0,
                attrs: Vec::new(),
            };
            c.events.resize(MAX_EVENTS, filler);
        }
        in_span("test.capped", || ());
        set_tracing(false);
        let (events, dropped) = take_events();
        assert_eq!(events.len(), MAX_EVENTS);
        assert_eq!(dropped, 1);
        assert!(events.iter().all(|e| e.name != "test.capped"));
    }
}

//! The durability flight recorder: a bounded, mutex-sharded ring buffer
//! of structured events that is *always on* — unlike span tracing, which
//! is opt-in — so that after a crash, a recovery, or a fault injection
//! there is a record of what the durability machinery was doing, in
//! order, without anyone having turned anything on first.
//!
//! Events are small: a process-wide sequence number, a nanosecond offset
//! from the journal epoch, a [`Severity`], a static `kind` string
//! (`wal.append`, `ckpt.decision`, `recover.replay`, …) and a short list
//! of typed attributes (reusing [`AttrValue`] from the span layer). The
//! ring is sharded by thread across [`JOURNAL_SHARDS`] mutexes; each
//! event is inserted whole under one shard lock, so concurrent writers
//! can never tear or interleave an event. When a shard is full the
//! oldest event in that shard is overwritten (and counted) — a flight
//! recorder keeps the most recent history, not the first.
//!
//! The record path costs one atomic fetch-add (the sequence number), one
//! monotonic-clock read, and one rarely-contended mutex push — tens of
//! nanoseconds, cheap enough to leave in the WAL commit path.
//!
//! Dumps are JSONL (one event per line, first line a `journal.meta`
//! summary): [`dump_env`] writes the current contents to the file named
//! by `RIDL_JOURNAL_JSONL`, recovery calls it when a store is reopened,
//! and [`install_panic_hook`] chains a hook that dumps on panic (to the
//! env file when set, otherwise a short tail to stderr).

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::sink::json_escape;
use crate::span::AttrValue;

/// Event severity, ordered: `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// High-volume operational detail (per-commit WAL appends).
    Debug,
    /// Notable decisions (checkpoint kind chosen, recovery steps).
    Info,
    /// Recoverable anomalies (torn tail discarded, WAL rewind).
    Warn,
    /// Durability failures (WAL poisoned, checkpoint failed).
    Error,
}

impl Severity {
    /// The lowercase name used in dumps and CLI filters.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses a severity name (as printed by [`Severity::name`]).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// One recorded flight-recorder event.
#[derive(Clone, Debug)]
pub struct JournalEvent {
    /// Process-wide sequence number (1-based, never reused): the total
    /// order across shards.
    pub seq: u64,
    /// Nanoseconds since the journal epoch (first journal activity).
    pub t_ns: u64,
    /// Event severity.
    pub severity: Severity,
    /// Static event kind, dot-namespaced (`wal.fsync`, `ckpt.decision`).
    pub kind: &'static str,
    /// Typed attributes, inserted atomically with the event.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Number of ring shards. Threads hash onto shards, so writers on
/// different shards never contend.
pub const JOURNAL_SHARDS: usize = 8;

/// Events retained per shard; total capacity is
/// `JOURNAL_SHARDS * SHARD_CAPACITY`.
pub const SHARD_CAPACITY: usize = 512;

struct Shard {
    events: VecDeque<JournalEvent>,
    overwritten: u64,
}

impl Shard {
    const fn new() -> Self {
        Shard {
            events: VecDeque::new(),
            overwritten: 0,
        }
    }
}

static SHARDS: [Mutex<Shard>; JOURNAL_SHARDS] = [
    Mutex::new(Shard::new()),
    Mutex::new(Shard::new()),
    Mutex::new(Shard::new()),
    Mutex::new(Shard::new()),
    Mutex::new(Shard::new()),
    Mutex::new(Shard::new()),
    Mutex::new(Shard::new()),
    Mutex::new(Shard::new()),
];

static SEQ: AtomicU64 = AtomicU64::new(1);
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn my_shard() -> usize {
    MY_SHARD.with(|c| {
        let mut idx = c.get();
        if idx == usize::MAX {
            idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % JOURNAL_SHARDS;
            c.set(idx);
        }
        idx
    })
}

/// Records one event: sequence number, timestamp, and attributes are
/// captured and inserted whole under a single shard lock, so a reader
/// never observes a torn event. When the shard is full the oldest event
/// is overwritten and counted (see [`overwritten`]).
pub fn record(severity: Severity, kind: &'static str, attrs: Vec<(&'static str, AttrValue)>) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let t_ns = u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX);
    let event = JournalEvent {
        seq,
        t_ns,
        severity,
        kind,
        attrs,
    };
    let mut shard = SHARDS[my_shard()].lock().expect("journal shard poisoned");
    if shard.events.len() >= SHARD_CAPACITY {
        shard.events.pop_front();
        shard.overwritten += 1;
        crate::metrics().journal_overwritten.inc();
    }
    shard.events.push_back(event);
    crate::metrics().journal_events.inc();
}

/// Copies the journal without draining it: all retained events merged
/// across shards in sequence order, plus the total count of events
/// overwritten at capacity.
pub fn snapshot_events() -> (Vec<JournalEvent>, u64) {
    let mut all = Vec::new();
    let mut overwritten = 0;
    for shard in &SHARDS {
        let s = shard.lock().expect("journal shard poisoned");
        all.extend(s.events.iter().cloned());
        overwritten += s.overwritten;
    }
    all.sort_by_key(|e| e.seq);
    (all, overwritten)
}

/// Drains the journal: like [`snapshot_events`] but the ring (and the
/// overwrite counts) are reset.
pub fn take_events() -> (Vec<JournalEvent>, u64) {
    let mut all = Vec::new();
    let mut overwritten = 0;
    for shard in &SHARDS {
        let mut s = shard.lock().expect("journal shard poisoned");
        all.extend(std::mem::take(&mut s.events));
        overwritten += s.overwritten;
        s.overwritten = 0;
    }
    all.sort_by_key(|e| e.seq);
    (all, overwritten)
}

/// Clears the ring and the overwrite counts.
pub fn clear() {
    for shard in &SHARDS {
        let mut s = shard.lock().expect("journal shard poisoned");
        s.events.clear();
        s.overwritten = 0;
    }
}

/// Total events overwritten at capacity since the last clear/drain.
pub fn overwritten() -> u64 {
    SHARDS
        .iter()
        .map(|s| s.lock().expect("journal shard poisoned").overwritten)
        .sum()
}

fn attr_json(v: &AttrValue) -> String {
    match v {
        AttrValue::Str(s) => format!("\"{}\"", json_escape(s)),
        AttrValue::U64(n) => n.to_string(),
        AttrValue::I64(n) => n.to_string(),
        AttrValue::Bool(b) => b.to_string(),
    }
}

/// Renders one event as a single JSON line (no trailing newline).
pub fn event_json(e: &JournalEvent) -> String {
    let mut out = format!(
        "{{\"seq\":{},\"t_ns\":{},\"sev\":\"{}\",\"kind\":\"{}\"",
        e.seq,
        e.t_ns,
        e.severity.name(),
        json_escape(e.kind)
    );
    if !e.attrs.is_empty() {
        out.push_str(",\"attrs\":{");
        for (i, (k, v)) in e.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(k), attr_json(v)));
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Renders events as JSONL: a leading `journal.meta` line carrying the
/// retained/overwritten counts, then one line per event in sequence
/// order.
pub fn to_jsonl(events: &[JournalEvent], overwritten: u64) -> String {
    let mut out = format!(
        "{{\"seq\":0,\"t_ns\":0,\"sev\":\"info\",\"kind\":\"journal.meta\",\"attrs\":{{\"events\":{},\"overwritten\":{overwritten}}}}}\n",
        events.len()
    );
    for e in events {
        out.push_str(&event_json(e));
        out.push('\n');
    }
    out
}

/// Writes the current journal contents (without draining) as JSONL to
/// `path`, replacing any previous dump — each dump is a complete
/// snapshot, so the last one written wins.
pub fn dump_to(path: &str) -> std::io::Result<()> {
    let (events, overwritten) = snapshot_events();
    std::fs::write(path, to_jsonl(&events, overwritten))
}

/// Dumps the journal to the file named by `RIDL_JOURNAL_JSONL`, if set.
/// Returns the path written. Reports I/O errors on stderr rather than
/// panicking — a failed dump must never take down the engine.
pub fn dump_env() -> Option<String> {
    let path = std::env::var("RIDL_JOURNAL_JSONL").ok()?;
    if path.is_empty() {
        return None;
    }
    match dump_to(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("ridl-obs: cannot write journal {path}: {e}");
            None
        }
    }
}

/// Installs a panic hook (once per process, chaining any existing hook)
/// that dumps the journal: to the `RIDL_JOURNAL_JSONL` file when set,
/// otherwise a short tail of the most recent events to stderr — the
/// flight recorder's whole purpose is to still be readable after the
/// crash it just witnessed.
pub fn install_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            previous(info);
            match dump_env() {
                Some(path) => eprintln!("ridl-obs: journal dumped to {path}"),
                None => {
                    let (events, overwritten) = snapshot_events();
                    if !events.is_empty() {
                        let tail = events.len().saturating_sub(32);
                        eprintln!(
                            "ridl-obs: journal tail ({} of {} events, {} overwritten):",
                            events.len() - tail,
                            events.len(),
                            overwritten
                        );
                        for e in &events[tail..] {
                            eprintln!("{}", event_json(e));
                        }
                    }
                }
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is process-global; journal tests serialise on one lock so
    // they see only their own events.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn events_record_in_order_with_attrs() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear();
        record(Severity::Info, "test.alpha", vec![("n", AttrValue::U64(1))]);
        record(
            Severity::Warn,
            "test.beta",
            vec![
                ("why", AttrValue::Str("tail".into())),
                ("b", AttrValue::Bool(true)),
            ],
        );
        let (events, overwritten) = snapshot_events();
        assert_eq!(overwritten, 0);
        assert_eq!(events.len(), 2);
        assert!(events[0].seq < events[1].seq);
        assert_eq!(events[0].kind, "test.alpha");
        assert_eq!(events[0].severity, Severity::Info);
        assert_eq!(events[1].attrs.len(), 2);
        assert!(events[0].t_ns <= events[1].t_ns);
        // Snapshot did not drain.
        assert_eq!(snapshot_events().0.len(), 2);
        let (drained, _) = take_events();
        assert_eq!(drained.len(), 2);
        assert!(snapshot_events().0.is_empty());
    }

    #[test]
    fn ring_wraps_keeping_the_most_recent_events() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear();
        // Single-threaded, so everything lands in one shard: overflow it.
        let total = SHARD_CAPACITY + 100;
        let first_seq = SEQ.load(Ordering::Relaxed);
        for i in 0..total {
            record(
                Severity::Debug,
                "test.wrap",
                vec![("i", AttrValue::U64(i as u64))],
            );
        }
        let (events, overwritten) = snapshot_events();
        assert_eq!(events.len(), SHARD_CAPACITY);
        assert_eq!(overwritten, 100);
        // The survivors are exactly the newest SHARD_CAPACITY events, in
        // order, with contiguous sequence numbers.
        for (j, e) in events.iter().enumerate() {
            assert_eq!(e.seq, first_seq + 100 + j as u64);
            assert_eq!(e.attrs[0].1, AttrValue::U64(100 + j as u64));
        }
        clear();
        assert_eq!(overwritten_count_is_reset(), 0);
    }

    fn overwritten_count_is_reset() -> u64 {
        overwritten()
    }

    #[test]
    fn concurrent_writers_never_tear_events() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear();
        const WRITERS: usize = 8;
        const PER_WRITER: usize = 200;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        record(
                            Severity::Info,
                            "test.stress",
                            vec![
                                ("writer", AttrValue::U64(w as u64)),
                                ("i", AttrValue::U64(i as u64)),
                                ("tag", AttrValue::U64((w * PER_WRITER + i) as u64)),
                            ],
                        );
                    }
                });
            }
        });
        let (events, overwritten) = take_events();
        assert_eq!(
            events.len() as u64 + overwritten,
            (WRITERS * PER_WRITER) as u64
        );
        // Every event is whole: all three attrs present and mutually
        // consistent (tag == writer*PER_WRITER + i), and sequence numbers
        // are unique and sorted.
        let mut seen = std::collections::HashSet::new();
        let mut last_seq = 0;
        for e in &events {
            assert!(e.seq > last_seq, "events not in seq order");
            last_seq = e.seq;
            assert_eq!(e.attrs.len(), 3);
            let w = match e.attrs[0].1 {
                AttrValue::U64(v) => v,
                _ => panic!("torn attr"),
            };
            let i = match e.attrs[1].1 {
                AttrValue::U64(v) => v,
                _ => panic!("torn attr"),
            };
            let tag = match e.attrs[2].1 {
                AttrValue::U64(v) => v,
                _ => panic!("torn attr"),
            };
            assert_eq!(tag, w * PER_WRITER as u64 + i, "interleaved event attrs");
            assert!(seen.insert(tag), "duplicate event");
        }
        // Per-writer order is preserved (seq order implies program order
        // within each thread).
        let mut per_writer: Vec<Vec<u64>> = vec![Vec::new(); WRITERS];
        for e in &events {
            let (AttrValue::U64(w), AttrValue::U64(i)) = (&e.attrs[0].1, &e.attrs[1].1) else {
                unreachable!()
            };
            per_writer[*w as usize].push(*i);
        }
        for list in &per_writer {
            assert!(list.windows(2).all(|p| p[0] < p[1]), "writer order lost");
        }
    }

    #[test]
    fn jsonl_dump_shape() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear();
        record(
            Severity::Error,
            "test.dump",
            vec![("msg", AttrValue::Str("a \"b\"".into()))],
        );
        let (events, ov) = snapshot_events();
        let text = to_jsonl(&events, ov);
        let mut lines = text.lines();
        let meta = lines.next().unwrap();
        assert!(meta.contains("\"kind\":\"journal.meta\""));
        assert!(meta.contains("\"events\":1"));
        let line = lines.next().unwrap();
        assert!(line.contains("\"sev\":\"error\""));
        assert!(line.contains("\"kind\":\"test.dump\""));
        assert!(line.contains("\"msg\":\"a \\\"b\\\"\""));
        assert!(lines.next().is_none());
        clear();
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        const KINDS: [&str; 4] = ["test.p.a", "test.p.b", "test.p.c", "test.p.d"];

        proptest! {
            /// Any single-threaded record sequence keeps exactly the
            /// newest `SHARD_CAPACITY` events, in order, and accounts
            /// for every overwritten one.
            #[test]
            fn ring_retention_is_exact(n in 0usize..1500, kind_idx in 0usize..4) {
                let _guard = TEST_LOCK.lock().unwrap();
                clear();
                let kind = KINDS[kind_idx];
                for i in 0..n {
                    record(Severity::Debug, kind, vec![("i", AttrValue::U64(i as u64))]);
                }
                let (events, overwritten) = take_events();
                let kept = n.min(SHARD_CAPACITY);
                prop_assert_eq!(events.len(), kept);
                prop_assert_eq!(overwritten, (n - kept) as u64);
                for (j, e) in events.iter().enumerate() {
                    prop_assert_eq!(e.kind, kind);
                    prop_assert_eq!(&e.attrs[0].1, &AttrValue::U64((n - kept + j) as u64));
                }
                prop_assert!(events.windows(2).all(|p| p[0].seq + 1 == p[1].seq));
            }

            /// JSONL rendering is one well-delimited line per event for
            /// arbitrary (escape-needing) attribute strings.
            #[test]
            fn jsonl_lines_are_well_delimited(s in "\\PC*", n in 0u64..1000) {
                let _guard = TEST_LOCK.lock().unwrap();
                clear();
                record(
                    Severity::Warn,
                    "test.p.json",
                    vec![("s", AttrValue::Str(s)), ("n", AttrValue::U64(n))],
                );
                let (events, ov) = take_events();
                let text = to_jsonl(&events, ov);
                let lines: Vec<&str> = text.lines().collect();
                prop_assert_eq!(lines.len(), 2);
                for line in &lines {
                    prop_assert!(line.starts_with('{') && line.ends_with('}'));
                    // Escaping keeps each event on one line with no raw
                    // control characters.
                    prop_assert!(!line.chars().any(|c| c.is_control()));
                }
                prop_assert!(lines[1].contains("\"kind\":\"test.p.json\""));
                prop_assert!(lines[1].contains(&format!("\"n\":{n}")));
            }
        }
    }

    #[test]
    fn severity_names_round_trip() {
        for sev in [
            Severity::Debug,
            Severity::Info,
            Severity::Warn,
            Severity::Error,
        ] {
            assert_eq!(Severity::parse(sev.name()), Some(sev));
        }
        assert_eq!(Severity::parse("loud"), None);
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Warn < Severity::Error);
    }
}

//! # ridl-obs — enforcement observability
//!
//! RIDL\*'s value proposition is that the engineer can *see* what the
//! constraint machinery is doing: the paper's RIDL-A/RIDL-M modules report
//! every check and transformation step. After the engine's enforcement
//! went incremental, batched and parallel, its fast paths became invisible
//! — which validation mode ran, which constraint kind dominated, how many
//! index probes a statement cost. This crate is the measuring layer those
//! paths report into:
//!
//! * [`Counter`] — always-on relaxed-atomic counters, a handful of
//!   nanoseconds per increment, safe to leave in release hot paths;
//! * [`EnforcementMetrics`] — the process-wide registry of named counters
//!   plus per-[`ConstraintClass`] check/violation/time accounts, read
//!   through [`snapshot`] and diffed with [`MetricsSnapshot::since`] to
//!   attribute cost to a single statement;
//! * the **detail gate** ([`set_detail`]/[`detail_enabled`]) — per-probe
//!   counters and monotonic-clock timers ([`Stopwatch`]) only run when a
//!   sink is attached or detail is explicitly enabled, so the uninstrumented
//!   hot path pays one predictable branch, not two clock reads per check;
//! * [`MetricsSink`] — a pluggable consumer of discrete metric events
//!   (statement completed, validator worker panicked, …); [`JsonlSink`]
//!   appends them as JSON lines, and [`init_from_env`] installs one when
//!   `RIDL_METRICS_JSONL` names a file;
//! * [`export`] — JSONL snapshot export sharing the
//!   `CRITERION_SUMMARY_JSON` file format/flow, so benches and CI record
//!   metric snapshots alongside timings;
//! * [`span`] — hierarchical span tracing: thread-local nesting,
//!   typed attributes, a bounded global collector, a span-tree renderer,
//!   and Chrome trace-event export gated on `RIDL_TRACE_JSON`
//!   ([`export::chrome_trace`]);
//! * [`hist`] — log-bucketed latency histograms (p50/p90/p99/max per
//!   span name), mergeable across threads so parallel-validator workers
//!   aggregate into one account;
//! * [`journal`] — the durability flight recorder: a bounded,
//!   mutex-sharded ring of structured events (WAL appends, checkpoint
//!   decisions, recovery steps, fault injections) that is always on and
//!   dumped as JSONL on panic, on recovery, or via `RIDL_JOURNAL_JSONL`.
//!
//! The crate depends on nothing but `std`, so every layer (relational,
//! engine, transform, core, benches) can report into it without cycles.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod hist;
pub mod journal;
pub mod sink;
pub mod span;

pub use export::{
    append_summary_snapshot, chrome_trace, emit_snapshot, init_tracing_from_env, snapshot_jsonl,
    validate_chrome_trace, write_chrome_trace, write_chrome_trace_env, ChromeTraceStats,
};
pub use hist::{histograms_snapshot, render_histograms, summary_named, HistSummary, Histogram};
pub use journal::{JournalEvent, Severity};
pub use sink::{
    attach_sink, detach_sink, emit, init_from_env, sink_attached, JsonlSink, MemorySink,
    MetricsSink,
};
pub use span::{
    enter, in_span, render_tree, set_tracing, tracing_enabled, AttrValue, Span, SpanEvent,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// An always-on counter: one relaxed atomic add per increment. Cheap
/// enough for statement-granularity accounting on release hot paths.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (const, so counters can live in statics).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, pinning the counter at `u64::MAX` instead of wrapping —
    /// for nanosecond accounts fed by long-running timers, where a silent
    /// wrap would turn an over-full account into a tiny one.
    #[inline]
    pub fn add_saturating(&self, n: u64) {
        let prev = self.0.fetch_add(n, Ordering::Relaxed);
        if prev.checked_add(n).is_none() {
            self.0.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Raises the counter to `n` if it is below (a high-water gauge).
    #[inline]
    pub fn raise_to(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The metrics taxonomy's constraint classes: every relational constraint
/// kind (and the structural checks) maps onto one of these, so per-class
/// cost accounts stay stable as the schema vocabulary grows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConstraintClass {
    /// Arity / NOT NULL / DOMAIN structural checks.
    Structure,
    /// Primary and candidate keys.
    Key,
    /// Foreign keys (both directions).
    ForeignKey,
    /// Occurrence-frequency constraints.
    Frequency,
    /// `C_EQ$` equality-view constraints.
    EqualityView,
    /// `C_SS$` subset-view constraints.
    SubsetView,
    /// `C_EX$` exclusion-view constraints.
    ExclusionView,
    /// `C_TU$` total-union-view constraints.
    TotalUnionView,
    /// `C_CEQ$` conditional-equality (indicator) constraints.
    ConditionalEquality,
    /// Row-local kinds (`C_DE$`, `C_EE$`, `C_VAL$`, `C_CX$`).
    RowLocal,
}

impl ConstraintClass {
    /// Every class, in reporting order.
    pub const ALL: [ConstraintClass; 10] = [
        ConstraintClass::Structure,
        ConstraintClass::Key,
        ConstraintClass::ForeignKey,
        ConstraintClass::Frequency,
        ConstraintClass::EqualityView,
        ConstraintClass::SubsetView,
        ConstraintClass::ExclusionView,
        ConstraintClass::TotalUnionView,
        ConstraintClass::ConditionalEquality,
        ConstraintClass::RowLocal,
    ];

    /// The class's metric name segment.
    pub fn name(self) -> &'static str {
        match self {
            ConstraintClass::Structure => "structure",
            ConstraintClass::Key => "key",
            ConstraintClass::ForeignKey => "foreign_key",
            ConstraintClass::Frequency => "frequency",
            ConstraintClass::EqualityView => "equality_view",
            ConstraintClass::SubsetView => "subset_view",
            ConstraintClass::ExclusionView => "exclusion_view",
            ConstraintClass::TotalUnionView => "total_union_view",
            ConstraintClass::ConditionalEquality => "conditional_equality",
            ConstraintClass::RowLocal => "row_local",
        }
    }

    /// Index into per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The static span name enforcement checks of this class record
    /// under (`validate.<class>`), usable as a histogram key.
    pub fn span_name(self) -> &'static str {
        match self {
            ConstraintClass::Structure => "validate.structure",
            ConstraintClass::Key => "validate.key",
            ConstraintClass::ForeignKey => "validate.foreign_key",
            ConstraintClass::Frequency => "validate.frequency",
            ConstraintClass::EqualityView => "validate.equality_view",
            ConstraintClass::SubsetView => "validate.subset_view",
            ConstraintClass::ExclusionView => "validate.exclusion_view",
            ConstraintClass::TotalUnionView => "validate.total_union_view",
            ConstraintClass::ConditionalEquality => "validate.conditional_equality",
            ConstraintClass::RowLocal => "validate.row_local",
        }
    }
}

/// Check/violation/time account for one [`ConstraintClass`].
#[derive(Debug, Default)]
pub struct KindStats {
    /// Constraint checks run (detail-gated on per-op hot paths).
    pub checks: Counter,
    /// Violations those checks reported.
    pub violations: Counter,
    /// Nanoseconds spent checking (only accumulated while detail is on).
    pub nanos: Counter,
}

impl KindStats {
    const fn new() -> Self {
        Self {
            checks: Counter::new(),
            violations: Counter::new(),
            nanos: Counter::new(),
        }
    }
}

macro_rules! enforcement_counters {
    ($($field:ident => $name:literal),+ $(,)?) => {
        /// The process-wide fixed counter registry. Fields group by layer:
        /// `engine.*` statement accounting, `index.*` maintenance and
        /// probes, `validate.*` validator strategy counts, `transform.*`
        /// mapper activity, `wal.*` durability (appends, fsyncs,
        /// checkpoints, recovery replay), `server.*` the multi-session
        /// front-end (admissions, request mix, commit batching).
        #[derive(Debug)]
        pub struct EnforcementMetrics {
            /// Per-constraint-class check/violation/time accounts.
            pub per_kind: [KindStats; 10],
            $(
                #[doc = concat!("`", $name, "`.")]
                pub $field: Counter,
            )+
        }

        /// The names of the fixed counters, aligned with
        /// [`MetricsSnapshot::counters`].
        pub const COUNTER_NAMES: [&str; enforcement_counters!(@count $($field)+)] =
            [$($name),+];

        impl EnforcementMetrics {
            const fn new() -> Self {
                Self {
                    per_kind: [
                        KindStats::new(), KindStats::new(), KindStats::new(),
                        KindStats::new(), KindStats::new(), KindStats::new(),
                        KindStats::new(), KindStats::new(), KindStats::new(),
                        KindStats::new(),
                    ],
                    $($field: Counter::new(),)+
                }
            }

            fn counter_values(&self) -> [u64; COUNTER_NAMES.len()] {
                [$(self.$field.get()),+]
            }
        }
    };
    (@count $($x:ident)+) => { [$(enforcement_counters!(@one $x)),+].len() };
    (@one $x:ident) => { () };
}

enforcement_counters! {
    statements => "engine.statements",
    statements_delta => "engine.statements.delta",
    statements_full => "engine.statements.full",
    statements_deferred => "engine.statements.deferred",
    statements_aggregate => "engine.statements.aggregate",
    reverts => "engine.reverts",
    reverted_ops => "engine.reverted_ops",
    undo_high_water => "engine.undo_high_water",
    batches => "engine.batches",
    batch_ops => "engine.batch_ops",
    bulk_loads => "engine.bulk_loads",
    bulk_rows => "engine.bulk_rows",
    explains => "engine.explains",
    key_probes => "index.key_probes",
    sel_probes => "index.sel_probes",
    index_inserts => "index.inserts",
    index_removes => "index.removes",
    index_builds => "index.builds",
    index_charge_rows => "index.charge_rows",
    parallel_validations => "validate.parallel_runs",
    sequential_validations => "validate.sequential_runs",
    worker_panics => "validate.worker_panics",
    transform_firings => "transform.firings",
    wal_appends => "wal.appends",
    wal_append_bytes => "wal.append_bytes",
    wal_fsyncs => "wal.fsyncs",
    wal_commits => "wal.commits",
    wal_checkpoints => "wal.checkpoints",
    wal_recoveries => "wal.recoveries",
    wal_replayed_ops => "wal.recovery.replayed_ops",
    wal_discarded_bytes => "wal.recovery.discarded_bytes",
    span_dropped => "span.dropped",
    journal_events => "journal.events",
    journal_overwritten => "journal.overwritten",
    snapshots_taken => "engine.snapshots",
    server_sessions => "server.sessions",
    server_sessions_peak => "server.sessions.peak",
    server_admission_rejects => "server.admission_rejects",
    server_requests => "server.requests",
    server_reads => "server.reads",
    server_writes => "server.writes",
    server_busy_rejects => "server.busy_rejects",
    server_proto_errors => "server.proto_errors",
    server_commit_batches => "server.commit_batches",
    server_commit_batch_ops => "server.commit_batch_ops",
}

static METRICS: EnforcementMetrics = EnforcementMetrics::new();

/// The process-wide metrics registry.
#[inline]
pub fn metrics() -> &'static EnforcementMetrics {
    &METRICS
}

/// Point-in-time reading of one [`ConstraintClass`] account.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KindSnapshot {
    /// Checks run.
    pub checks: u64,
    /// Violations reported.
    pub violations: u64,
    /// Nanoseconds spent (zero unless detail was on).
    pub nanos: u64,
}

/// Point-in-time reading of every fixed counter; diff two snapshots with
/// [`MetricsSnapshot::since`] to attribute activity to one statement or
/// one run. Fixed-size (no allocation), so taking one is cheap.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MetricsSnapshot {
    /// Per-class accounts, indexed by [`ConstraintClass::index`].
    pub per_kind: [KindSnapshot; 10],
    /// Fixed counter values, aligned with [`COUNTER_NAMES`].
    pub counters: [u64; COUNTER_NAMES.len()],
}

/// Reads every counter.
pub fn snapshot() -> MetricsSnapshot {
    let mut per_kind = [KindSnapshot::default(); 10];
    for class in ConstraintClass::ALL {
        let s = &METRICS.per_kind[class.index()];
        per_kind[class.index()] = KindSnapshot {
            checks: s.checks.get(),
            violations: s.violations.get(),
            nanos: s.nanos.get(),
        };
    }
    MetricsSnapshot {
        per_kind,
        counters: METRICS.counter_values(),
    }
}

impl MetricsSnapshot {
    /// The activity between `earlier` and `self` (saturating, so a counter
    /// reset elsewhere cannot underflow).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for i in 0..out.per_kind.len() {
            out.per_kind[i] = KindSnapshot {
                checks: self.per_kind[i]
                    .checks
                    .saturating_sub(earlier.per_kind[i].checks),
                violations: self.per_kind[i]
                    .violations
                    .saturating_sub(earlier.per_kind[i].violations),
                nanos: self.per_kind[i]
                    .nanos
                    .saturating_sub(earlier.per_kind[i].nanos),
            };
        }
        for i in 0..out.counters.len() {
            out.counters[i] = self.counters[i].saturating_sub(earlier.counters[i]);
        }
        out
    }

    /// The value of a fixed counter by its metric name.
    pub fn counter(&self, name: &str) -> u64 {
        COUNTER_NAMES
            .iter()
            .position(|n| *n == name)
            .map(|i| self.counters[i])
            .unwrap_or(0)
    }

    /// The account of one constraint class.
    pub fn kind(&self, class: ConstraintClass) -> KindSnapshot {
        self.per_kind[class.index()]
    }
}

// ---- the detail gate ----

static DETAIL: AtomicBool = AtomicBool::new(false);

/// Turns detailed instrumentation (per-probe counters, per-check timers)
/// on or off. Attaching a sink turns it on automatically.
pub fn set_detail(on: bool) {
    DETAIL.store(on, Ordering::Relaxed);
}

/// Whether detailed instrumentation is on: one relaxed load, the only cost
/// the uninstrumented hot path pays per probe.
#[inline]
pub fn detail_enabled() -> bool {
    DETAIL.load(Ordering::Relaxed)
}

/// A monotonic-clock stopwatch that reads the clock only while
/// [`detail_enabled`] — free (a `None`) otherwise.
#[derive(Debug)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Starts timing if detail is on.
    #[inline]
    pub fn start() -> Self {
        Self(detail_enabled().then(Instant::now))
    }

    /// Elapsed nanoseconds, or zero when timing was off. Saturates at
    /// `u64::MAX` (~584 years) instead of silently truncating the `u128`
    /// reading — a wrap would report a huge elapsed time as a tiny one.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.0
            .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }

    /// Adds the elapsed time to `account` (no-op when timing was off),
    /// saturating rather than wrapping on overflow.
    #[inline]
    pub fn record(&self, account: &Counter) {
        if self.0.is_some() {
            account.add_saturating(self.elapsed_ns());
        }
    }
}

// ---- labeled counters (cold paths: transform rules, ad-hoc events) ----

use std::collections::BTreeMap;
use std::sync::Mutex;

static LABELS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

/// Adds `n` to a dynamically named counter (a mutex-guarded map — for cold
/// paths like transformation-rule firings, not per-row work).
pub fn count_label(name: &str, n: u64) {
    let mut map = LABELS.lock().expect("label registry poisoned");
    *map.entry(name.to_owned()).or_insert(0) += n;
}

/// All labeled counters, sorted by name.
pub fn labels_snapshot() -> Vec<(String, u64)> {
    LABELS
        .lock()
        .expect("label registry poisoned")
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_snapshots_diff() {
        let before = snapshot();
        metrics().statements.add(3);
        metrics().per_kind[ConstraintClass::Key.index()]
            .checks
            .add(2);
        let delta = snapshot().since(&before);
        assert_eq!(delta.counter("engine.statements"), 3);
        assert_eq!(delta.kind(ConstraintClass::Key).checks, 2);
        assert_eq!(delta.counter("no.such.metric"), 0);
    }

    #[test]
    fn high_water_gauge_only_raises() {
        let c = Counter::new();
        c.raise_to(10);
        c.raise_to(4);
        assert_eq!(c.get(), 10);
        c.raise_to(11);
        assert_eq!(c.get(), 11);
    }

    #[test]
    fn stopwatch_is_free_when_detail_off() {
        set_detail(false);
        let sw = Stopwatch::start();
        assert_eq!(sw.elapsed_ns(), 0);
        set_detail(true);
        let sw = Stopwatch::start();
        std::hint::black_box(0u64);
        let c = Counter::new();
        sw.record(&c);
        set_detail(false);
    }

    #[test]
    fn counter_add_saturates_at_max() {
        let c = Counter::new();
        c.add_saturating(u64::MAX - 1);
        c.add_saturating(5);
        assert_eq!(c.get(), u64::MAX);
        c.add_saturating(1);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn since_clamps_concurrent_resets_to_zero() {
        // A snapshot taken "later" can read lower values if another
        // thread reset or replaced a counter; the diff must clamp to
        // zero, never underflow.
        let mut earlier = snapshot();
        earlier.counters[0] = u64::MAX;
        earlier.per_kind[0].nanos = u64::MAX;
        let diff = snapshot().since(&earlier);
        assert_eq!(diff.counters[0], 0);
        assert_eq!(diff.per_kind[0].nanos, 0);
    }

    #[test]
    fn labeled_counters_accumulate() {
        count_label("test.rule.alpha", 2);
        count_label("test.rule.alpha", 1);
        let labels = labels_snapshot();
        let v = labels
            .iter()
            .find(|(k, _)| k == "test.rule.alpha")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(v >= 3);
    }
}

//! The TCP front-end: listener, session registry, admission control and
//! graceful shutdown.
//!
//! One accepted connection = one session = two OS threads: a *reader*
//! that parses request lines and a *worker* that executes them and
//! writes responses. The reader feeds the worker through a bounded
//! channel sized to the per-session in-flight limit; a client that
//! pipelines past the limit gets an immediate `busy` error for the
//! overflowing request instead of unbounded buffering.
//!
//! Admission control happens at `accept`: past `max_sessions` the
//! connection is answered with one `busy` line and closed (a Warn
//! `session.reject` journal event plus the `server.admission_rejects`
//! counter — the bench asserts on both).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use ridl_engine::{Database, EngineError};
use ridl_obs::journal;
use ridl_obs::Severity;

use crate::json::{obj, Json};
use crate::pipeline::{spawn_committer, Core, JobKind};
use crate::proto::{
    encode_rows, engine_err_response, err_response, ok_response, parse_request, ErrorCode, Request,
    WriteOp,
};

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently admitted sessions; further connections are
    /// answered `busy` and closed.
    pub max_sessions: usize,
    /// Per-session pipelined-request limit; requests past it are answered
    /// `busy` without executing.
    pub max_inflight: usize,
    /// Commit-pipeline queue bound; writes submitted while it is full are
    /// answered `busy`.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_sessions: 64,
            max_inflight: 32,
            queue_depth: 1024,
        }
    }
}

struct Inner {
    core: Arc<Core>,
    cfg: ServerConfig,
    addr: SocketAddr,
    /// Stream handles of live sessions, for shutdown to unblock readers.
    sessions: Mutex<HashMap<u64, TcpStream>>,
    /// Worker/reader thread handles, joined at shutdown.
    threads: Mutex<Vec<JoinHandle<()>>>,
    next_session: AtomicU64,
    shutting_down: AtomicBool,
    /// Signalled when a client issues the `shutdown` command.
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
}

impl Inner {
    fn request_shutdown(&self) {
        *self.shutdown_requested.lock().expect("shutdown flag") = true;
        self.shutdown_cv.notify_all();
    }

    fn live_sessions(&self) -> usize {
        self.sessions.lock().expect("session registry").len()
    }
}

/// A running server. Dropping it without [`Server::shutdown`] aborts the
/// process-side threads unjoined; call `shutdown` for a clean stop.
pub struct Server {
    core: Arc<Core>,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    committer: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving `db`.
    pub fn start(db: Database, addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let core = Arc::new(Core::new(db, cfg.queue_depth));
        let committer = spawn_committer(core.clone());
        let inner = Arc::new(Inner {
            core: core.clone(),
            cfg,
            addr: bound,
            sessions: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
            next_session: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });
        journal::record(
            Severity::Info,
            "net.listen",
            vec![
                ("addr", bound.to_string().into()),
                ("max_sessions", cfg.max_sessions.into()),
            ],
        );
        let acceptor = inner.clone();
        let accept = std::thread::Builder::new()
            .name("ridl-accept".into())
            .spawn(move || accept_loop(&listener, &acceptor))?;
        Ok(Server {
            core,
            inner,
            accept: Some(accept),
            committer: Some(committer),
        })
    }

    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The highest commit sequence number assigned so far.
    pub fn commit_seq(&self) -> u64 {
        self.core.commit_seq()
    }

    /// Sessions currently admitted.
    pub fn session_count(&self) -> usize {
        self.inner.live_sessions()
    }

    /// Blocks until a client issues the `shutdown` protocol command.
    pub fn wait_shutdown_request(&self) {
        let mut requested = self.inner.shutdown_requested.lock().expect("shutdown flag");
        while !*requested {
            requested = self
                .inner
                .shutdown_cv
                .wait(requested)
                .expect("shutdown wait");
        }
    }

    /// Stops accepting, disconnects every session, drains the commit
    /// pipeline, flushes and (for durable stores) checkpoints, and
    /// returns the engine. The checkpoint is what makes a post-shutdown
    /// `ridl status` report `clean`.
    pub fn shutdown(mut self) -> Result<Database, EngineError> {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.inner.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // Unblock session readers and join the per-session threads.
        for (_, s) in self
            .inner
            .sessions
            .lock()
            .expect("session registry")
            .drain()
        {
            let _ = s.shutdown(Shutdown::Both);
        }
        let threads: Vec<_> = self
            .inner
            .threads
            .lock()
            .expect("thread registry")
            .drain(..)
            .collect();
        for t in threads {
            let _ = t.join();
        }
        // Drain whatever writes were accepted before the sessions closed.
        self.core.stop();
        if let Some(t) = self.committer.take() {
            let _ = t.join();
        }
        let settle = self.core.with_db(|db| {
            db.flush_wal()?;
            if db.is_durable() {
                db.checkpoint_full()?;
            }
            Ok::<(), EngineError>(())
        });
        journal::record(
            Severity::Info,
            "net.shutdown",
            vec![
                ("commit_seq", self.core.commit_seq().into()),
                ("clean", settle.is_ok().into()),
            ],
        );
        settle?;
        let Server { core, inner, .. } = self;
        drop(inner);
        match Arc::try_unwrap(core) {
            Ok(core) => Ok(core.into_db()),
            Err(_) => Err(EngineError::Io(
                "server threads still hold the engine".into(),
            )),
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let m = ridl_obs::metrics();
        if inner.live_sessions() >= inner.cfg.max_sessions {
            m.server_admission_rejects.inc();
            journal::record(
                Severity::Warn,
                "session.reject",
                vec![
                    ("live", inner.live_sessions().into()),
                    ("max", inner.cfg.max_sessions.into()),
                ],
            );
            let mut s = stream;
            let _ = s.write_all(
                format!(
                    "{}\n",
                    err_response(0, ErrorCode::Busy, "session limit reached")
                )
                .as_bytes(),
            );
            let _ = s.shutdown(Shutdown::Both);
            continue;
        }
        // Responses are complete lines; ship them immediately rather than
        // letting Nagle pair them with the client's delayed ACKs.
        let _ = stream.set_nodelay(true);
        let sid = inner.next_session.fetch_add(1, Ordering::SeqCst);
        let Ok(registered) = stream.try_clone() else {
            continue;
        };
        {
            let mut sessions = inner.sessions.lock().expect("session registry");
            sessions.insert(sid, registered);
            m.server_sessions.inc();
            m.server_sessions_peak.raise_to(sessions.len() as u64);
        }
        journal::record(
            Severity::Info,
            "session.connect",
            vec![
                ("sid", sid.into()),
                (
                    "peer",
                    stream
                        .peer_addr()
                        .map(|a| a.to_string())
                        .unwrap_or_default()
                        .into(),
                ),
            ],
        );
        let session_inner = inner.clone();
        let handle = std::thread::Builder::new()
            .name(format!("ridl-session-{sid}"))
            .spawn(move || session_threads(sid, stream, &session_inner));
        if let Ok(handle) = handle {
            inner.threads.lock().expect("thread registry").push(handle);
        }
    }
}

/// Runs the session: spawns the reader, executes requests in this (the
/// worker) thread, and unregisters on exit.
fn session_threads(sid: u64, stream: TcpStream, inner: &Arc<Inner>) {
    let writer = Arc::new(Mutex::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            inner
                .sessions
                .lock()
                .expect("session registry")
                .remove(&sid);
            return;
        }
    }));
    let (tx, rx) = mpsc::sync_channel::<(i64, Request)>(inner.cfg.max_inflight);
    let reader_writer = writer.clone();
    let reader = std::thread::Builder::new()
        .name(format!("ridl-read-{sid}"))
        .spawn(move || read_loop(stream, &tx, &reader_writer));

    let mut session = Session {
        sid,
        inner: inner.clone(),
        txn: None,
        requests: 0,
    };
    while let Ok((id, req)) = rx.recv() {
        let quit = matches!(req, Request::Shutdown);
        let line = session.handle(id, req);
        if write_line(&writer, &line).is_err() {
            break;
        }
        if quit {
            inner.request_shutdown();
        }
    }
    if let Ok(reader) = reader {
        // The reader exits when the stream closes; shutdown closes it for
        // us, and a client disconnect already ended it.
        let _ = reader.join();
    }
    inner
        .sessions
        .lock()
        .expect("session registry")
        .remove(&sid);
    journal::record(
        Severity::Info,
        "session.disconnect",
        vec![("sid", sid.into()), ("requests", session.requests.into())],
    );
}

/// Parses request lines and feeds the worker, answering `busy` itself
/// when the in-flight window is full and `proto` on parse errors.
fn read_loop(
    stream: TcpStream,
    tx: &mpsc::SyncSender<(i64, Request)>,
    writer: &Arc<Mutex<TcpStream>>,
) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match parse_request(trimmed) {
            Ok((id, req)) => match tx.try_send((id, req)) {
                Ok(()) => {}
                Err(mpsc::TrySendError::Full(_)) => {
                    ridl_obs::metrics().server_busy_rejects.inc();
                    if write_line(
                        writer,
                        &err_response(id, ErrorCode::Busy, "in-flight limit"),
                    )
                    .is_err()
                    {
                        return;
                    }
                }
                Err(mpsc::TrySendError::Disconnected(_)) => return,
            },
            Err((code, detail)) => {
                ridl_obs::metrics().server_proto_errors.inc();
                if write_line(writer, &err_response(0, code, &detail)).is_err() {
                    return;
                }
            }
        }
    }
}

fn write_line(writer: &Arc<Mutex<TcpStream>>, line: &str) -> std::io::Result<()> {
    let mut s = writer.lock().expect("session writer");
    s.write_all(line.as_bytes())?;
    s.write_all(b"\n")
}

struct Session {
    sid: u64,
    inner: Arc<Inner>,
    /// `Some(buffer)` while a server-side transaction is open.
    txn: Option<Vec<WriteOp>>,
    requests: u64,
}

impl Session {
    fn handle(&mut self, id: i64, req: Request) -> String {
        self.requests += 1;
        let m = ridl_obs::metrics();
        m.server_requests.inc();
        journal::record(
            Severity::Debug,
            "session.statement",
            vec![("sid", self.sid.into()), ("cmd", cmd_name(&req).into())],
        );
        match req {
            Request::Hello { client } => {
                journal::record(
                    Severity::Info,
                    "session.hello",
                    vec![
                        ("sid", self.sid.into()),
                        ("client", client.unwrap_or_default().into()),
                    ],
                );
                let snap = self.inner.core.current_snapshot();
                let tables = snap
                    .schema()
                    .tables
                    .iter()
                    .map(|t| Json::str(t.name.clone()))
                    .collect();
                let views = snap.view_names().into_iter().map(Json::str).collect();
                ok_response(
                    id,
                    [
                        ("proto", Json::Int(1)),
                        ("sid", Json::Int(self.sid as i64)),
                        ("schema", Json::str(snap.schema().name.clone())),
                        ("tables", Json::Arr(tables)),
                        ("views", Json::Arr(views)),
                    ],
                )
            }
            Request::Query(q) => self.read(id, |snap| {
                snap.select(&q).map(|rows| {
                    vec![
                        ("rows", encode_rows(&rows)),
                        ("version", Json::Int(snap.version() as i64)),
                    ]
                })
            }),
            Request::Explain(q) => self.read(id, |snap| {
                snap.explain(&q).map(|ex| {
                    let steps = ex
                        .steps
                        .iter()
                        .map(|s| {
                            obj([
                                ("op", Json::str(s.op)),
                                ("target", Json::str(s.target.clone())),
                                ("rows_out", Json::Int(s.rows_out as i64)),
                                ("detail", Json::str(s.detail.clone())),
                            ])
                        })
                        .collect();
                    vec![
                        ("steps", Json::Arr(steps)),
                        ("rows_out", Json::Int(ex.rows_out as i64)),
                    ]
                })
            }),
            Request::View { name } => self.read(id, |snap| {
                snap.select_view(&name).map(|rows| {
                    vec![
                        ("rows", encode_rows(&rows)),
                        ("version", Json::Int(snap.version() as i64)),
                    ]
                })
            }),
            Request::Write(op) => {
                ridl_obs::metrics().server_writes.inc();
                if let Some(buf) = self.txn.as_mut() {
                    buf.push(op);
                    return ok_response(id, [("buffered", Json::Bool(true))]);
                }
                self.submit(id, JobKind::Single(op))
            }
            Request::Begin => {
                if self.txn.is_some() {
                    return err_response(id, ErrorCode::Txn, "transaction already open");
                }
                self.txn = Some(Vec::new());
                ok_response(id, [])
            }
            Request::Commit => match self.txn.take() {
                None => err_response(id, ErrorCode::Txn, "no open transaction"),
                Some(ops) => {
                    ridl_obs::metrics().server_writes.inc();
                    self.submit(id, JobKind::Txn(ops))
                }
            },
            Request::Rollback => match self.txn.take() {
                None => err_response(id, ErrorCode::Txn, "no open transaction"),
                Some(ops) => ok_response(id, [("dropped", Json::Int(ops.len() as i64))]),
            },
            Request::Status => {
                let snap = self.inner.core.current_snapshot();
                ok_response(
                    id,
                    [
                        ("sessions", Json::Int(self.inner.live_sessions() as i64)),
                        (
                            "max_sessions",
                            Json::Int(self.inner.cfg.max_sessions as i64),
                        ),
                        ("commit_seq", Json::Int(self.inner.core.commit_seq() as i64)),
                        ("version", Json::Int(snap.version() as i64)),
                        ("rows", Json::Int(snap.num_rows() as i64)),
                    ],
                )
            }
            Request::Shutdown => ok_response(id, [("stopping", Json::Bool(true))]),
        }
    }

    /// Serves a read from the latest published snapshot, recording its
    /// latency in the always-on `server.read_ns` histogram (the "readers
    /// are never blocked by the writer" evidence).
    fn read(
        &self,
        id: i64,
        f: impl FnOnce(&ridl_engine::ReadSnapshot) -> Result<Vec<(&'static str, Json)>, EngineError>,
    ) -> String {
        ridl_obs::metrics().server_reads.inc();
        let start = Instant::now();
        let snap = self.inner.core.current_snapshot();
        let out = f(&snap);
        ridl_obs::hist::record_named(
            "server.read_ns",
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        match out {
            Ok(fields) => ok_response(id, fields),
            Err(e) => engine_err_response(id, &e),
        }
    }

    /// Submits a write job and waits for the committer's verdict.
    fn submit(&self, id: i64, kind: JobKind) -> String {
        match self.inner.core.submit(kind) {
            Err(detail) => err_response(id, ErrorCode::Busy, detail),
            Ok(rx) => match rx.recv() {
                Ok(Ok(c)) => ok_response(
                    id,
                    [
                        ("seq", Json::Int(c.seq as i64)),
                        ("changed", Json::Int(c.changed as i64)),
                    ],
                ),
                Ok(Err(e)) => engine_err_response(id, &e),
                Err(_) => err_response(id, ErrorCode::Shutdown, "committer stopped"),
            },
        }
    }
}

fn cmd_name(req: &Request) -> &'static str {
    match req {
        Request::Hello { .. } => "hello",
        Request::Query(_) => "query",
        Request::Explain(_) => "explain",
        Request::View { .. } => "view",
        Request::Write(WriteOp::Insert { .. }) => "insert",
        Request::Write(WriteOp::Delete { .. }) => "delete",
        Request::Write(WriteOp::Update { .. }) => "update",
        Request::Write(WriteOp::Batch { .. }) => "batch",
        Request::Begin => "begin",
        Request::Commit => "commit",
        Request::Rollback => "rollback",
        Request::Status => "status",
        Request::Shutdown => "shutdown",
    }
}

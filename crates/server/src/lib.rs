//! Concurrent multi-session server front-end for the RIDL* engine.
//!
//! The engine crate gives one process a single-handle `Database`; this
//! crate turns it into a shared service:
//!
//! * **Wire protocol** ([`proto`], [`json`]) — line-delimited JSON over
//!   TCP. One request object per line, one response per line, ids echoed
//!   back. Std-only: the parser/writer live in [`json`].
//! * **Snapshot reads** — every read statement runs against the latest
//!   published [`ridl_engine::ReadSnapshot`]; the copy-on-write
//!   `RelState` makes publication O(tables), so readers never block the
//!   writer and a long client transaction never blocks readers.
//! * **Serialized group-commit pipeline** ([`pipeline`]) — all writes
//!   funnel through one committer thread that batches concurrent
//!   sessions' statements into a single WAL fsync per batch.
//! * **Admission control** ([`server`]) — bounded sessions, bounded
//!   per-session in-flight requests, bounded commit queue; each limit
//!   rejects with an explicit `busy` error rather than queueing
//!   unboundedly.
//!
//! See DESIGN.md §13 for the protocol grammar and the pipeline
//! invariants.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod json;
pub(crate) mod pipeline;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use pipeline::Committed;
pub use server::{Server, ServerConfig};

//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response per line, each a JSON object. A
//! request carries a client-chosen `id` which the response echoes, so
//! clients may pipeline. The grammar (DESIGN.md §13):
//!
//! ```text
//! request  := {"id": n, "cmd": <cmd>, ...}
//! cmd      := "hello" | "query" | "explain" | "view" | "insert"
//!           | "delete" | "update" | "batch" | "begin" | "commit"
//!           | "rollback" | "status" | "shutdown"
//! response := {"id": n, "ok": true, ...} | {"id": n, "ok": false,
//!              "error": <code>, "detail": "..."}
//! ```
//!
//! Row values encode as JSON scalars where possible (`null` for NULL,
//! strings, integers, booleans) and as tagged one-field objects for the
//! rest: `{"num":[mantissa,scale]}`, `{"date":days}`, `{"entity":id}`.

use ridl_brm::{Decimal, Value};
use ridl_engine::{BatchOp, EngineError, Pred, Query};
use ridl_relational::Row;

use crate::json::{obj, parse, Json};

/// Machine-readable error codes carried in failed responses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// Malformed request (bad JSON, missing/ill-typed fields).
    Proto,
    /// Unknown table/column/view.
    Unknown,
    /// Ambiguous column reference.
    Ambiguous,
    /// Constraint violation; the statement was rolled back.
    Constraint,
    /// Transaction misuse (commit/rollback without begin, nested begin).
    Txn,
    /// Admission control or backpressure rejected the request.
    Busy,
    /// The server is shutting down.
    Shutdown,
    /// A durability failure.
    Io,
    /// Anything else.
    Internal,
}

impl ErrorCode {
    /// The code's wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Proto => "proto",
            ErrorCode::Unknown => "unknown",
            ErrorCode::Ambiguous => "ambiguous",
            ErrorCode::Constraint => "constraint",
            ErrorCode::Txn => "txn",
            ErrorCode::Busy => "busy",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Io => "io",
            ErrorCode::Internal => "internal",
        }
    }

    /// Maps an engine error onto a wire code.
    pub fn of(e: &EngineError) -> Self {
        match e {
            EngineError::Unknown(_) => ErrorCode::Unknown,
            EngineError::Ambiguous(_) => ErrorCode::Ambiguous,
            EngineError::ConstraintViolation(_) => ErrorCode::Constraint,
            EngineError::NoTransaction => ErrorCode::Txn,
            EngineError::Io(_) | EngineError::WalPoisoned => ErrorCode::Io,
            _ => ErrorCode::Internal,
        }
    }
}

/// A write operation a session submits to the commit pipeline. `update`
/// carries resolved assignments as owned strings (the engine API takes
/// `&str` pairs; the pipeline re-borrows them at execution time).
#[derive(Clone, PartialEq, Debug)]
pub enum WriteOp {
    /// `insert` — one row.
    Insert {
        /// Target table.
        table: String,
        /// The row.
        row: Row,
    },
    /// `delete` — all rows matching the predicates.
    Delete {
        /// Target table.
        table: String,
        /// Conjunctive predicates.
        preds: Vec<Pred>,
    },
    /// `update` — set columns on all rows matching the predicates.
    Update {
        /// Target table.
        table: String,
        /// Conjunctive predicates.
        preds: Vec<Pred>,
        /// `(column, new value)` assignments.
        sets: Vec<(String, Option<Value>)>,
    },
    /// `batch` — a group of inserts/deletes validated as one statement.
    Batch {
        /// The operations.
        ops: Vec<BatchOp>,
    },
}

/// A parsed request.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// `hello` — handshake; the response describes the schema.
    Hello {
        /// Optional client self-identification.
        client: Option<String>,
    },
    /// `query` — run a select against the session's snapshot.
    Query(Query),
    /// `explain` — run a query, returning the executed plan.
    Explain(Query),
    /// `view` — run a named view against the session's snapshot.
    View {
        /// View name.
        name: String,
    },
    /// A write ([`WriteOp`]): outside a transaction it commits through
    /// the pipeline; inside one it buffers until `commit`.
    Write(WriteOp),
    /// `begin` — start buffering writes into a server-side transaction.
    Begin,
    /// `commit` — submit the buffered writes as one atomic unit.
    Commit,
    /// `rollback` — discard the buffered writes.
    Rollback,
    /// `status` — server counters and snapshot version.
    Status,
    /// `shutdown` — ask the server to shut down cleanly.
    Shutdown,
}

/// Parses one request line. `Err` carries `(code, detail)` for the error
/// response.
pub fn parse_request(line: &str) -> Result<(i64, Request), (ErrorCode, String)> {
    let v = parse(line).map_err(|e| (ErrorCode::Proto, format!("bad JSON: {e}")))?;
    let id = v.get("id").and_then(Json::as_i64).unwrap_or(0);
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or((ErrorCode::Proto, "missing cmd".to_string()))?;
    let req = match cmd {
        "hello" => Request::Hello {
            client: v.get("client").and_then(Json::as_str).map(str::to_owned),
        },
        "query" => Request::Query(decode_query(&v).map_err(|d| (ErrorCode::Proto, d))?),
        "explain" => Request::Explain(decode_query(&v).map_err(|d| (ErrorCode::Proto, d))?),
        "view" => Request::View {
            name: req_str(&v, "name").map_err(|d| (ErrorCode::Proto, d))?,
        },
        "insert" => Request::Write(WriteOp::Insert {
            table: req_str(&v, "table").map_err(|d| (ErrorCode::Proto, d))?,
            row: decode_row(v.get("row")).map_err(|d| (ErrorCode::Proto, d))?,
        }),
        "delete" => Request::Write(WriteOp::Delete {
            table: req_str(&v, "table").map_err(|d| (ErrorCode::Proto, d))?,
            preds: decode_preds(v.get("where")).map_err(|d| (ErrorCode::Proto, d))?,
        }),
        "update" => Request::Write(WriteOp::Update {
            table: req_str(&v, "table").map_err(|d| (ErrorCode::Proto, d))?,
            preds: decode_preds(v.get("where")).map_err(|d| (ErrorCode::Proto, d))?,
            sets: decode_sets(v.get("set")).map_err(|d| (ErrorCode::Proto, d))?,
        }),
        "batch" => Request::Write(WriteOp::Batch {
            ops: decode_batch(v.get("ops")).map_err(|d| (ErrorCode::Proto, d))?,
        }),
        "begin" => Request::Begin,
        "commit" => Request::Commit,
        "rollback" => Request::Rollback,
        "status" => Request::Status,
        "shutdown" => Request::Shutdown,
        other => return Err((ErrorCode::Proto, format!("unknown cmd '{other}'"))),
    };
    Ok((id, req))
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn decode_query(v: &Json) -> Result<Query, String> {
    let mut q = Query::from(req_str(v, "table")?);
    if let Some(sel) = v.get("select") {
        let items = sel.as_arr().ok_or("'select' must be an array")?;
        q.select = items
            .iter()
            .map(|c| {
                c.as_str()
                    .map(str::to_owned)
                    .ok_or("select items must be strings")
            })
            .collect::<Result<_, _>>()
            .map_err(str::to_owned)?;
    }
    q.filter = decode_preds(v.get("where"))?;
    if let Some(joins) = v.get("joins") {
        for j in joins.as_arr().ok_or("'joins' must be an array")? {
            let table = req_str(j, "table")?;
            let mut on = Vec::new();
            for pair in j
                .get("on")
                .and_then(Json::as_arr)
                .ok_or("join needs an 'on' array")?
            {
                match pair.as_arr() {
                    Some([l, r]) => match (l.as_str(), r.as_str()) {
                        (Some(l), Some(r)) => on.push((l.to_owned(), r.to_owned())),
                        _ => return Err("join 'on' pairs must be strings".into()),
                    },
                    _ => return Err("join 'on' must be [left,right] pairs".into()),
                }
            }
            q.joins.push(ridl_engine::query::Join { table, on });
        }
    }
    Ok(q)
}

fn decode_preds(v: Option<&Json>) -> Result<Vec<Pred>, String> {
    let Some(v) = v else {
        return Ok(Vec::new());
    };
    let mut preds = Vec::new();
    for p in v.as_arr().ok_or("'where' must be an array")? {
        let col = req_str(p, "col")?;
        if let Some(eq) = p.get("eq") {
            preds.push(Pred::Eq(
                col,
                decode_value(eq)?.ok_or("'eq' cannot be null; use is_null")?,
            ));
        } else if p.get("is_null").and_then(Json::as_bool) == Some(true) {
            preds.push(Pred::IsNull(col));
        } else if p.get("not_null").and_then(Json::as_bool) == Some(true) {
            preds.push(Pred::NotNull(col));
        } else {
            return Err("predicate needs 'eq', 'is_null' or 'not_null'".into());
        }
    }
    Ok(preds)
}

fn decode_sets(v: Option<&Json>) -> Result<Vec<(String, Option<Value>)>, String> {
    let mut sets = Vec::new();
    for pair in v
        .and_then(Json::as_arr)
        .ok_or("update needs a 'set' array")?
    {
        match pair.as_arr() {
            Some([col, val]) => sets.push((
                col.as_str()
                    .ok_or("set column must be a string")?
                    .to_owned(),
                decode_value(val)?,
            )),
            _ => return Err("'set' items must be [column, value] pairs".into()),
        }
    }
    if sets.is_empty() {
        return Err("'set' must not be empty".into());
    }
    Ok(sets)
}

fn decode_batch(v: Option<&Json>) -> Result<Vec<BatchOp>, String> {
    let mut ops = Vec::new();
    for op in v
        .and_then(Json::as_arr)
        .ok_or("batch needs an 'ops' array")?
    {
        let table = req_str(op, "table")?;
        let row = decode_row(op.get("row"))?;
        match op.get("op").and_then(Json::as_str) {
            Some("insert") => ops.push(BatchOp::insert(table, row)),
            Some("delete") => ops.push(BatchOp::delete(table, row)),
            _ => return Err("batch op must be 'insert' or 'delete'".into()),
        }
    }
    Ok(ops)
}

/// Decodes a row: an array of wire values.
pub fn decode_row(v: Option<&Json>) -> Result<Row, String> {
    v.and_then(Json::as_arr)
        .ok_or("missing 'row' array")?
        .iter()
        .map(decode_value)
        .collect()
}

/// Decodes one wire value (`None` = SQL NULL).
pub fn decode_value(v: &Json) -> Result<Option<Value>, String> {
    Ok(Some(match v {
        Json::Null => return Ok(None),
        Json::Str(s) => Value::Str(s.clone()),
        Json::Int(n) => Value::Int(*n),
        Json::Bool(b) => Value::Bool(*b),
        Json::Float(_) => return Err("floats are not row values; use {\"num\":[m,s]}".into()),
        Json::Obj(_) => {
            if let Some(n) = v.get("num").and_then(Json::as_arr) {
                match n {
                    [Json::Int(m), Json::Int(s)] if (0..=255).contains(s) => {
                        Value::Num(Decimal::new(*m, *s as u8))
                    }
                    _ => return Err("'num' must be [mantissa, scale 0..=255]".into()),
                }
            } else if let Some(d) = v.get("date").and_then(Json::as_i64) {
                Value::Date(i32::try_from(d).map_err(|_| "date out of range".to_string())?)
            } else if let Some(e) = v.get("entity").and_then(Json::as_i64) {
                Value::entity(u64::try_from(e).map_err(|_| "entity out of range".to_string())?)
            } else {
                return Err("unknown tagged value object".into());
            }
        }
        Json::Arr(_) => return Err("arrays are not row values".into()),
    }))
}

/// Encodes one cell for the wire (inverse of [`decode_value`]).
pub fn encode_value(v: &Option<Value>) -> Json {
    match v {
        None => Json::Null,
        Some(Value::Str(s)) => Json::str(s.clone()),
        Some(Value::Int(n)) => Json::Int(*n),
        Some(Value::Bool(b)) => Json::Bool(*b),
        Some(Value::Num(d)) => obj([(
            "num",
            Json::Arr(vec![Json::Int(d.mantissa), Json::Int(i64::from(d.scale))]),
        )]),
        Some(Value::Date(d)) => obj([("date", Json::Int(i64::from(*d)))]),
        Some(Value::Entity(e)) => {
            obj([("entity", Json::Int(i64::try_from(e.0).unwrap_or(i64::MAX)))])
        }
    }
}

/// Encodes a result row set.
pub fn encode_rows(rows: &[Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| Json::Arr(r.iter().map(encode_value).collect()))
            .collect(),
    )
}

/// A successful response line with extra payload fields.
pub fn ok_response(id: i64, extra: impl IntoIterator<Item = (&'static str, Json)>) -> String {
    let mut fields = vec![("id", Json::Int(id)), ("ok", Json::Bool(true))];
    fields.extend(extra);
    obj(fields).to_string()
}

/// A failed response line.
pub fn err_response(id: i64, code: ErrorCode, detail: &str) -> String {
    obj([
        ("id", Json::Int(id)),
        ("ok", Json::Bool(false)),
        ("error", Json::str(code.name())),
        ("detail", Json::str(detail)),
    ])
    .to_string()
}

/// A failed response from an engine error.
pub fn engine_err_response(id: i64, e: &EngineError) -> String {
    err_response(id, ErrorCode::of(e), &e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_command_set() {
        let (id, req) = parse_request(r#"{"id":1,"cmd":"hello","client":"t"}"#).unwrap();
        assert_eq!(id, 1);
        assert_eq!(
            req,
            Request::Hello {
                client: Some("t".into())
            }
        );
        let (_, req) = parse_request(
            r#"{"id":2,"cmd":"query","table":"T","select":["a"],"where":[{"col":"a","eq":"x"},{"col":"b","is_null":true}],"joins":[{"table":"U","on":[["a","b"]]}]}"#,
        )
        .unwrap();
        match req {
            Request::Query(q) => {
                assert_eq!(q.table, "T");
                assert_eq!(q.select, vec!["a"]);
                assert_eq!(q.filter.len(), 2);
                assert_eq!(q.joins.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        let (_, req) =
            parse_request(r#"{"id":3,"cmd":"insert","table":"T","row":["x",null,7]}"#).unwrap();
        assert_eq!(
            req,
            Request::Write(WriteOp::Insert {
                table: "T".into(),
                row: vec![Some(Value::str("x")), None, Some(Value::Int(7))],
            })
        );
        let (_, req) = parse_request(
            r#"{"id":4,"cmd":"update","table":"T","where":[{"col":"a","not_null":true}],"set":[["b",null],["c",5]]}"#,
        )
        .unwrap();
        match req {
            Request::Write(WriteOp::Update { sets, .. }) => assert_eq!(sets.len(), 2),
            other => panic!("{other:?}"),
        }
        let (_, req) = parse_request(
            r#"{"id":5,"cmd":"batch","ops":[{"op":"insert","table":"T","row":["x"]},{"op":"delete","table":"T","row":["y"]}]}"#,
        )
        .unwrap();
        match req {
            Request::Write(WriteOp::Batch { ops }) => assert_eq!(ops.len(), 2),
            other => panic!("{other:?}"),
        }
        for (cmd, want) in [
            ("begin", Request::Begin),
            ("commit", Request::Commit),
            ("rollback", Request::Rollback),
            ("status", Request::Status),
            ("shutdown", Request::Shutdown),
        ] {
            let (_, req) = parse_request(&format!(r#"{{"id":9,"cmd":"{cmd}"}}"#)).unwrap();
            assert_eq!(req, want);
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "not json",
            r#"{"id":1}"#,
            r#"{"id":1,"cmd":"nope"}"#,
            r#"{"id":1,"cmd":"insert","table":"T"}"#,
            r#"{"id":1,"cmd":"insert","table":"T","row":"x"}"#,
            r#"{"id":1,"cmd":"update","table":"T","set":[]}"#,
            r#"{"id":1,"cmd":"query"}"#,
            r#"{"id":1,"cmd":"delete","table":"T","where":[{"col":"a"}]}"#,
            r#"{"id":1,"cmd":"insert","table":"T","row":[3.5]}"#,
        ] {
            let err = parse_request(line);
            assert!(
                matches!(err, Err((ErrorCode::Proto, _))),
                "{line} should be a proto error, got {err:?}"
            );
        }
    }

    #[test]
    fn values_roundtrip_through_the_wire_encoding() {
        let cells: Vec<Option<Value>> = vec![
            None,
            Some(Value::str("x")),
            Some(Value::Int(-3)),
            Some(Value::Bool(true)),
            Some(Value::Num(Decimal::new(1234, 2))),
            Some(Value::Date(-7)),
            Some(Value::entity(42)),
        ];
        for cell in &cells {
            let wire = encode_value(cell).to_string();
            let back = decode_value(&parse(&wire).unwrap()).unwrap();
            assert_eq!(&back, cell, "roundtrip of {wire}");
        }
    }

    #[test]
    fn responses_carry_id_ok_and_error_codes() {
        let ok = ok_response(7, [("n", Json::Int(3))]);
        let v = parse(&ok).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_i64), Some(7));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        let err = err_response(8, ErrorCode::Busy, "queue full");
        let v = parse(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("busy"));
    }
}

//! The serialized cross-session commit pipeline.
//!
//! All writes from all sessions funnel into one bounded queue drained by
//! a single committer thread. The committer grabs whatever jobs are
//! queued, applies them back to back under one engine lock hold — each
//! statement appends its WAL unit *without* fsyncing (the store is opened
//! with [`ridl_engine::FsyncPolicy::Never`]) — then issues **one**
//! `flush_wal` fsync for the whole batch. That turns the engine's
//! intra-statement group commit into a cross-session one: N concurrent
//! writers cost one fsync, and the `wal.group_batch` histogram records N.
//!
//! Invariants (DESIGN.md §13):
//! * writes are serialized — the engine never sees two mutating
//!   statements interleaved, so all single-handle reasoning holds;
//! * a job observes every earlier job's effects (the queue is FIFO);
//! * the published snapshot only ever advances at batch boundaries, after
//!   the batch's fsync — readers never observe a state whose WAL is not
//!   yet durable;
//! * a full queue rejects new jobs immediately (`busy`) instead of
//!   blocking the session thread — backpressure is explicit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

use ridl_engine::snapshot::ReadSnapshot;
use ridl_engine::{Database, EngineError};
use ridl_obs::journal;
use ridl_obs::Severity;

use crate::proto::WriteOp;

/// What a committed job reports back to its session.
#[derive(Clone, PartialEq, Debug)]
pub struct Committed {
    /// The global commit sequence number assigned to this job. Strictly
    /// increasing across the whole server; the linearizability tests
    /// replay committed history in this order.
    pub seq: u64,
    /// How many row operations changed the state.
    pub changed: u64,
}

/// One queued write: a single statement, or a buffered transaction
/// executed as one atomic engine transaction.
pub(crate) enum JobKind {
    /// One statement.
    Single(WriteOp),
    /// A `begin`…`commit` buffer: all ops validate and commit as one
    /// engine transaction (one WAL unit).
    Txn(Vec<WriteOp>),
}

pub(crate) struct WriteJob {
    pub kind: JobKind,
    pub reply: mpsc::Sender<Result<Committed, EngineError>>,
}

/// The pipeline's shared half: the engine, the published snapshot, and
/// the job queue.
pub(crate) struct Core {
    db: Mutex<Database>,
    snapshot: RwLock<Arc<ReadSnapshot>>,
    queue: Mutex<VecDeque<WriteJob>>,
    queue_cv: Condvar,
    queue_depth: usize,
    commit_seq: AtomicU64,
    stopping: AtomicBool,
}

impl Core {
    pub fn new(db: Database, queue_depth: usize) -> Self {
        let snapshot = Arc::new(db.snapshot_at(0));
        Self {
            db: Mutex::new(db),
            snapshot: RwLock::new(snapshot),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_depth,
            commit_seq: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
        }
    }

    /// The latest published snapshot — what read statements execute
    /// against. Never blocks on the writer (the lock is held only for the
    /// `Arc` clone).
    pub fn current_snapshot(&self) -> Arc<ReadSnapshot> {
        self.snapshot.read().expect("snapshot lock").clone()
    }

    /// The highest commit sequence number assigned so far.
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq.load(Ordering::SeqCst)
    }

    /// Enqueues a write, or rejects it immediately when the queue is at
    /// capacity (backpressure) or the server is stopping.
    pub fn submit(
        &self,
        kind: JobKind,
    ) -> Result<mpsc::Receiver<Result<Committed, EngineError>>, &'static str> {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.queue.lock().expect("queue lock");
            if self.stopping.load(Ordering::SeqCst) {
                return Err("server is shutting down");
            }
            if q.len() >= self.queue_depth {
                ridl_obs::metrics().server_busy_rejects.inc();
                return Err("commit queue full");
            }
            q.push_back(WriteJob { kind, reply: tx });
        }
        self.queue_cv.notify_one();
        Ok(rx)
    }

    /// Tells the committer to drain what is queued and exit.
    pub fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Runs `f` with the engine locked (status reads, final checkpoint).
    pub fn with_db<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.db.lock().expect("db lock"))
    }

    /// Takes the engine back out. Panics if sessions still hold the core.
    pub fn into_db(self) -> Database {
        self.db.into_inner().expect("db lock")
    }
}

/// Starts the committer thread.
pub(crate) fn spawn_committer(core: Arc<Core>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("ridl-committer".into())
        .spawn(move || committer_loop(&core))
        .expect("spawn committer")
}

fn committer_loop(core: &Core) {
    loop {
        let batch: Vec<WriteJob> = {
            let mut q = core.queue.lock().expect("queue lock");
            while q.is_empty() && !core.stopping.load(Ordering::SeqCst) {
                q = core.queue_cv.wait(q).expect("queue wait");
            }
            if q.is_empty() {
                return; // stopping, nothing left to drain
            }
            q.drain(..).collect()
        };
        let m = ridl_obs::metrics();
        m.server_commit_batches.inc();
        m.server_commit_batch_ops.add(batch.len() as u64);
        ridl_obs::hist::record_named("server.commit_batch", batch.len() as u64);

        let mut db = core.db.lock().expect("db lock");
        let results: Vec<Result<u64, EngineError>> = batch
            .iter()
            .map(|job| execute(&mut db, &job.kind))
            .collect();
        // One fsync for the whole batch — the cross-session group commit.
        let flush = db.flush_wal();
        let seq_base = core.commit_seq.load(Ordering::SeqCst);
        let committed = results.iter().filter(|r| r.is_ok()).count() as u64;
        // Publish the post-batch snapshot before answering the sessions,
        // so a client that sees its commit acknowledged also sees its
        // write in any later read (read-your-writes across the protocol).
        if committed > 0 && flush.is_ok() {
            core.commit_seq
                .store(seq_base + committed, Ordering::SeqCst);
            let snap = Arc::new(db.snapshot_at(seq_base + committed));
            *core.snapshot.write().expect("snapshot lock") = snap;
        }
        drop(db);
        let mut seq = seq_base;
        for (job, result) in batch.into_iter().zip(results) {
            let outcome = match (result, &flush) {
                (Ok(changed), Ok(())) => {
                    seq += 1;
                    Ok(Committed { seq, changed })
                }
                (Ok(_), Err(e)) => Err(e.clone()),
                (Err(e), _) => Err(e),
            };
            // A dropped receiver (session died) is fine.
            let _ = job.reply.send(outcome);
        }
        if let Err(e) = &flush {
            journal::record(
                Severity::Error,
                "session.flush_fail",
                vec![("detail", ridl_obs::AttrValue::from(e.to_string()))],
            );
        }
    }
}

/// Applies one job to the engine. Errors roll back per engine semantics
/// (single statements revert themselves; transactions roll back here).
fn execute(db: &mut Database, kind: &JobKind) -> Result<u64, EngineError> {
    match kind {
        JobKind::Single(op) => execute_op(db, op),
        JobKind::Txn(ops) => {
            db.begin();
            let mut changed = 0u64;
            for op in ops {
                match execute_op(db, op) {
                    Ok(n) => changed += n,
                    Err(e) => {
                        db.rollback()?;
                        return Err(e);
                    }
                }
            }
            db.commit()?;
            Ok(changed)
        }
    }
}

pub(crate) fn execute_op(db: &mut Database, op: &WriteOp) -> Result<u64, EngineError> {
    match op {
        WriteOp::Insert { table, row } => {
            db.insert(table, row.clone())?;
            Ok(1)
        }
        WriteOp::Delete { table, preds } => Ok(db.delete_where(table, preds)? as u64),
        WriteOp::Update { table, preds, sets } => {
            let sets: Vec<(&str, Option<ridl_brm::Value>)> =
                sets.iter().map(|(c, v)| (c.as_str(), v.clone())).collect();
            Ok(db.update_where(table, preds, &sets)? as u64)
        }
        WriteOp::Batch { ops } => Ok(db.apply_batch(ops.iter().cloned())? as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::{DataType, Value};
    use ridl_relational::{Column, RelConstraintKind, RelSchema, Table};

    fn sample_db() -> Database {
        let mut s = RelSchema::new("t");
        let d = s.domain("D", DataType::Char(16));
        let paper = s.add_table(Table::new(
            "Paper",
            vec![
                Column::not_null("Paper_Id", d),
                Column::nullable("Program_Id", d),
            ],
        ));
        s.add_named(RelConstraintKind::PrimaryKey {
            table: paper,
            cols: vec![0],
        });
        Database::create(s).unwrap()
    }

    fn insert(key: &str) -> JobKind {
        JobKind::Single(WriteOp::Insert {
            table: "Paper".into(),
            row: vec![Some(Value::str(key)), None],
        })
    }

    /// Jobs queued before the committer starts drain as ONE batch: one
    /// engine lock hold, one flush, one snapshot publication — the
    /// cross-session group commit, deterministically.
    #[test]
    fn queued_jobs_drain_as_one_group_commit_batch() {
        let core = Arc::new(Core::new(sample_db(), 64));
        let before = core.current_snapshot();
        let replies: Vec<_> = (0..5)
            .map(|i| core.submit(insert(&format!("P{i}"))).unwrap())
            .collect();
        let committer = spawn_committer(core.clone());
        let seqs: Vec<u64> = replies
            .into_iter()
            .map(|rx| rx.recv().unwrap().unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        // The snapshot advanced once, to the post-batch state.
        let after = core.current_snapshot();
        assert_eq!(before.num_rows(), 0);
        assert_eq!(after.num_rows(), 5);
        assert_eq!(after.version(), 5);
        core.stop();
        committer.join().unwrap();
    }

    /// A failing job inside a batch fails alone; its neighbours commit.
    #[test]
    fn per_job_errors_do_not_poison_the_batch() {
        let core = Arc::new(Core::new(sample_db(), 64));
        let a = core.submit(insert("DUP")).unwrap();
        let b = core.submit(insert("DUP")).unwrap(); // primary-key clash
        let c = core.submit(insert("OK")).unwrap();
        let committer = spawn_committer(core.clone());
        assert_eq!(a.recv().unwrap().unwrap().seq, 1);
        assert!(matches!(
            b.recv().unwrap(),
            Err(EngineError::ConstraintViolation(_))
        ));
        assert_eq!(c.recv().unwrap().unwrap().seq, 2);
        assert_eq!(core.current_snapshot().num_rows(), 2);
        core.stop();
        committer.join().unwrap();
    }

    /// A full queue rejects instead of blocking (explicit backpressure).
    #[test]
    fn full_queue_rejects_with_busy() {
        let core = Arc::new(Core::new(sample_db(), 2));
        core.submit(insert("A")).unwrap();
        core.submit(insert("B")).unwrap();
        assert!(core.submit(insert("C")).is_err());
        let committer = spawn_committer(core.clone());
        core.stop();
        committer.join().unwrap();
    }

    /// A transaction job is atomic: one bad op rolls the whole unit back.
    #[test]
    fn txn_jobs_are_atomic() {
        let core = Arc::new(Core::new(sample_db(), 64));
        let good = core.submit(insert("BASE")).unwrap();
        let txn = core
            .submit(JobKind::Txn(vec![
                WriteOp::Insert {
                    table: "Paper".into(),
                    row: vec![Some(Value::str("T1")), None],
                },
                WriteOp::Insert {
                    table: "Paper".into(),
                    row: vec![Some(Value::str("BASE")), None], // clash
                },
            ]))
            .unwrap();
        let committer = spawn_committer(core.clone());
        assert!(good.recv().unwrap().is_ok());
        assert!(txn.recv().unwrap().is_err());
        assert_eq!(core.current_snapshot().num_rows(), 1);
        core.stop();
        committer.join().unwrap();
    }
}

//! A minimal JSON value model, parser and writer (std only).
//!
//! The wire protocol is line-delimited JSON; the workspace deliberately
//! carries no serde, so this module hand-rolls the little JSON the
//! protocol needs: objects, arrays, strings (with escapes), integers,
//! floats, booleans and null. Numbers without fraction/exponent parse as
//! `i64` (row values are exact); anything else as `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// An integral number.
    Int(i64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps encoding deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Object field access; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Builds an object from key/value pairs.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    // JSON has no NaN/Inf; null is the least-wrong encoding.
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(
                                c.ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8".to_string())?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        // self.pos is at 'u'; the four digits follow.
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number '{text}'"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number '{text}'"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        for s in [
            "null",
            "true",
            "-42",
            "3.5",
            "\"hi \\\"there\\\"\\n\"",
            "[1,2,[3]]",
            "{\"a\":1,\"b\":[null,false],\"c\":{\"d\":\"x\"}}",
        ] {
            let v = parse(s).unwrap();
            let re = parse(&v.to_string()).unwrap();
            assert_eq!(v, re, "roundtrip of {s}");
        }
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse("\"caf\\u00e9 \\u2713\"").unwrap();
        assert_eq!(v.as_str(), Some("café ✓"));
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Control chars escape on output.
        assert_eq!(Json::str("a\nb").to_string(), "\"a\\nb\"");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse("{\"n\":7,\"s\":\"x\",\"b\":true,\"a\":[1]}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(7));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
    }
}

//! A small blocking client for the line-delimited JSON protocol.
//!
//! Used by `ridl client`, the server smoke job, and the tests/bench. It
//! deliberately mirrors what a scripted `nc` session would do: one
//! request line out, one response line in.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::json::{obj, parse, Json};

/// A connected protocol client. One request in flight at a time
/// (requests carry monotonically increasing ids).
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: i64,
}

/// A client-side failure: transport I/O, or a malformed response line.
#[derive(Debug)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client error: {}", self.0)
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError(format!("io: {e}"))
    }
}

impl Client {
    /// Connects to a server at `addr` (e.g. `127.0.0.1:7777`).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Request/response round trips suffer badly from Nagle + delayed
        // ACK; a line is always a complete message, so send it at once.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            stream,
            reader,
            next_id: 1,
        })
    }

    /// Sends one already-formed request object (the `id` field is filled
    /// in) and returns the parsed response.
    pub fn request(&mut self, mut req: Json) -> Result<Json, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        if let Json::Obj(fields) = &mut req {
            fields.insert("id".to_string(), Json::Int(id));
        }
        self.send_raw(&req.to_string())
    }

    /// Sends a raw request line verbatim and returns the parsed response.
    /// Unlike [`Client::request`] this does not manage ids — scripting
    /// callers own the whole line.
    pub fn send_raw(&mut self, line: &str) -> Result<Json, ClientError> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(ClientError("server closed the connection".into()));
        }
        parse(resp.trim()).map_err(|e| ClientError(format!("bad response: {e}")))
    }

    /// `hello` handshake; returns the response.
    pub fn hello(&mut self, client_name: &str) -> Result<Json, ClientError> {
        self.request(obj([
            ("cmd", Json::str("hello")),
            ("client", Json::str(client_name)),
        ]))
    }

    /// Convenience: sends a command-only request (`status`, `begin`,
    /// `commit`, `rollback`, `shutdown`).
    pub fn command(&mut self, cmd: &str) -> Result<Json, ClientError> {
        self.request(obj([("cmd", Json::str(cmd))]))
    }

    /// True when a response line reports success.
    pub fn is_ok(resp: &Json) -> bool {
        resp.get("ok").and_then(Json::as_bool).unwrap_or(false)
    }

    /// The `error` code of a failed response, if any.
    pub fn error_code(resp: &Json) -> Option<&str> {
        resp.get("error").and_then(Json::as_str)
    }
}

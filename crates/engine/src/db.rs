//! The database proper: constraint-checked storage plus the query executor.

use std::collections::HashMap;
use std::fmt;

use ridl_brm::Value;
use ridl_relational::{validate, ColumnSelection, RelSchema, RelState, RelViolation, Row, TableId};

use crate::query::{Pred, Query};

/// Errors raised by the engine.
#[derive(Clone, PartialEq, Debug)]
pub enum EngineError {
    /// The schema definition itself is inconsistent.
    BadSchema(Vec<String>),
    /// A named table/column/view does not exist.
    Unknown(String),
    /// A statement would violate constraints; the update was rolled back.
    ConstraintViolation(Vec<RelViolation>),
    /// Transaction misuse (commit/rollback without begin).
    NoTransaction,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BadSchema(errs) => write!(f, "bad schema: {}", errs.join("; ")),
            EngineError::Unknown(what) => write!(f, "unknown object: {what}"),
            EngineError::ConstraintViolation(v) => {
                write!(f, "constraint violation: ")?;
                for x in v.iter().take(3) {
                    write!(f, "[{x}] ")?;
                }
                Ok(())
            }
            EngineError::NoTransaction => write!(f, "no open transaction"),
        }
    }
}

impl std::error::Error for EngineError {}

/// An in-memory, constraint-enforcing relational database.
pub struct Database {
    schema: RelSchema,
    state: RelState,
    views: HashMap<String, Query>,
    snapshots: Vec<RelState>,
}

impl Database {
    /// Creates an empty database over a schema.
    pub fn create(schema: RelSchema) -> Result<Self, EngineError> {
        let errs = schema.check_ids();
        if !errs.is_empty() {
            return Err(EngineError::BadSchema(errs));
        }
        let state = RelState::with_tables(schema.tables.len());
        Ok(Self {
            schema,
            state,
            views: HashMap::new(),
            snapshots: Vec::new(),
        })
    }

    /// The schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The raw state (e.g. to compare against a state map's output).
    pub fn state(&self) -> &RelState {
        &self.state
    }

    /// Replaces the whole state, validating it first.
    pub fn load_state(&mut self, state: RelState) -> Result<(), EngineError> {
        let violations = validate::validate(&self.schema, &state);
        if !violations.is_empty() {
            return Err(EngineError::ConstraintViolation(violations));
        }
        self.state = state;
        Ok(())
    }

    fn table_id(&self, name: &str) -> Result<TableId, EngineError> {
        self.schema
            .table_by_name(name)
            .ok_or_else(|| EngineError::Unknown(format!("table {name}")))
    }

    fn check_after(&mut self, before: RelState) -> Result<(), EngineError> {
        // Deferred full check: correct and simple; the meta-database and
        // test workloads are small, and correctness of enforcement is the
        // point here (per perf-book guidance: measure before optimizing).
        let violations = validate::validate(&self.schema, &self.state);
        if violations.is_empty() {
            Ok(())
        } else {
            self.state = before;
            Err(EngineError::ConstraintViolation(violations))
        }
    }

    /// Inserts a row, enforcing every constraint; rolls back on violation.
    /// Re-inserting an existing row is rejected (relations are sets; a
    /// duplicate insert is almost always a key violation in disguise).
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), EngineError> {
        let tid = self.table_id(table)?;
        let before = self.state.clone();
        if !self.state.insert(tid, row) {
            return Err(EngineError::ConstraintViolation(vec![RelViolation {
                constraint: "DUPLICATE".into(),
                detail: format!("row already present in {table}"),
            }]));
        }
        self.check_after(before)
    }

    /// Inserts without constraint checking (bulk load within transactions;
    /// `commit` or `load_state` re-validates).
    pub fn insert_unchecked(&mut self, table: &str, row: Row) -> Result<(), EngineError> {
        let tid = self.table_id(table)?;
        self.state.insert(tid, row);
        Ok(())
    }

    /// Deletes the rows matching the predicate; returns how many went.
    pub fn delete_where(&mut self, table: &str, preds: &[Pred]) -> Result<usize, EngineError> {
        let tid = self.table_id(table)?;
        let before = self.state.clone();
        let matching: Vec<Row> = self
            .state
            .rows(tid)
            .iter()
            .filter(|row| self.row_matches(tid, row, preds).unwrap_or(false))
            .cloned()
            .collect();
        for row in &matching {
            self.state.remove(tid, row);
        }
        self.check_after(before)?;
        Ok(matching.len())
    }

    /// Updates matching rows by setting columns; returns how many changed.
    pub fn update_where(
        &mut self,
        table: &str,
        preds: &[Pred],
        assignments: &[(&str, Option<Value>)],
    ) -> Result<usize, EngineError> {
        let tid = self.table_id(table)?;
        let cols: Vec<(u32, Option<Value>)> = assignments
            .iter()
            .map(|(name, v)| {
                self.schema
                    .table(tid)
                    .column_by_name(name)
                    .map(|c| (c, v.clone()))
                    .ok_or_else(|| EngineError::Unknown(format!("column {name}")))
            })
            .collect::<Result<_, _>>()?;
        let before = self.state.clone();
        let matching: Vec<Row> = self
            .state
            .rows(tid)
            .iter()
            .filter(|row| self.row_matches(tid, row, preds).unwrap_or(false))
            .cloned()
            .collect();
        for row in &matching {
            self.state.remove(tid, row);
            let mut new_row = row.clone();
            for (c, v) in &cols {
                new_row[*c as usize] = v.clone();
            }
            self.state.insert(tid, new_row);
        }
        self.check_after(before)?;
        Ok(matching.len())
    }

    fn col_by_name(&self, tid: TableId, name: &str) -> Option<u32> {
        // Accept both bare and `Table.col` qualified names.
        let bare = name.rsplit('.').next().unwrap_or(name);
        if let Some(prefix) = name.strip_suffix(&format!(".{bare}")) {
            if self.schema.table(tid).name != prefix {
                return None;
            }
        }
        self.schema.table(tid).column_by_name(bare)
    }

    fn row_matches(&self, tid: TableId, row: &Row, preds: &[Pred]) -> Result<bool, EngineError> {
        for p in preds {
            let col_of = |c: &String| -> Result<usize, EngineError> {
                self.col_by_name(tid, c)
                    .map(|i| i as usize)
                    .ok_or_else(|| EngineError::Unknown(format!("column {c}")))
            };
            let ok = match p {
                Pred::Eq(c, v) => row[col_of(c)?].as_ref() == Some(v),
                Pred::IsNull(c) => row[col_of(c)?].is_none(),
                Pred::NotNull(c) => row[col_of(c)?].is_some(),
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    // ---- queries ----

    /// Runs a query; rows carry the projected columns in order.
    pub fn select(&self, q: &Query) -> Result<Vec<Row>, EngineError> {
        // Assemble the joined relation as (qualified name -> index) + rows.
        let tid = self.table_id(&q.table)?;
        let mut columns: Vec<String> = self
            .schema
            .table(tid)
            .columns
            .iter()
            .map(|c| format!("{}.{}", q.table, c.name))
            .collect();
        let mut rows: Vec<Row> = self.state.rows(tid).iter().cloned().collect();

        for join in &q.joins {
            let jt = self.table_id(&join.table)?;
            let j_cols: Vec<String> = self
                .schema
                .table(jt)
                .columns
                .iter()
                .map(|c| format!("{}.{}", join.table, c.name))
                .collect();
            let on: Vec<(usize, u32)> = join
                .on
                .iter()
                .map(|(l, r)| {
                    let li = find_col(&columns, l)
                        .ok_or_else(|| EngineError::Unknown(format!("column {l}")))?;
                    let ri = self
                        .schema
                        .table(jt)
                        .column_by_name(r)
                        .ok_or_else(|| EngineError::Unknown(format!("column {r}")))?;
                    Ok((li, ri))
                })
                .collect::<Result<_, EngineError>>()?;
            let mut joined = Vec::new();
            for row in &rows {
                for jrow in self.state.rows(jt) {
                    if on.iter().all(|(li, ri)| row[*li] == jrow[*ri as usize]) {
                        let mut merged = row.clone();
                        merged.extend(jrow.iter().cloned());
                        joined.push(merged);
                    }
                }
            }
            columns.extend(j_cols);
            rows = joined;
        }

        // Filter.
        let mut filtered = Vec::new();
        'rows: for row in rows {
            for p in &q.filter {
                let matches = match p {
                    Pred::Eq(c, v) => {
                        let i = find_col(&columns, c)
                            .ok_or_else(|| EngineError::Unknown(format!("column {c}")))?;
                        row[i].as_ref() == Some(v)
                    }
                    Pred::IsNull(c) => {
                        let i = find_col(&columns, c)
                            .ok_or_else(|| EngineError::Unknown(format!("column {c}")))?;
                        row[i].is_none()
                    }
                    Pred::NotNull(c) => {
                        let i = find_col(&columns, c)
                            .ok_or_else(|| EngineError::Unknown(format!("column {c}")))?;
                        row[i].is_some()
                    }
                };
                if !matches {
                    continue 'rows;
                }
            }
            filtered.push(row);
        }

        // Project.
        if q.select.is_empty() {
            return Ok(filtered);
        }
        let proj: Vec<usize> = q
            .select
            .iter()
            .map(|c| {
                find_col(&columns, c).ok_or_else(|| EngineError::Unknown(format!("column {c}")))
            })
            .collect::<Result<_, _>>()?;
        Ok(filtered
            .into_iter()
            .map(|row| proj.iter().map(|i| row[*i].clone()).collect())
            .collect())
    }

    /// Executes a [`ColumnSelection`] — a forwards-map SELECT — directly.
    pub fn select_selection(&self, sel: &ColumnSelection) -> Vec<Row> {
        self.state
            .select_where(sel.table, &sel.cols, &sel.not_null, &sel.eq)
            .into_iter()
            .collect()
    }

    // ---- views ----

    /// Defines a named view (the "open" meta-database interface, §3.1).
    pub fn create_view(&mut self, name: impl Into<String>, q: Query) {
        self.views.insert(name.into(), q);
    }

    /// Runs a named view.
    pub fn select_view(&self, name: &str) -> Result<Vec<Row>, EngineError> {
        let q = self
            .views
            .get(name)
            .ok_or_else(|| EngineError::Unknown(format!("view {name}")))?;
        self.select(q)
    }

    /// Names of the defined views.
    pub fn view_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.views.keys().map(String::as_str).collect();
        v.sort();
        v
    }

    // ---- transactions ----

    /// Opens a transaction (snapshot).
    pub fn begin(&mut self) {
        self.snapshots.push(self.state.clone());
    }

    /// Commits the innermost transaction, validating the final state.
    pub fn commit(&mut self) -> Result<(), EngineError> {
        let before = self.snapshots.pop().ok_or(EngineError::NoTransaction)?;
        let violations = validate::validate(&self.schema, &self.state);
        if violations.is_empty() {
            Ok(())
        } else {
            self.state = before;
            Err(EngineError::ConstraintViolation(violations))
        }
    }

    /// Rolls back the innermost transaction.
    pub fn rollback(&mut self) -> Result<(), EngineError> {
        self.state = self.snapshots.pop().ok_or(EngineError::NoTransaction)?;
        Ok(())
    }
}

fn find_col(columns: &[String], name: &str) -> Option<usize> {
    if let Some(i) = columns.iter().position(|c| c == name) {
        return Some(i);
    }
    // Bare name: unique suffix match.
    let matches: Vec<usize> = columns
        .iter()
        .enumerate()
        .filter(|(_, c)| c.rsplit('.').next() == Some(name))
        .map(|(i, _)| i)
        .collect();
    if matches.len() == 1 {
        Some(matches[0])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::DataType;
    use ridl_relational::{Column, RelConstraintKind, Table};

    fn v(s: &str) -> Option<Value> {
        Some(Value::str(s))
    }

    fn sample_db() -> Database {
        let mut s = RelSchema::new("t");
        let d = s.domain("D", DataType::Char(10));
        let paper = s.add_table(Table::new(
            "Paper",
            vec![
                Column::not_null("Paper_Id", d),
                Column::nullable("Program_Id", d),
            ],
        ));
        let pp = s.add_table(Table::new(
            "Program_Paper",
            vec![
                Column::not_null("Program_Id", d),
                Column::not_null("Session", d),
            ],
        ));
        s.add_named(RelConstraintKind::PrimaryKey {
            table: paper,
            cols: vec![0],
        });
        s.add_named(RelConstraintKind::PrimaryKey {
            table: pp,
            cols: vec![0],
        });
        s.add_named(RelConstraintKind::ForeignKey {
            table: pp,
            cols: vec![0],
            ref_table: paper,
            ref_cols: vec![1],
        });
        Database::create(s).unwrap()
    }

    #[test]
    fn insert_enforces_keys() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        // Same key, different row: primary-key violation.
        let err = db.insert("Paper", vec![v("P1"), v("A1")]);
        assert!(matches!(err, Err(EngineError::ConstraintViolation(_))));
        // Identical row: rejected as a duplicate.
        let err = db.insert("Paper", vec![v("P1"), None]);
        assert!(matches!(err, Err(EngineError::ConstraintViolation(_))));
        // State unchanged after the rejected insert.
        assert_eq!(db.state().num_rows(), 1);
    }

    #[test]
    fn foreign_keys_enforced_both_ways() {
        let mut db = sample_db();
        let err = db.insert("Program_Paper", vec![v("A1"), v("S1")]);
        assert!(err.is_err(), "dangling FK accepted");
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
        // Deleting the referenced paper violates the FK.
        let err = db.delete_where("Paper", &[Pred::Eq("Paper_Id".into(), Value::str("P1"))]);
        assert!(err.is_err());
    }

    #[test]
    fn update_where_works_and_validates() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        db.insert("Paper", vec![v("P2"), None]).unwrap();
        let n = db
            .update_where(
                "Paper",
                &[Pred::Eq("Paper_Id".into(), Value::str("P2"))],
                &[("Program_Id", v("A9"))],
            )
            .unwrap();
        assert_eq!(n, 1);
        // Updating both papers to the same key collides.
        let err = db.update_where("Paper", &[], &[("Paper_Id", v("SAME"))]);
        assert!(err.is_err());
        assert_eq!(db.state().num_rows(), 2);
    }

    #[test]
    fn select_with_join_and_filter() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.insert("Paper", vec![v("P2"), None]).unwrap();
        db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
        let q = Query::from("Paper")
            .join("Program_Paper", &[("Program_Id", "Program_Id")])
            .select(&["Paper_Id", "Session"]);
        let rows = db.select(&q).unwrap();
        assert_eq!(rows, vec![vec![v("P1"), v("S1")]]);
        let q2 = Query::from("Paper")
            .select(&["Paper_Id"])
            .filter(Pred::IsNull("Program_Id".into()));
        assert_eq!(db.select(&q2).unwrap(), vec![vec![v("P2")]]);
    }

    #[test]
    fn views_are_named_queries() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        db.create_view("V_ALL_PAPERS", Query::from("Paper").select(&["Paper_Id"]));
        assert_eq!(db.view_names(), vec!["V_ALL_PAPERS"]);
        assert_eq!(db.select_view("V_ALL_PAPERS").unwrap().len(), 1);
        assert!(db.select_view("NOPE").is_err());
    }

    #[test]
    fn transactions_roll_back_and_defer_checks() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.begin();
        // Within the transaction, load the FK target *after* the source.
        db.insert_unchecked("Program_Paper", vec![v("A2"), v("S2")])
            .unwrap();
        db.insert_unchecked("Paper", vec![v("P2"), v("A2")])
            .unwrap();
        db.commit().unwrap();
        assert_eq!(db.state().num_rows(), 3);

        db.begin();
        db.insert_unchecked("Program_Paper", vec![v("A9"), v("S9")])
            .unwrap();
        let err = db.commit();
        assert!(err.is_err());
        assert_eq!(db.state().num_rows(), 3, "commit rolled back");

        db.begin();
        db.insert_unchecked("Paper", vec![v("P3"), None]).unwrap();
        db.rollback().unwrap();
        assert_eq!(db.state().num_rows(), 3);
        assert!(db.commit().is_err()); // no open transaction
    }

    #[test]
    fn nested_transactions_unwind_independently() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        db.begin();
        db.insert_unchecked("Paper", vec![v("P2"), None]).unwrap();
        db.begin();
        db.insert_unchecked("Paper", vec![v("P3"), None]).unwrap();
        // Inner rollback drops only P3.
        db.rollback().unwrap();
        assert_eq!(db.state().num_rows(), 2);
        // Outer commit keeps P2.
        db.commit().unwrap();
        assert_eq!(db.state().num_rows(), 2);
        assert!(db.rollback().is_err(), "no transaction left");
    }

    #[test]
    fn selection_execution_matches_state_select() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.insert("Paper", vec![v("P2"), None]).unwrap();
        db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
        let sel = ColumnSelection::of(TableId(0), vec![0]).where_not_null(vec![1]);
        let rows = db.select_selection(&sel);
        assert_eq!(rows, vec![vec![v("P1")]]);
    }

    #[test]
    fn bad_schema_rejected() {
        let mut s = RelSchema::new("bad");
        s.add_named(RelConstraintKind::PrimaryKey {
            table: TableId(7),
            cols: vec![0],
        });
        assert!(matches!(
            Database::create(s),
            Err(EngineError::BadSchema(_))
        ));
    }
}

//! The database proper: constraint-checked storage plus the query executor.

use std::collections::HashMap;
use std::fmt;

use ridl_brm::Value;
use ridl_relational::{
    parallel, validate_delta, validate_load, ColumnSelection, ConstraintIndexes, Delta, DeltaOp,
    RelSchema, RelState, RelViolation, Row, TableId,
};

use crate::query::{Pred, Query};
use crate::report::{EnforcementReport, QueryExplain};

/// How mutations are checked against the schema's constraints.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ValidationMode {
    /// Delta validation: only constraints reachable from the touched rows
    /// are checked, via O(1) probes on the maintained
    /// [`ConstraintIndexes`]. O(change) per mutation. The default.
    #[default]
    Incremental,
    /// Re-validate the entire state on every mutation. O(database) per
    /// mutation; kept as the oracle and for benchmarking the difference.
    FullState,
}

/// One operation of a mutation batch, addressed by table name (the
/// engine's external interface). See [`Database::apply_batch`].
#[derive(Clone, PartialEq, Debug)]
pub enum BatchOp {
    /// Insert a row. A row already present when the batch reaches this op
    /// rejects the whole batch (set semantics: a duplicate insert is
    /// almost always a key violation in disguise, mirroring
    /// [`Database::insert`]).
    Insert {
        /// Target table name.
        table: String,
        /// The row.
        row: Row,
    },
    /// Delete one exact row. Deleting a row that is absent when the batch
    /// reaches this op is a no-op, mirroring a `delete_where` that
    /// matches nothing.
    Delete {
        /// Target table name.
        table: String,
        /// The row.
        row: Row,
    },
}

impl BatchOp {
    /// An insert op.
    pub fn insert(table: impl Into<String>, row: Row) -> Self {
        BatchOp::Insert {
            table: table.into(),
            row,
        }
    }

    /// A delete op.
    pub fn delete(table: impl Into<String>, row: Row) -> Self {
        BatchOp::Delete {
            table: table.into(),
            row,
        }
    }
}

/// Errors raised by the engine.
#[derive(Clone, PartialEq, Debug)]
pub enum EngineError {
    /// The schema definition itself is inconsistent.
    BadSchema(Vec<String>),
    /// A named table/column/view does not exist.
    Unknown(String),
    /// A column reference matches several columns of a joined relation
    /// (e.g. an unqualified name in a self-join); qualify it.
    Ambiguous(String),
    /// A statement would violate constraints; the update was rolled back.
    ConstraintViolation(Vec<RelViolation>),
    /// Transaction misuse (commit/rollback without begin).
    NoTransaction,
    /// A durability I/O failure (WAL append/fsync or checkpoint write).
    /// The in-memory statement was rolled back.
    Io(String),
    /// A previous WAL write failed, so the log no longer matches the
    /// state; mutations are refused until a successful
    /// [`Database::checkpoint`] re-establishes a durable base.
    WalPoisoned,
    /// [`Database::checkpoint`] was called while a transaction is open —
    /// a snapshot would capture uncommitted changes.
    CheckpointInTransaction,
    /// The on-disk store is corrupt beyond what recovery can repair
    /// (e.g. the WAL requires a checkpoint that no longer decodes).
    Corrupt(String),
    /// The on-disk store was written under a different schema.
    SchemaMismatch,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BadSchema(errs) => write!(f, "bad schema: {}", errs.join("; ")),
            EngineError::Unknown(what) => write!(f, "unknown object: {what}"),
            EngineError::Ambiguous(what) => write!(f, "ambiguous reference: {what}"),
            EngineError::ConstraintViolation(v) => {
                write!(f, "constraint violation: ")?;
                for x in v.iter().take(3) {
                    write!(f, "[{x}] ")?;
                }
                Ok(())
            }
            EngineError::NoTransaction => write!(f, "no open transaction"),
            EngineError::Io(e) => write!(f, "durability I/O failure: {e}"),
            EngineError::WalPoisoned => write!(
                f,
                "WAL poisoned by an earlier write failure; checkpoint to resume"
            ),
            EngineError::CheckpointInTransaction => {
                write!(f, "cannot checkpoint while a transaction is open")
            }
            EngineError::Corrupt(e) => write!(f, "store corrupt: {e}"),
            EngineError::SchemaMismatch => {
                write!(f, "store was written under a different schema")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// An in-memory, constraint-enforcing relational database.
///
/// Mutations are O(change), not O(database): the engine maintains
/// [`ConstraintIndexes`] next to the state, validates each statement's
/// delta with [`validate_delta`], and rolls back by replaying an **undo
/// log** of inverse row operations — no state snapshot is ever cloned,
/// neither per statement nor per transaction.
pub struct Database {
    pub(crate) schema: RelSchema,
    pub(crate) state: RelState,
    indexes: ConstraintIndexes,
    pub(crate) views: HashMap<String, Query>,
    /// Applied row operations since the outermost transaction began (or
    /// since the last statement, outside transactions). Rolling back means
    /// replaying a suffix in reverse with each op inverted.
    pub(crate) undo: Vec<DeltaOp>,
    /// Undo-log positions where each open transaction began.
    pub(crate) txn_marks: Vec<usize>,
    mode: ValidationMode,
    /// Set while `insert_unchecked` rows await their deferred check; delta
    /// validation's valid-pre-state precondition is broken until a full
    /// validation succeeds at an *irrevocable* point — the outermost
    /// `commit`, a full-falling-back statement outside any transaction
    /// (both past their WAL append), or `load_state` — so enforcement runs
    /// full-state meanwhile. A full scan at a revertible point (inside a
    /// transaction, or before the WAL append succeeds) never discharges
    /// the flag: the scanned suffix could be rolled back while an
    /// uncovered unchecked row survives in the state.
    pub(crate) has_unchecked: bool,
    /// Undo-log position of the earliest unchecked op still in the log —
    /// when a rollback reverts past it, the unchecked rows are gone and
    /// `has_unchecked` resets. `None` while clean, or when unchecked rows
    /// are no longer covered by the undo log (outside transactions).
    unchecked_mark: Option<usize>,
    /// True while at least one unchecked row has already left the undo
    /// log (committed outside a transaction, or replayed from the WAL).
    /// Such a row can never be reverted away, so no rollback may clear
    /// `has_unchecked` while this is set — only a successful full-state
    /// validation does.
    pub(crate) unchecked_uncovered: bool,
    /// The most recent statement's enforcement report.
    last_report: Option<EnforcementReport>,
    /// Durability wiring; `None` for a purely in-memory database.
    pub(crate) wal: Option<crate::durable::WalHandle>,
    /// The recovery report produced when this database was opened from a
    /// store directory.
    pub(crate) recovery: Option<ridl_durable::RecoveryReport>,
}

impl Database {
    /// Creates an empty database over a schema.
    pub fn create(schema: RelSchema) -> Result<Self, EngineError> {
        let errs = schema.check_ids();
        if !errs.is_empty() {
            return Err(EngineError::BadSchema(errs));
        }
        let state = RelState::with_tables(schema.tables.len());
        let indexes = ConstraintIndexes::build(&schema, &state);
        Ok(Self {
            schema,
            state,
            indexes,
            views: HashMap::new(),
            undo: Vec::new(),
            txn_marks: Vec::new(),
            mode: ValidationMode::default(),
            has_unchecked: false,
            unchecked_mark: None,
            unchecked_uncovered: false,
            last_report: None,
            wal: None,
            recovery: None,
        })
    }

    /// Refuses mutations while the WAL is poisoned: after a failed
    /// append/fsync the log no longer reflects the state, so anything
    /// committed now could be silently lost on crash. A successful
    /// [`Database::checkpoint`] re-establishes a durable base and clears
    /// the flag.
    fn ensure_writable(&self) -> Result<(), EngineError> {
        match &self.wal {
            Some(w) if w.is_poisoned() => Err(EngineError::WalPoisoned),
            _ => Ok(()),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The raw state (e.g. to compare against a state map's output).
    pub fn state(&self) -> &RelState {
        &self.state
    }

    /// The constraint indexes maintained alongside the state.
    pub fn indexes(&self) -> &ConstraintIndexes {
        &self.indexes
    }

    /// Selects how mutations are validated (delta probes vs full re-scan).
    pub fn set_validation_mode(&mut self, mode: ValidationMode) {
        self.mode = mode;
    }

    /// The active validation mode.
    pub fn validation_mode(&self) -> ValidationMode {
        self.mode
    }

    /// Replaces the whole state, validating it first (in parallel for
    /// large states) and rebuilding the constraint indexes. Any open
    /// transactions are discarded.
    pub fn load_state(&mut self, state: RelState) -> Result<(), EngineError> {
        self.ensure_writable()?;
        let mut span = ridl_obs::span::enter("engine.load_state");
        if span.is_recording() {
            span.attr("rows", state.num_rows());
        }
        let violations = parallel::validate_parallel(&self.schema, &state);
        if !violations.is_empty() {
            return Err(EngineError::ConstraintViolation(violations));
        }
        // Durable stores checkpoint the incoming state *before* the swap:
        // a checkpoint failure aborts the load with both the memory and
        // the on-disk store still holding the old state. Always a full
        // base — the dirty-extent set describes the *current* state, not
        // this candidate.
        self.wal_checkpoint_of(&state, true)?;
        self.indexes = ConstraintIndexes::build(&self.schema, &state);
        self.state = state;
        self.undo.clear();
        self.txn_marks.clear();
        self.has_unchecked = false;
        self.unchecked_mark = None;
        self.unchecked_uncovered = false;
        Ok(())
    }

    fn table_id(&self, name: &str) -> Result<TableId, EngineError> {
        self.schema
            .table_by_name(name)
            .ok_or_else(|| EngineError::Unknown(format!("table {name}")))
    }

    /// Applies one row operation to the state and indexes, recording it in
    /// the undo log. Returns false (recording nothing) when the state
    /// already absorbed it (duplicate insert / missing removal).
    pub(crate) fn apply(&mut self, op: DeltaOp) -> bool {
        let changed = match &op {
            DeltaOp::Insert { table, row } => {
                let done = self.state.insert(*table, row.clone());
                if done {
                    self.indexes.note_insert(*table, row);
                }
                done
            }
            DeltaOp::Remove { table, row } => {
                let done = self.state.remove(*table, row);
                if done {
                    self.indexes.note_remove(*table, row);
                }
                done
            }
        };
        if changed {
            let (DeltaOp::Insert { table, row } | DeltaOp::Remove { table, row }) = &op;
            self.note_dirty(*table, row);
            self.undo.push(op);
        }
        changed
    }

    /// Replays the undo log down to `mark`, inverting each operation. When
    /// the reverted suffix contains every pending unchecked op, the
    /// deferred-check flag resets — incremental validation resumes instead
    /// of permanently falling back to full-state scans.
    fn revert_to(&mut self, mark: usize) {
        let n = self.undo.len().saturating_sub(mark);
        if n > 0 {
            ridl_obs::metrics().reverts.inc();
            ridl_obs::metrics().reverted_ops.add(n as u64);
        }
        while self.undo.len() > mark {
            // Reverting re-dirties the extent: its content moved twice
            // (apply + revert) since the last checkpoint. Conservative —
            // the net change may be zero — but cheap and always safe.
            match self.undo.pop().expect("undo entry") {
                DeltaOp::Insert { table, row } => {
                    self.state.remove(table, &row);
                    self.indexes.note_remove(table, &row);
                    self.note_dirty(table, &row);
                }
                DeltaOp::Remove { table, row } => {
                    self.indexes.note_insert(table, &row);
                    self.note_dirty(table, &row);
                    self.state.insert(table, row);
                }
            }
        }
        if self.unchecked_mark.is_some_and(|w| mark <= w) {
            self.unchecked_mark = None;
            // Reverting past the covered watermark only discharges the
            // deferred check if no unchecked row has already left the
            // undo log — an uncovered one survives every rollback.
            if !self.unchecked_uncovered {
                self.has_unchecked = false;
            }
        }
    }

    /// Statement epilogue: validates the ops recorded since `mark`
    /// (O(change) in [`ValidationMode::Incremental`]), reverting them on
    /// violation. Outside transactions a clean statement also drains the
    /// undo log — nothing left to roll back to.
    ///
    /// Incremental validation runs on the **net** delta: inverse pairs on
    /// the same row cancel before probing, so a batch (or an identity
    /// update) that touches a row and puts it back is judged by what
    /// actually changed — the same verdict full re-validation of the
    /// post-state gives.
    pub(crate) fn finish_statement(
        &mut self,
        mark: usize,
        statement: &'static str,
    ) -> Result<(), EngineError> {
        let m = ridl_obs::metrics();
        let detail = ridl_obs::detail_enabled();
        let before = if detail {
            Some(ridl_obs::snapshot())
        } else {
            None
        };
        let sw = ridl_obs::Stopwatch::start();
        let mut span = ridl_obs::span::enter("engine.statement");
        let ops = self.undo.len() - mark;
        let net = Delta {
            ops: self.undo[mark..].to_vec(),
        }
        .net();
        // While deferred (unchecked) rows are pending, the delta
        // validator's valid-pre-state precondition is broken, so a checked
        // statement falls back to a full scan; a clean full scan also
        // discharges the deferred check.
        let (strategy, violations) = match self.mode {
            ValidationMode::Incremental if !self.has_unchecked => (
                "delta",
                validate_delta(&self.schema, &self.state, &self.indexes, &net),
            ),
            _ => (
                "full",
                parallel::validate_parallel(&self.schema, &self.state),
            ),
        };
        if span.is_recording() {
            span.attr("statement", statement);
            span.attr("strategy", strategy);
            span.attr("ops", ops);
            span.attr("net_ops", net.len());
            span.attr("violations", violations.len());
        }
        m.statements.inc();
        if strategy == "delta" {
            m.statements_delta.inc();
        } else {
            m.statements_full.inc();
        }
        m.undo_high_water.raise_to(self.undo.len() as u64);
        let ok = violations.is_empty();
        let diff = before.map(|b| ridl_obs::snapshot().since(&b));
        let report = EnforcementReport {
            statement,
            mode: self.mode,
            strategy,
            ops,
            net_ops: net.len(),
            violations: violations.len(),
            reverted: !ok,
            key_probes: diff.as_ref().map_or(0, |d| d.counter("index.key_probes")),
            sel_probes: diff.as_ref().map_or(0, |d| d.counter("index.sel_probes")),
            undo_depth: self.undo.len(),
            duration_ns: sw.elapsed_ns(),
            per_kind: diff
                .as_ref()
                .map(EnforcementReport::per_kind_from)
                .unwrap_or_default(),
        };
        ridl_obs::emit("engine.statement", report.duration_ns, &report.summary());
        self.last_report = Some(report);
        if !ok {
            // Statement-level flight-recorder events are part of the
            // durability record, so only durable databases pay for them.
            if self.wal.is_some() {
                ridl_obs::journal::record(
                    ridl_obs::Severity::Warn,
                    "stmt.abort",
                    vec![
                        ("statement", statement.into()),
                        ("ops", ops.into()),
                        ("violations", violations.len().into()),
                    ],
                );
            }
            self.revert_to(mark);
            return Err(EngineError::ConstraintViolation(violations));
        }
        // A clean full scan discharges the deferred check only at an
        // *irrevocable* point: outside any transaction, once the WAL
        // append has succeeded. Inside a transaction (or on a WAL
        // failure) the validated suffix can still be reverted while an
        // uncovered unchecked row survives the revert, so discharging
        // here would let a later checkpoint persist the (possibly
        // invalid) post-revert state unvalidated.
        let discharged = strategy == "full" && self.has_unchecked && self.txn_marks.is_empty();
        if self.txn_marks.is_empty() {
            // Outside transactions a clean statement is a commit point:
            // append it to the WAL (with its commit marker) before
            // draining the undo log. A WAL failure reverts the statement
            // — the caller sees an error, and the state never diverges
            // from what the log can reconstruct. The revert runs with the
            // deferred-check flags still set (see `discharged` above).
            if let Err(e) = self.wal_commit(mark, true) {
                ridl_obs::journal::record(
                    ridl_obs::Severity::Error,
                    "stmt.abort",
                    vec![("statement", statement.into()), ("reason", "wal".into())],
                );
                self.revert_to(mark);
                return Err(e);
            }
            if self.wal.is_some() {
                ridl_obs::journal::record(
                    ridl_obs::Severity::Debug,
                    "stmt.commit",
                    vec![
                        ("statement", statement.into()),
                        ("ops", ops.into()),
                        ("strategy", strategy.into()),
                    ],
                );
            }
        }
        if discharged {
            // The clean full scan covered every deferred row, and the
            // statement is past its only failure point — irrevocable.
            self.has_unchecked = false;
            self.unchecked_mark = None;
            self.unchecked_uncovered = false;
        }
        self.debug_check_equivalence();
        if self.txn_marks.is_empty() {
            self.undo.clear();
            self.maybe_auto_checkpoint();
        }
        Ok(())
    }

    /// The enforcement report of the most recent mutating statement —
    /// which validation strategy ran, the (net) delta size, and, while the
    /// obs detail gate is on, probe counts and per-constraint-class
    /// timings. `None` until the first statement runs.
    pub fn last_statement_report(&self) -> Option<&EnforcementReport> {
        self.last_report.as_ref()
    }

    /// Debug oracle: a state the delta validator accepted must also satisfy
    /// the full validator, and the incremental indexes must equal a fresh
    /// build. Compiled out of release builds; skipped while unchecked rows
    /// make the precondition (valid pre-state) false.
    fn debug_check_equivalence(&self) {
        #[cfg(debug_assertions)]
        {
            use ridl_relational::validate;
            if self.mode == ValidationMode::Incremental && !self.has_unchecked {
                let full = validate::validate(&self.schema, &self.state);
                debug_assert!(
                    full.is_empty(),
                    "delta validation accepted a state the full validator rejects: {full:?}"
                );
                debug_assert!(
                    self.indexes.consistent_with(&self.schema, &self.state),
                    "constraint indexes drifted from the state"
                );
            }
        }
    }

    /// Inserts a row, enforcing every constraint; rolls back on violation.
    /// Re-inserting an existing row is rejected (relations are sets; a
    /// duplicate insert is almost always a key violation in disguise).
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), EngineError> {
        self.ensure_writable()?;
        let tid = self.table_id(table)?;
        let mark = self.undo.len();
        if !self.apply(DeltaOp::Insert { table: tid, row }) {
            return Err(EngineError::ConstraintViolation(vec![RelViolation {
                constraint: "DUPLICATE".into(),
                detail: format!("row already present in {table}"),
            }]));
        }
        self.finish_statement(mark, "insert")
    }

    /// Inserts without constraint checking (bulk load within transactions;
    /// `commit` or `load_state` re-validates). The row still enters the
    /// undo log, so `rollback` undoes it.
    pub fn insert_unchecked(&mut self, table: &str, row: Row) -> Result<(), EngineError> {
        self.ensure_writable()?;
        let tid = self.table_id(table)?;
        let pos = self.undo.len();
        if self.apply(DeltaOp::Insert { table: tid, row }) {
            let was_unchecked = self.has_unchecked;
            self.has_unchecked = true;
            if self.txn_marks.is_empty() {
                // Outside a transaction the row is a commit point like any
                // other statement, logged as an *unchecked* unit so replay
                // defers its check too. A WAL failure reverts it.
                if let Err(e) = self.wal_commit(pos, false) {
                    self.revert_to(pos);
                    self.has_unchecked = was_unchecked;
                    return Err(e);
                }
                // The op leaves the undo log immediately: the unchecked row
                // can no longer be reverted away, so no watermark to track
                // — and no later rollback may discharge the deferred check.
                self.undo.clear();
                self.unchecked_mark = None;
                self.unchecked_uncovered = true;
            } else if self.unchecked_mark.is_none() {
                self.unchecked_mark = Some(pos);
            }
        }
        let m = ridl_obs::metrics();
        m.statements.inc();
        m.statements_deferred.inc();
        self.last_report = Some(EnforcementReport {
            statement: "insert_unchecked",
            mode: self.mode,
            strategy: "deferred",
            ops: 1,
            net_ops: 1,
            violations: 0,
            reverted: false,
            key_probes: 0,
            sel_probes: 0,
            undo_depth: self.undo.len(),
            duration_ns: 0,
            per_kind: Vec::new(),
        });
        Ok(())
    }

    /// Deletes the rows matching the predicate; returns how many went.
    /// Single pass: only the matching rows are copied (into the undo log),
    /// never the state. A predicate naming an unknown column is an error
    /// — it does not silently match zero rows.
    pub fn delete_where(&mut self, table: &str, preds: &[Pred]) -> Result<usize, EngineError> {
        self.ensure_writable()?;
        let tid = self.table_id(table)?;
        let mark = self.undo.len();
        let matching = self.matching_rows(tid, preds)?;
        let n = matching.len();
        for row in matching {
            self.apply(DeltaOp::Remove { table: tid, row });
        }
        self.finish_statement(mark, "delete_where")?;
        Ok(n)
    }

    /// The rows of `tid` matching every predicate, propagating predicate
    /// errors (unknown column) instead of treating them as non-matches.
    fn matching_rows(&self, tid: TableId, preds: &[Pred]) -> Result<Vec<Row>, EngineError> {
        let mut matching = Vec::new();
        for row in self.state.rows(tid) {
            if self.row_matches(tid, row, preds)? {
                matching.push(row.clone());
            }
        }
        Ok(matching)
    }

    /// Updates matching rows by setting columns; returns how many changed.
    /// Each matching row becomes one remove + one insert in the undo log.
    /// An assigned row that collides with an existing row rejects the
    /// whole statement with a `DUPLICATE` violation (set semantics — a
    /// silent merge would under-report the row count and lose data),
    /// matching [`Database::apply_batch`]. Predicate errors propagate.
    pub fn update_where(
        &mut self,
        table: &str,
        preds: &[Pred],
        assignments: &[(&str, Option<Value>)],
    ) -> Result<usize, EngineError> {
        self.ensure_writable()?;
        let tid = self.table_id(table)?;
        let cols: Vec<(u32, Option<Value>)> = assignments
            .iter()
            .map(|(name, v)| {
                self.schema
                    .table(tid)
                    .column_by_name(name)
                    .map(|c| (c, v.clone()))
                    .ok_or_else(|| EngineError::Unknown(format!("column {name}")))
            })
            .collect::<Result<_, _>>()?;
        let mark = self.undo.len();
        let matching = self.matching_rows(tid, preds)?;
        let n = matching.len();
        for row in matching {
            let mut new_row = row.clone();
            for (c, v) in &cols {
                new_row[*c as usize] = v.clone();
            }
            self.apply(DeltaOp::Remove { table: tid, row });
            if !self.apply(DeltaOp::Insert {
                table: tid,
                row: new_row,
            }) {
                self.revert_to(mark);
                return Err(EngineError::ConstraintViolation(vec![RelViolation {
                    constraint: "DUPLICATE".into(),
                    detail: format!("updated row already present in {table}"),
                }]));
            }
        }
        self.finish_statement(mark, "update_where")?;
        Ok(n)
    }

    // ---- batched mutations ----

    /// Applies a group of inserts and deletes as **one statement**: every
    /// op runs under a single undo-log watermark, the accumulated delta is
    /// validated once (netted, so inverse pairs cancel), and on rejection
    /// the entire batch is reverted — group commit, all or nothing.
    ///
    /// Because validation sees the batch as a whole, a batch may pass
    /// through states its individual ops could not: deleting a
    /// foreign-key target and re-inserting its replacement in the same
    /// batch is legal, where the lone delete would be rejected.
    ///
    /// Table names are resolved before anything is applied, so an unknown
    /// name mutates nothing. Returns how many row operations changed the
    /// state (deletes of absent rows are no-ops and do not count).
    pub fn apply_batch(
        &mut self,
        ops: impl IntoIterator<Item = BatchOp>,
    ) -> Result<usize, EngineError> {
        self.ensure_writable()?;
        let ops: Vec<(TableId, bool, Row)> = ops
            .into_iter()
            .map(|op| match op {
                BatchOp::Insert { table, row } => self.table_id(&table).map(|t| (t, true, row)),
                BatchOp::Delete { table, row } => self.table_id(&table).map(|t| (t, false, row)),
            })
            .collect::<Result<_, _>>()?;
        ridl_obs::metrics().batches.inc();
        ridl_obs::metrics().batch_ops.add(ops.len() as u64);
        let mark = self.undo.len();
        let mut changed = 0usize;
        for (tid, is_insert, row) in ops {
            if is_insert {
                if !self.apply(DeltaOp::Insert { table: tid, row }) {
                    let name = self.schema.table(tid).name.clone();
                    self.revert_to(mark);
                    return Err(EngineError::ConstraintViolation(vec![RelViolation {
                        constraint: "DUPLICATE".into(),
                        detail: format!("row already present in {name}"),
                    }]));
                }
                changed += 1;
            } else if self.apply(DeltaOp::Remove { table: tid, row }) {
                changed += 1;
            }
        }
        self.finish_statement(mark, "batch")?;
        Ok(changed)
    }

    /// Replaces the whole state by **streaming** rows through freshly
    /// charged constraint indexes (tables partitioned across cores for
    /// large loads), then checking each constraint **in aggregate** over
    /// its counters — O(distinct projections) per constraint plus one
    /// hash-free structural pass, instead of the per-constraint state
    /// scans of [`Database::load_state`].
    ///
    /// Sound because the empty pre-state is trivially valid, so the
    /// charged counters summarise exactly the loaded state. Duplicate
    /// rows are absorbed silently (relations are sets); the returned
    /// count is the number of distinct rows loaded. On violation (or an
    /// out-of-range table id) the database is left untouched — the load
    /// builds aside and swaps in only on success. Open transactions are
    /// discarded on success, as with `load_state`.
    pub fn bulk_load(
        &mut self,
        rows: impl IntoIterator<Item = (TableId, Row)>,
    ) -> Result<usize, EngineError> {
        self.ensure_writable()?;
        let mut state = RelState::with_tables(self.schema.tables.len());
        let mut loaded = 0usize;
        for (tid, row) in rows {
            if tid.index() >= self.schema.tables.len() {
                return Err(EngineError::Unknown(format!(
                    "table id {} (schema has {})",
                    tid.index(),
                    self.schema.tables.len()
                )));
            }
            if state.insert(tid, row) {
                loaded += 1;
            }
        }
        let m = ridl_obs::metrics();
        let detail = ridl_obs::detail_enabled();
        let before = if detail {
            Some(ridl_obs::snapshot())
        } else {
            None
        };
        let sw = ridl_obs::Stopwatch::start();
        let mut span = ridl_obs::span::enter("engine.statement");
        if span.is_recording() {
            span.attr("statement", "bulk_load");
            span.attr("strategy", "aggregate");
            span.attr("rows", loaded);
        }
        let indexes = ConstraintIndexes::build(&self.schema, &state);
        let violations = validate_load(&self.schema, &state, &indexes);
        m.statements.inc();
        m.statements_aggregate.inc();
        m.bulk_loads.inc();
        m.bulk_rows.add(loaded as u64);
        let diff = before.map(|b| ridl_obs::snapshot().since(&b));
        let report = EnforcementReport {
            statement: "bulk_load",
            mode: self.mode,
            strategy: "aggregate",
            ops: loaded,
            net_ops: loaded,
            violations: violations.len(),
            reverted: !violations.is_empty(),
            key_probes: diff.as_ref().map_or(0, |d| d.counter("index.key_probes")),
            sel_probes: diff.as_ref().map_or(0, |d| d.counter("index.sel_probes")),
            undo_depth: 0,
            duration_ns: sw.elapsed_ns(),
            per_kind: diff
                .as_ref()
                .map(EnforcementReport::per_kind_from)
                .unwrap_or_default(),
        };
        ridl_obs::emit("engine.statement", report.duration_ns, &report.summary());
        self.last_report = Some(report);
        if !violations.is_empty() {
            return Err(EngineError::ConstraintViolation(violations));
        }
        // Durable stores checkpoint the loaded state before swapping it
        // in, so a failure leaves memory and disk both on the old state
        // (logging every row through the WAL would double-write the
        // load). Always a full base — the dirty-extent set describes the
        // current state, not this candidate.
        self.wal_checkpoint_of(&state, true)?;
        self.state = state;
        self.indexes = indexes;
        self.undo.clear();
        self.txn_marks.clear();
        self.has_unchecked = false;
        self.unchecked_mark = None;
        self.unchecked_uncovered = false;
        self.debug_check_equivalence();
        Ok(loaded)
    }

    fn col_by_name(&self, tid: TableId, name: &str) -> Option<u32> {
        // Accept both bare and `Table.col` qualified names.
        let bare = name.rsplit('.').next().unwrap_or(name);
        if let Some(prefix) = name.strip_suffix(&format!(".{bare}")) {
            if self.schema.table(tid).name != prefix {
                return None;
            }
        }
        self.schema.table(tid).column_by_name(bare)
    }

    fn row_matches(&self, tid: TableId, row: &Row, preds: &[Pred]) -> Result<bool, EngineError> {
        for p in preds {
            let col_of = |c: &String| -> Result<usize, EngineError> {
                self.col_by_name(tid, c)
                    .map(|i| i as usize)
                    .ok_or_else(|| EngineError::Unknown(format!("column {c}")))
            };
            let ok = match p {
                Pred::Eq(c, v) => row[col_of(c)?].as_ref() == Some(v),
                Pred::IsNull(c) => row[col_of(c)?].is_none(),
                Pred::NotNull(c) => row[col_of(c)?].is_some(),
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    // ---- queries ----

    /// Runs a query; rows carry the projected columns in order.
    pub fn select(&self, q: &Query) -> Result<Vec<Row>, EngineError> {
        execute_query(&self.schema, &self.state, q, &mut None)
    }

    /// Executes a query while recording its plan: each step (scan, join,
    /// filter, project) with the rows it actually produced. Row counts are
    /// measured, not estimated — the point is seeing where rows multiply
    /// or vanish in a nested-loop join.
    pub fn explain(&self, q: &Query) -> Result<QueryExplain, EngineError> {
        explain_query(&self.schema, &self.state, q)
    }

    /// Executes a [`ColumnSelection`] — a forwards-map SELECT — directly.
    pub fn select_selection(&self, sel: &ColumnSelection) -> Vec<Row> {
        self.state
            .select_where(sel.table, &sel.cols, &sel.not_null, &sel.eq)
            .into_iter()
            .collect()
    }

    // ---- views ----

    /// Defines a named view (the "open" meta-database interface, §3.1).
    pub fn create_view(&mut self, name: impl Into<String>, q: Query) {
        self.views.insert(name.into(), q);
    }

    /// Runs a named view.
    pub fn select_view(&self, name: &str) -> Result<Vec<Row>, EngineError> {
        let q = self
            .views
            .get(name)
            .ok_or_else(|| EngineError::Unknown(format!("view {name}")))?;
        self.select(q)
    }

    /// Names of the defined views.
    pub fn view_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.views.keys().map(String::as_str).collect();
        v.sort();
        v
    }

    // ---- transactions ----

    /// Opens a transaction. O(1): just an undo-log watermark, no snapshot.
    pub fn begin(&mut self) {
        self.txn_marks.push(self.undo.len());
    }

    /// Commits the innermost transaction, validating the final state in
    /// full (the deferred check that makes `insert_unchecked` safe). On
    /// violation the transaction's changes are rolled back via the undo
    /// log.
    pub fn commit(&mut self) -> Result<(), EngineError> {
        let mark = self.txn_marks.pop().ok_or(EngineError::NoTransaction)?;
        let m = ridl_obs::metrics();
        let sw = ridl_obs::Stopwatch::start();
        let violations = parallel::validate_parallel(&self.schema, &self.state);
        m.statements.inc();
        m.statements_full.inc();
        let report = EnforcementReport {
            statement: "commit",
            mode: self.mode,
            strategy: "full",
            ops: self.undo.len() - mark,
            net_ops: self.undo.len() - mark,
            violations: violations.len(),
            reverted: !violations.is_empty(),
            key_probes: 0,
            sel_probes: 0,
            undo_depth: self.undo.len(),
            duration_ns: sw.elapsed_ns(),
            per_kind: Vec::new(),
        };
        ridl_obs::emit("engine.statement", report.duration_ns, &report.summary());
        self.last_report = Some(report);
        if violations.is_empty() {
            if self.txn_marks.is_empty() {
                // The outermost commit logs the whole transaction as one
                // WAL unit: statements inside a transaction touch the log
                // only here, once they are actually durable-committable.
                //
                // The deferred-check flags are cleared only once the WAL
                // append succeeds: the failure path reverts with the flags
                // intact, and `revert_to` discharges them only when the
                // reverted suffix covers every unchecked op. An uncovered
                // unchecked row (its op already drained from the undo log)
                // keeps forcing full validation, so the post-revert state
                // — which may no longer satisfy the constraints — cannot
                // be checkpointed unvalidated.
                if let Err(e) = self.wal_commit(mark, true) {
                    ridl_obs::journal::record(
                        ridl_obs::Severity::Error,
                        "stmt.abort",
                        vec![("statement", "commit".into()), ("reason", "wal".into())],
                    );
                    self.revert_to(mark);
                    return Err(e);
                }
                if self.wal.is_some() {
                    ridl_obs::journal::record(
                        ridl_obs::Severity::Debug,
                        "stmt.commit",
                        vec![
                            ("statement", "commit".into()),
                            ("ops", (self.undo.len() - mark).into()),
                        ],
                    );
                }
                self.has_unchecked = false;
                self.unchecked_mark = None;
                self.unchecked_uncovered = false;
                self.undo.clear();
                self.maybe_auto_checkpoint();
            }
            // An inner commit is NOT an irrevocable point: the enclosing
            // transaction can still roll this suffix back while an
            // uncovered unchecked row survives the revert, so the
            // deferred-check flags stay set until the outermost commit.
            Ok(())
        } else {
            // A failed commit reverts the transaction; if that suffix held
            // every unchecked op, `revert_to` resets the deferred flag.
            if self.wal.is_some() {
                ridl_obs::journal::record(
                    ridl_obs::Severity::Warn,
                    "stmt.abort",
                    vec![
                        ("statement", "commit".into()),
                        ("ops", (self.undo.len() - mark).into()),
                        ("violations", violations.len().into()),
                    ],
                );
            }
            self.revert_to(mark);
            Err(EngineError::ConstraintViolation(violations))
        }
    }

    /// Rolls back the innermost transaction by replaying its undo-log
    /// suffix in reverse. O(changes in the transaction). Rolling back the
    /// suffix containing every pending unchecked op resets the
    /// deferred-check flag, so incremental validation resumes.
    pub fn rollback(&mut self) -> Result<(), EngineError> {
        let mark = self.txn_marks.pop().ok_or(EngineError::NoTransaction)?;
        self.revert_to(mark);
        Ok(())
    }
}

/// Runs a query against an arbitrary `(schema, state)` pair. This is the
/// whole query executor as a free function, so read-only handles — the
/// [`Database`] itself, but also [`crate::snapshot::ReadSnapshot`] versions
/// frozen for concurrent sessions — execute identical plans over whatever
/// state they hold, through `&self`.
pub(crate) fn execute_query(
    schema: &RelSchema,
    state: &RelState,
    q: &Query,
    explain: &mut Option<QueryExplain>,
) -> Result<Vec<Row>, EngineError> {
    let table_id = |name: &str| -> Result<TableId, EngineError> {
        schema
            .table_by_name(name)
            .ok_or_else(|| EngineError::Unknown(format!("table {name}")))
    };
    // Assemble the joined relation as (qualified name -> index) + rows.
    let tid = table_id(&q.table)?;
    let mut columns: Vec<String> = schema
        .table(tid)
        .columns
        .iter()
        .map(|c| format!("{}.{}", q.table, c.name))
        .collect();
    let mut rows: Vec<Row> = state.rows(tid).iter().cloned().collect();
    if let Some(e) = explain {
        e.step(
            "scan",
            &q.table,
            rows.len(),
            format!("{} columns", columns.len()),
        );
    }

    for join in &q.joins {
        let jt = table_id(&join.table)?;
        let j_cols: Vec<String> = schema
            .table(jt)
            .columns
            .iter()
            .map(|c| format!("{}.{}", join.table, c.name))
            .collect();
        let on: Vec<(usize, u32)> = join
            .on
            .iter()
            .map(|(l, r)| {
                let li = resolve_col(&columns, l)?;
                let ri = schema
                    .table(jt)
                    .column_by_name(r)
                    .ok_or_else(|| EngineError::Unknown(format!("column {r}")))?;
                Ok((li, ri))
            })
            .collect::<Result<_, EngineError>>()?;
        let mut joined = Vec::new();
        for row in &rows {
            for jrow in state.rows(jt) {
                if on.iter().all(|(li, ri)| row[*li] == jrow[*ri as usize]) {
                    let mut merged = row.clone();
                    merged.extend(jrow.iter().cloned());
                    joined.push(merged);
                }
            }
        }
        columns.extend(j_cols);
        rows = joined;
        if let Some(e) = explain {
            let keys: Vec<&str> = join.on.iter().map(|(l, _)| l.as_str()).collect();
            e.step(
                "join",
                &join.table,
                rows.len(),
                format!("nested-loop on {}", keys.join(", ")),
            );
        }
    }

    // Filter.
    let mut filtered = Vec::new();
    'rows: for row in rows {
        for p in &q.filter {
            let matches = match p {
                Pred::Eq(c, v) => row[resolve_col(&columns, c)?].as_ref() == Some(v),
                Pred::IsNull(c) => row[resolve_col(&columns, c)?].is_none(),
                Pred::NotNull(c) => row[resolve_col(&columns, c)?].is_some(),
            };
            if !matches {
                continue 'rows;
            }
        }
        filtered.push(row);
    }
    if let Some(e) = explain {
        if !q.filter.is_empty() {
            e.step(
                "filter",
                format!("{} predicate(s)", q.filter.len()),
                filtered.len(),
                String::new(),
            );
        }
    }

    // Project.
    if q.select.is_empty() {
        return Ok(filtered);
    }
    let proj: Vec<usize> = q
        .select
        .iter()
        .map(|c| resolve_col(&columns, c))
        .collect::<Result<_, _>>()?;
    if let Some(e) = explain {
        e.step(
            "project",
            q.select.join(", "),
            filtered.len(),
            String::new(),
        );
    }
    Ok(filtered
        .into_iter()
        .map(|row| proj.iter().map(|i| row[*i].clone()).collect())
        .collect())
}

/// Runs [`execute_query`] with plan recording on; see [`Database::explain`].
pub(crate) fn explain_query(
    schema: &RelSchema,
    state: &RelState,
    q: &Query,
) -> Result<QueryExplain, EngineError> {
    ridl_obs::metrics().explains.inc();
    let mut ex = Some(QueryExplain::default());
    let rows = execute_query(schema, state, q, &mut ex)?;
    let mut ex = ex.expect("explain plan present");
    ex.rows_out = rows.len();
    Ok(ex)
}

/// Resolves a column reference against the joined relation's qualified
/// column list. A qualified name (`T.C`) must match exactly once; a bare
/// name must be the suffix of exactly one qualified column. Matching more
/// than once — a self-join duplicating qualified names, or a bare name
/// present in several joined tables — is an [`EngineError::Ambiguous`]
/// error, never a silent pick of the first occurrence.
fn resolve_col(columns: &[String], name: &str) -> Result<usize, EngineError> {
    let exact: Vec<usize> = columns
        .iter()
        .enumerate()
        .filter(|(_, c)| *c == name)
        .map(|(i, _)| i)
        .collect();
    match exact.len() {
        1 => return Ok(exact[0]),
        0 => {}
        n => {
            return Err(EngineError::Ambiguous(format!(
                "column {name} matches {n} columns of the joined relation"
            )))
        }
    }
    // Bare name: unique suffix match.
    let matches: Vec<(usize, &String)> = columns
        .iter()
        .enumerate()
        .filter(|(_, c)| c.rsplit('.').next() == Some(name))
        .collect();
    match matches.len() {
        1 => Ok(matches[0].0),
        0 => Err(EngineError::Unknown(format!("column {name}"))),
        _ => Err(EngineError::Ambiguous(format!(
            "column {name} matches {}",
            matches
                .iter()
                .map(|(_, c)| c.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::DataType;
    use ridl_relational::{Column, RelConstraintKind, Table};

    fn v(s: &str) -> Option<Value> {
        Some(Value::str(s))
    }

    fn sample_db() -> Database {
        let mut s = RelSchema::new("t");
        let d = s.domain("D", DataType::Char(10));
        let paper = s.add_table(Table::new(
            "Paper",
            vec![
                Column::not_null("Paper_Id", d),
                Column::nullable("Program_Id", d),
            ],
        ));
        let pp = s.add_table(Table::new(
            "Program_Paper",
            vec![
                Column::not_null("Program_Id", d),
                Column::not_null("Session", d),
            ],
        ));
        s.add_named(RelConstraintKind::PrimaryKey {
            table: paper,
            cols: vec![0],
        });
        s.add_named(RelConstraintKind::PrimaryKey {
            table: pp,
            cols: vec![0],
        });
        s.add_named(RelConstraintKind::ForeignKey {
            table: pp,
            cols: vec![0],
            ref_table: paper,
            ref_cols: vec![1],
        });
        Database::create(s).unwrap()
    }

    #[test]
    fn insert_enforces_keys() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        // Same key, different row: primary-key violation.
        let err = db.insert("Paper", vec![v("P1"), v("A1")]);
        assert!(matches!(err, Err(EngineError::ConstraintViolation(_))));
        // Identical row: rejected as a duplicate.
        let err = db.insert("Paper", vec![v("P1"), None]);
        assert!(matches!(err, Err(EngineError::ConstraintViolation(_))));
        // State unchanged after the rejected insert.
        assert_eq!(db.state().num_rows(), 1);
    }

    #[test]
    fn foreign_keys_enforced_both_ways() {
        let mut db = sample_db();
        let err = db.insert("Program_Paper", vec![v("A1"), v("S1")]);
        assert!(err.is_err(), "dangling FK accepted");
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
        // Deleting the referenced paper violates the FK.
        let err = db.delete_where("Paper", &[Pred::Eq("Paper_Id".into(), Value::str("P1"))]);
        assert!(err.is_err());
    }

    #[test]
    fn update_where_works_and_validates() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        db.insert("Paper", vec![v("P2"), None]).unwrap();
        let n = db
            .update_where(
                "Paper",
                &[Pred::Eq("Paper_Id".into(), Value::str("P2"))],
                &[("Program_Id", v("A9"))],
            )
            .unwrap();
        assert_eq!(n, 1);
        // Updating both papers to the same key collides.
        let err = db.update_where("Paper", &[], &[("Paper_Id", v("SAME"))]);
        assert!(err.is_err());
        assert_eq!(db.state().num_rows(), 2);
    }

    #[test]
    fn select_with_join_and_filter() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.insert("Paper", vec![v("P2"), None]).unwrap();
        db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
        let q = Query::from("Paper")
            .join("Program_Paper", &[("Program_Id", "Program_Id")])
            .select(&["Paper_Id", "Session"]);
        let rows = db.select(&q).unwrap();
        assert_eq!(rows, vec![vec![v("P1"), v("S1")]]);
        let q2 = Query::from("Paper")
            .select(&["Paper_Id"])
            .filter(Pred::IsNull("Program_Id".into()));
        assert_eq!(db.select(&q2).unwrap(), vec![vec![v("P2")]]);
    }

    #[test]
    fn views_are_named_queries() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        db.create_view("V_ALL_PAPERS", Query::from("Paper").select(&["Paper_Id"]));
        assert_eq!(db.view_names(), vec!["V_ALL_PAPERS"]);
        assert_eq!(db.select_view("V_ALL_PAPERS").unwrap().len(), 1);
        assert!(db.select_view("NOPE").is_err());
    }

    #[test]
    fn transactions_roll_back_and_defer_checks() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.begin();
        // Within the transaction, load the FK target *after* the source.
        db.insert_unchecked("Program_Paper", vec![v("A2"), v("S2")])
            .unwrap();
        db.insert_unchecked("Paper", vec![v("P2"), v("A2")])
            .unwrap();
        db.commit().unwrap();
        assert_eq!(db.state().num_rows(), 3);

        db.begin();
        db.insert_unchecked("Program_Paper", vec![v("A9"), v("S9")])
            .unwrap();
        let err = db.commit();
        assert!(err.is_err());
        assert_eq!(db.state().num_rows(), 3, "commit rolled back");

        db.begin();
        db.insert_unchecked("Paper", vec![v("P3"), None]).unwrap();
        db.rollback().unwrap();
        assert_eq!(db.state().num_rows(), 3);
        assert!(db.commit().is_err()); // no open transaction
    }

    #[test]
    fn nested_transactions_unwind_independently() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        db.begin();
        db.insert_unchecked("Paper", vec![v("P2"), None]).unwrap();
        db.begin();
        db.insert_unchecked("Paper", vec![v("P3"), None]).unwrap();
        // Inner rollback drops only P3.
        db.rollback().unwrap();
        assert_eq!(db.state().num_rows(), 2);
        // Outer commit keeps P2.
        db.commit().unwrap();
        assert_eq!(db.state().num_rows(), 2);
        assert!(db.rollback().is_err(), "no transaction left");
    }

    #[test]
    fn selection_execution_matches_state_select() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.insert("Paper", vec![v("P2"), None]).unwrap();
        db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
        let sel = ColumnSelection::of(TableId(0), vec![0]).where_not_null(vec![1]);
        let rows = db.select_selection(&sel);
        assert_eq!(rows, vec![vec![v("P1")]]);
    }

    #[test]
    fn apply_batch_is_all_or_nothing() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        let n = db
            .apply_batch([
                BatchOp::insert("Paper", vec![v("P2"), v("A2")]),
                BatchOp::insert("Program_Paper", vec![v("A2"), v("S1")]),
            ])
            .unwrap();
        assert_eq!(n, 2);
        // A failing batch reverts everything, including its clean prefix.
        let err = db.apply_batch([
            BatchOp::insert("Paper", vec![v("P3"), None]),
            BatchOp::insert("Program_Paper", vec![v("A9"), v("S9")]), // dangling FK
        ]);
        assert!(matches!(err, Err(EngineError::ConstraintViolation(_))));
        assert_eq!(db.state().num_rows(), 3);
    }

    #[test]
    fn apply_batch_nets_inverse_ops() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
        // The lone delete would dangle the FK; with the re-insert in the
        // same batch the delta nets out and the batch passes.
        let n = db
            .apply_batch([
                BatchOp::delete("Paper", vec![v("P1"), v("A1")]),
                BatchOp::insert("Paper", vec![v("P1"), v("A1")]),
            ])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.state().num_rows(), 2);
    }

    #[test]
    fn apply_batch_duplicate_matches_insert_message() {
        let mut db = sample_db();
        let err = db.apply_batch([
            BatchOp::insert("Paper", vec![v("P1"), None]),
            BatchOp::insert("Paper", vec![v("P1"), None]),
        ]);
        match err {
            Err(EngineError::ConstraintViolation(vs)) => {
                assert_eq!(vs[0].constraint, "DUPLICATE");
                assert_eq!(vs[0].detail, "row already present in Paper");
            }
            other => panic!("expected DUPLICATE rejection, got {other:?}"),
        }
        assert_eq!(db.state().num_rows(), 0, "batch reverted");
    }

    #[test]
    fn apply_batch_unknown_table_mutates_nothing() {
        let mut db = sample_db();
        let err = db.apply_batch([
            BatchOp::insert("Paper", vec![v("P1"), None]),
            BatchOp::insert("Nope", vec![v("x")]),
        ]);
        assert!(matches!(err, Err(EngineError::Unknown(_))));
        assert_eq!(db.state().num_rows(), 0);
    }

    #[test]
    fn apply_batch_absent_delete_is_noop() {
        let mut db = sample_db();
        let n = db
            .apply_batch([
                BatchOp::insert("Paper", vec![v("P1"), None]),
                BatchOp::delete("Paper", vec![v("GHOST"), None]),
            ])
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.state().num_rows(), 1);
    }

    #[test]
    fn bulk_load_replaces_state_and_validates() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("OLD"), None]).unwrap();
        let n = db
            .bulk_load([
                (TableId(0), vec![v("P1"), v("A1")]),
                (TableId(0), vec![v("P2"), None]),
                (TableId(0), vec![v("P2"), None]), // duplicate: absorbed
                (TableId(1), vec![v("A1"), v("S1")]),
            ])
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(db.state().num_rows(), 3);
        // The stream-built indexes match a fresh rebuild.
        assert!(db.indexes().consistent_with(db.schema(), db.state()));
        // A failing load leaves the database untouched.
        let err = db.bulk_load([(TableId(1), vec![v("A9"), v("S9")])]);
        assert!(matches!(err, Err(EngineError::ConstraintViolation(_))));
        assert_eq!(db.state().num_rows(), 3);
    }

    #[test]
    fn bulk_load_rejects_bad_table_id() {
        let mut db = sample_db();
        let err = db.bulk_load([(TableId(9), vec![v("x")])]);
        assert!(matches!(err, Err(EngineError::Unknown(_))));
    }

    #[test]
    fn bad_schema_rejected() {
        let mut s = RelSchema::new("bad");
        s.add_named(RelConstraintKind::PrimaryKey {
            table: TableId(7),
            cols: vec![0],
        });
        assert!(matches!(
            Database::create(s),
            Err(EngineError::BadSchema(_))
        ));
    }

    /// S1 regression: rolling back the transaction containing every
    /// pending unchecked op must reset the deferred-check flag — the next
    /// statement runs delta validation again instead of full-state.
    #[test]
    fn rollback_of_unchecked_ops_resumes_incremental_validation() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        db.begin();
        db.insert_unchecked("Paper", vec![v("P2"), None]).unwrap();
        // While unchecked ops are pending, checked statements fall back to
        // full-state validation.
        db.insert("Paper", vec![v("P4"), None]).unwrap();
        assert_eq!(db.last_statement_report().unwrap().strategy, "full");
        db.rollback().unwrap();
        assert_eq!(db.state().num_rows(), 1);
        db.insert("Paper", vec![v("P3"), None]).unwrap();
        let report = db.last_statement_report().unwrap();
        assert_eq!(report.strategy, "delta", "deferred flag not reset");
        assert_eq!(report.statement, "insert");
    }

    /// S1 regression: a failed commit (which reverts the transaction) must
    /// also discharge the deferred flag it rolled back.
    #[test]
    fn failed_commit_resumes_incremental_validation() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        db.begin();
        db.insert_unchecked("Program_Paper", vec![v("A9"), v("S9")])
            .unwrap();
        assert!(db.commit().is_err(), "dangling FK must fail the commit");
        db.insert("Paper", vec![v("P2"), None]).unwrap();
        assert_eq!(db.last_statement_report().unwrap().strategy, "delta");
    }

    /// S2 regression: predicate errors in `delete_where` must surface, not
    /// silently match zero rows.
    #[test]
    fn delete_where_propagates_predicate_errors() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        let err = db.delete_where("Paper", &[Pred::Eq("Nope".into(), Value::str("P1"))]);
        assert!(
            matches!(err, Err(EngineError::Unknown(ref m)) if m.contains("Nope")),
            "unknown predicate column must error, got {err:?}"
        );
        assert_eq!(db.state().num_rows(), 1, "nothing deleted");
        let err = db.delete_where("Paper", &[Pred::IsNull("Ghost".into())]);
        assert!(matches!(err, Err(EngineError::Unknown(_))));
    }

    /// S2 regression: same for `update_where`.
    #[test]
    fn update_where_propagates_predicate_errors() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        let err = db.update_where(
            "Paper",
            &[Pred::NotNull("Missing_Col".into())],
            &[("Program_Id", v("A1"))],
        );
        assert!(matches!(err, Err(EngineError::Unknown(_))));
        assert_eq!(
            db.state().rows(TableId(0)).iter().next().unwrap(),
            &vec![v("P1"), None],
            "no row updated"
        );
    }

    /// S3 regression: an update that collapses two rows into one (the
    /// updated row already exists) must be rejected as a DUPLICATE and
    /// fully reverted — previously the rows were silently merged.
    #[test]
    fn update_where_rejects_silent_row_merge() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.insert("Paper", vec![v("P2"), v("A1")]).unwrap();
        // Renaming P2 to P1 collides with the untouched P1 row; the PK
        // check alone would *pass* post-merge (one row, one key), so
        // without the duplicate guard this silently deleted a row.
        let err = db.update_where(
            "Paper",
            &[Pred::Eq("Paper_Id".into(), Value::str("P2"))],
            &[("Paper_Id", v("P1"))],
        );
        match err {
            Err(EngineError::ConstraintViolation(vs)) => {
                assert_eq!(vs[0].constraint, "DUPLICATE");
            }
            other => panic!("expected DUPLICATE rejection, got {other:?}"),
        }
        assert_eq!(db.state().num_rows(), 2, "merge reverted");
        assert!(db.indexes().consistent_with(db.schema(), db.state()));
    }

    /// S3 differential: both validation modes agree on the merge
    /// rejection, and an identity update (set a column to its current
    /// value) still succeeds in both.
    #[test]
    fn update_where_merge_rejection_is_mode_independent() {
        for mode in [ValidationMode::Incremental, ValidationMode::FullState] {
            let mut db = sample_db();
            db.set_validation_mode(mode);
            db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
            db.insert("Paper", vec![v("P2"), v("A1")]).unwrap();
            let err = db.update_where(
                "Paper",
                &[Pred::Eq("Paper_Id".into(), Value::str("P2"))],
                &[("Paper_Id", v("P1"))],
            );
            assert!(
                matches!(err, Err(EngineError::ConstraintViolation(_))),
                "{mode:?}: merge accepted"
            );
            assert_eq!(db.state().num_rows(), 2, "{mode:?}: not reverted");
            // Identity update: remove-then-reinsert of the same row.
            let n = db
                .update_where(
                    "Paper",
                    &[Pred::Eq("Paper_Id".into(), Value::str("P1"))],
                    &[("Program_Id", v("A1"))],
                )
                .unwrap();
            assert_eq!(n, 1, "{mode:?}: identity update rejected");
        }
    }

    /// S5 regression: an unqualified column matching several joined tables
    /// (here a self-join duplicating every name) must be an ambiguity
    /// error, not a silent resolution to the first occurrence.
    #[test]
    fn select_rejects_ambiguous_column_references() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("P1")]).unwrap();
        // Self-join: every bare and qualified name now appears twice.
        let q = Query::from("Paper")
            .join("Paper", &[("Paper.Paper_Id", "Program_Id")])
            .select(&["Paper_Id"]);
        let err = db.select(&q);
        assert!(
            matches!(err, Err(EngineError::Ambiguous(ref m)) if m.contains("Paper_Id")),
            "ambiguous projection accepted: {err:?}"
        );
        // Ambiguity in a filter predicate is caught too.
        let q = Query::from("Paper")
            .join("Paper", &[("Paper.Paper_Id", "Program_Id")])
            .filter(Pred::NotNull("Program_Id".into()));
        assert!(matches!(db.select(&q), Err(EngineError::Ambiguous(_))));
        // Qualified names that are genuinely unique still resolve.
        let q = Query::from("Paper")
            .join("Program_Paper", &[("Paper.Program_Id", "Program_Id")])
            .select(&["Session"]);
        assert!(db.select(&q).is_ok());
    }

    /// `explain` runs the query and records the executed plan with actual
    /// row counts per step.
    #[test]
    fn explain_reports_executed_plan() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.insert("Paper", vec![v("P2"), None]).unwrap();
        db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
        let q = Query::from("Paper")
            .join("Program_Paper", &[("Program_Id", "Program_Id")])
            .filter(Pred::NotNull("Session".into()))
            .select(&["Paper_Id", "Session"]);
        let ex = db.explain(&q).unwrap();
        let ops: Vec<&str> = ex.steps.iter().map(|s| s.op).collect();
        assert_eq!(ops, vec!["scan", "join", "filter", "project"]);
        assert_eq!(ex.steps[0].rows_out, 2);
        assert_eq!(ex.steps[1].rows_out, 1);
        assert_eq!(ex.rows_out, 1);
        // The plan's result matches the query's.
        assert_eq!(db.select(&q).unwrap().len(), ex.rows_out);
        assert!(!ex.render().is_empty());
    }
}

//! The database proper: constraint-checked storage plus the query executor.

use std::collections::HashMap;
use std::fmt;

use ridl_brm::Value;
use ridl_relational::{
    parallel, validate_delta, validate_load, ColumnSelection, ConstraintIndexes, Delta, DeltaOp,
    RelSchema, RelState, RelViolation, Row, TableId,
};

use crate::query::{Pred, Query};

/// How mutations are checked against the schema's constraints.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ValidationMode {
    /// Delta validation: only constraints reachable from the touched rows
    /// are checked, via O(1) probes on the maintained
    /// [`ConstraintIndexes`]. O(change) per mutation. The default.
    #[default]
    Incremental,
    /// Re-validate the entire state on every mutation. O(database) per
    /// mutation; kept as the oracle and for benchmarking the difference.
    FullState,
}

/// One operation of a mutation batch, addressed by table name (the
/// engine's external interface). See [`Database::apply_batch`].
#[derive(Clone, PartialEq, Debug)]
pub enum BatchOp {
    /// Insert a row. A row already present when the batch reaches this op
    /// rejects the whole batch (set semantics: a duplicate insert is
    /// almost always a key violation in disguise, mirroring
    /// [`Database::insert`]).
    Insert {
        /// Target table name.
        table: String,
        /// The row.
        row: Row,
    },
    /// Delete one exact row. Deleting a row that is absent when the batch
    /// reaches this op is a no-op, mirroring a `delete_where` that
    /// matches nothing.
    Delete {
        /// Target table name.
        table: String,
        /// The row.
        row: Row,
    },
}

impl BatchOp {
    /// An insert op.
    pub fn insert(table: impl Into<String>, row: Row) -> Self {
        BatchOp::Insert {
            table: table.into(),
            row,
        }
    }

    /// A delete op.
    pub fn delete(table: impl Into<String>, row: Row) -> Self {
        BatchOp::Delete {
            table: table.into(),
            row,
        }
    }
}

/// Errors raised by the engine.
#[derive(Clone, PartialEq, Debug)]
pub enum EngineError {
    /// The schema definition itself is inconsistent.
    BadSchema(Vec<String>),
    /// A named table/column/view does not exist.
    Unknown(String),
    /// A statement would violate constraints; the update was rolled back.
    ConstraintViolation(Vec<RelViolation>),
    /// Transaction misuse (commit/rollback without begin).
    NoTransaction,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BadSchema(errs) => write!(f, "bad schema: {}", errs.join("; ")),
            EngineError::Unknown(what) => write!(f, "unknown object: {what}"),
            EngineError::ConstraintViolation(v) => {
                write!(f, "constraint violation: ")?;
                for x in v.iter().take(3) {
                    write!(f, "[{x}] ")?;
                }
                Ok(())
            }
            EngineError::NoTransaction => write!(f, "no open transaction"),
        }
    }
}

impl std::error::Error for EngineError {}

/// An in-memory, constraint-enforcing relational database.
///
/// Mutations are O(change), not O(database): the engine maintains
/// [`ConstraintIndexes`] next to the state, validates each statement's
/// delta with [`validate_delta`], and rolls back by replaying an **undo
/// log** of inverse row operations — no state snapshot is ever cloned,
/// neither per statement nor per transaction.
pub struct Database {
    schema: RelSchema,
    state: RelState,
    indexes: ConstraintIndexes,
    views: HashMap<String, Query>,
    /// Applied row operations since the outermost transaction began (or
    /// since the last statement, outside transactions). Rolling back means
    /// replaying a suffix in reverse with each op inverted.
    undo: Vec<DeltaOp>,
    /// Undo-log positions where each open transaction began.
    txn_marks: Vec<usize>,
    mode: ValidationMode,
    /// Set while `insert_unchecked` rows await their deferred check; the
    /// debug oracle is meaningless (and delta validation vacuous) until the
    /// next successful `commit` or `load_state` re-validates everything.
    has_unchecked: bool,
}

impl Database {
    /// Creates an empty database over a schema.
    pub fn create(schema: RelSchema) -> Result<Self, EngineError> {
        let errs = schema.check_ids();
        if !errs.is_empty() {
            return Err(EngineError::BadSchema(errs));
        }
        let state = RelState::with_tables(schema.tables.len());
        let indexes = ConstraintIndexes::build(&schema, &state);
        Ok(Self {
            schema,
            state,
            indexes,
            views: HashMap::new(),
            undo: Vec::new(),
            txn_marks: Vec::new(),
            mode: ValidationMode::default(),
            has_unchecked: false,
        })
    }

    /// The schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The raw state (e.g. to compare against a state map's output).
    pub fn state(&self) -> &RelState {
        &self.state
    }

    /// The constraint indexes maintained alongside the state.
    pub fn indexes(&self) -> &ConstraintIndexes {
        &self.indexes
    }

    /// Selects how mutations are validated (delta probes vs full re-scan).
    pub fn set_validation_mode(&mut self, mode: ValidationMode) {
        self.mode = mode;
    }

    /// The active validation mode.
    pub fn validation_mode(&self) -> ValidationMode {
        self.mode
    }

    /// Replaces the whole state, validating it first (in parallel for
    /// large states) and rebuilding the constraint indexes. Any open
    /// transactions are discarded.
    pub fn load_state(&mut self, state: RelState) -> Result<(), EngineError> {
        let violations = parallel::validate_parallel(&self.schema, &state);
        if !violations.is_empty() {
            return Err(EngineError::ConstraintViolation(violations));
        }
        self.indexes = ConstraintIndexes::build(&self.schema, &state);
        self.state = state;
        self.undo.clear();
        self.txn_marks.clear();
        self.has_unchecked = false;
        Ok(())
    }

    fn table_id(&self, name: &str) -> Result<TableId, EngineError> {
        self.schema
            .table_by_name(name)
            .ok_or_else(|| EngineError::Unknown(format!("table {name}")))
    }

    /// Applies one row operation to the state and indexes, recording it in
    /// the undo log. Returns false (recording nothing) when the state
    /// already absorbed it (duplicate insert / missing removal).
    fn apply(&mut self, op: DeltaOp) -> bool {
        let changed = match &op {
            DeltaOp::Insert { table, row } => {
                let done = self.state.insert(*table, row.clone());
                if done {
                    self.indexes.note_insert(*table, row);
                }
                done
            }
            DeltaOp::Remove { table, row } => {
                let done = self.state.remove(*table, row);
                if done {
                    self.indexes.note_remove(*table, row);
                }
                done
            }
        };
        if changed {
            self.undo.push(op);
        }
        changed
    }

    /// Replays the undo log down to `mark`, inverting each operation.
    fn revert_to(&mut self, mark: usize) {
        while self.undo.len() > mark {
            match self.undo.pop().expect("undo entry") {
                DeltaOp::Insert { table, row } => {
                    self.state.remove(table, &row);
                    self.indexes.note_remove(table, &row);
                }
                DeltaOp::Remove { table, row } => {
                    self.indexes.note_insert(table, &row);
                    self.state.insert(table, row);
                }
            }
        }
    }

    /// Statement epilogue: validates the ops recorded since `mark`
    /// (O(change) in [`ValidationMode::Incremental`]), reverting them on
    /// violation. Outside transactions a clean statement also drains the
    /// undo log — nothing left to roll back to.
    ///
    /// Incremental validation runs on the **net** delta: inverse pairs on
    /// the same row cancel before probing, so a batch (or an identity
    /// update) that touches a row and puts it back is judged by what
    /// actually changed — the same verdict full re-validation of the
    /// post-state gives.
    fn finish_statement(&mut self, mark: usize) -> Result<(), EngineError> {
        let violations = match self.mode {
            ValidationMode::Incremental => {
                let delta = Delta {
                    ops: self.undo[mark..].to_vec(),
                }
                .net();
                validate_delta(&self.schema, &self.state, &self.indexes, &delta)
            }
            ValidationMode::FullState => parallel::validate_parallel(&self.schema, &self.state),
        };
        if !violations.is_empty() {
            self.revert_to(mark);
            return Err(EngineError::ConstraintViolation(violations));
        }
        self.debug_check_equivalence();
        if self.txn_marks.is_empty() {
            self.undo.clear();
        }
        Ok(())
    }

    /// Debug oracle: a state the delta validator accepted must also satisfy
    /// the full validator, and the incremental indexes must equal a fresh
    /// build. Compiled out of release builds; skipped while unchecked rows
    /// make the precondition (valid pre-state) false.
    fn debug_check_equivalence(&self) {
        #[cfg(debug_assertions)]
        {
            use ridl_relational::validate;
            if self.mode == ValidationMode::Incremental && !self.has_unchecked {
                let full = validate::validate(&self.schema, &self.state);
                debug_assert!(
                    full.is_empty(),
                    "delta validation accepted a state the full validator rejects: {full:?}"
                );
                debug_assert!(
                    self.indexes.consistent_with(&self.schema, &self.state),
                    "constraint indexes drifted from the state"
                );
            }
        }
    }

    /// Inserts a row, enforcing every constraint; rolls back on violation.
    /// Re-inserting an existing row is rejected (relations are sets; a
    /// duplicate insert is almost always a key violation in disguise).
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), EngineError> {
        let tid = self.table_id(table)?;
        let mark = self.undo.len();
        if !self.apply(DeltaOp::Insert { table: tid, row }) {
            return Err(EngineError::ConstraintViolation(vec![RelViolation {
                constraint: "DUPLICATE".into(),
                detail: format!("row already present in {table}"),
            }]));
        }
        self.finish_statement(mark)
    }

    /// Inserts without constraint checking (bulk load within transactions;
    /// `commit` or `load_state` re-validates). The row still enters the
    /// undo log, so `rollback` undoes it.
    pub fn insert_unchecked(&mut self, table: &str, row: Row) -> Result<(), EngineError> {
        let tid = self.table_id(table)?;
        self.apply(DeltaOp::Insert { table: tid, row });
        self.has_unchecked = true;
        if self.txn_marks.is_empty() {
            self.undo.clear();
        }
        Ok(())
    }

    /// Deletes the rows matching the predicate; returns how many went.
    /// Single pass: only the matching rows are copied (into the undo log),
    /// never the state.
    pub fn delete_where(&mut self, table: &str, preds: &[Pred]) -> Result<usize, EngineError> {
        let tid = self.table_id(table)?;
        let mark = self.undo.len();
        let matching: Vec<Row> = self
            .state
            .rows(tid)
            .iter()
            .filter(|row| self.row_matches(tid, row, preds).unwrap_or(false))
            .cloned()
            .collect();
        let n = matching.len();
        for row in matching {
            self.apply(DeltaOp::Remove { table: tid, row });
        }
        self.finish_statement(mark)?;
        Ok(n)
    }

    /// Updates matching rows by setting columns; returns how many changed.
    /// Each matching row becomes one remove + one insert in the undo log.
    pub fn update_where(
        &mut self,
        table: &str,
        preds: &[Pred],
        assignments: &[(&str, Option<Value>)],
    ) -> Result<usize, EngineError> {
        let tid = self.table_id(table)?;
        let cols: Vec<(u32, Option<Value>)> = assignments
            .iter()
            .map(|(name, v)| {
                self.schema
                    .table(tid)
                    .column_by_name(name)
                    .map(|c| (c, v.clone()))
                    .ok_or_else(|| EngineError::Unknown(format!("column {name}")))
            })
            .collect::<Result<_, _>>()?;
        let mark = self.undo.len();
        let matching: Vec<Row> = self
            .state
            .rows(tid)
            .iter()
            .filter(|row| self.row_matches(tid, row, preds).unwrap_or(false))
            .cloned()
            .collect();
        let n = matching.len();
        for row in matching {
            let mut new_row = row.clone();
            for (c, v) in &cols {
                new_row[*c as usize] = v.clone();
            }
            self.apply(DeltaOp::Remove { table: tid, row });
            self.apply(DeltaOp::Insert {
                table: tid,
                row: new_row,
            });
        }
        self.finish_statement(mark)?;
        Ok(n)
    }

    // ---- batched mutations ----

    /// Applies a group of inserts and deletes as **one statement**: every
    /// op runs under a single undo-log watermark, the accumulated delta is
    /// validated once (netted, so inverse pairs cancel), and on rejection
    /// the entire batch is reverted — group commit, all or nothing.
    ///
    /// Because validation sees the batch as a whole, a batch may pass
    /// through states its individual ops could not: deleting a
    /// foreign-key target and re-inserting its replacement in the same
    /// batch is legal, where the lone delete would be rejected.
    ///
    /// Table names are resolved before anything is applied, so an unknown
    /// name mutates nothing. Returns how many row operations changed the
    /// state (deletes of absent rows are no-ops and do not count).
    pub fn apply_batch(
        &mut self,
        ops: impl IntoIterator<Item = BatchOp>,
    ) -> Result<usize, EngineError> {
        let ops: Vec<(TableId, bool, Row)> = ops
            .into_iter()
            .map(|op| match op {
                BatchOp::Insert { table, row } => self.table_id(&table).map(|t| (t, true, row)),
                BatchOp::Delete { table, row } => self.table_id(&table).map(|t| (t, false, row)),
            })
            .collect::<Result<_, _>>()?;
        let mark = self.undo.len();
        let mut changed = 0usize;
        for (tid, is_insert, row) in ops {
            if is_insert {
                if !self.apply(DeltaOp::Insert { table: tid, row }) {
                    let name = self.schema.table(tid).name.clone();
                    self.revert_to(mark);
                    return Err(EngineError::ConstraintViolation(vec![RelViolation {
                        constraint: "DUPLICATE".into(),
                        detail: format!("row already present in {name}"),
                    }]));
                }
                changed += 1;
            } else if self.apply(DeltaOp::Remove { table: tid, row }) {
                changed += 1;
            }
        }
        self.finish_statement(mark)?;
        Ok(changed)
    }

    /// Replaces the whole state by **streaming** rows through freshly
    /// charged constraint indexes (tables partitioned across cores for
    /// large loads), then checking each constraint **in aggregate** over
    /// its counters — O(distinct projections) per constraint plus one
    /// hash-free structural pass, instead of the per-constraint state
    /// scans of [`Database::load_state`].
    ///
    /// Sound because the empty pre-state is trivially valid, so the
    /// charged counters summarise exactly the loaded state. Duplicate
    /// rows are absorbed silently (relations are sets); the returned
    /// count is the number of distinct rows loaded. On violation (or an
    /// out-of-range table id) the database is left untouched — the load
    /// builds aside and swaps in only on success. Open transactions are
    /// discarded on success, as with `load_state`.
    pub fn bulk_load(
        &mut self,
        rows: impl IntoIterator<Item = (TableId, Row)>,
    ) -> Result<usize, EngineError> {
        let mut state = RelState::with_tables(self.schema.tables.len());
        let mut loaded = 0usize;
        for (tid, row) in rows {
            if tid.index() >= self.schema.tables.len() {
                return Err(EngineError::Unknown(format!(
                    "table id {} (schema has {})",
                    tid.index(),
                    self.schema.tables.len()
                )));
            }
            if state.insert(tid, row) {
                loaded += 1;
            }
        }
        let indexes = ConstraintIndexes::build(&self.schema, &state);
        let violations = validate_load(&self.schema, &state, &indexes);
        if !violations.is_empty() {
            return Err(EngineError::ConstraintViolation(violations));
        }
        self.state = state;
        self.indexes = indexes;
        self.undo.clear();
        self.txn_marks.clear();
        self.has_unchecked = false;
        self.debug_check_equivalence();
        Ok(loaded)
    }

    fn col_by_name(&self, tid: TableId, name: &str) -> Option<u32> {
        // Accept both bare and `Table.col` qualified names.
        let bare = name.rsplit('.').next().unwrap_or(name);
        if let Some(prefix) = name.strip_suffix(&format!(".{bare}")) {
            if self.schema.table(tid).name != prefix {
                return None;
            }
        }
        self.schema.table(tid).column_by_name(bare)
    }

    fn row_matches(&self, tid: TableId, row: &Row, preds: &[Pred]) -> Result<bool, EngineError> {
        for p in preds {
            let col_of = |c: &String| -> Result<usize, EngineError> {
                self.col_by_name(tid, c)
                    .map(|i| i as usize)
                    .ok_or_else(|| EngineError::Unknown(format!("column {c}")))
            };
            let ok = match p {
                Pred::Eq(c, v) => row[col_of(c)?].as_ref() == Some(v),
                Pred::IsNull(c) => row[col_of(c)?].is_none(),
                Pred::NotNull(c) => row[col_of(c)?].is_some(),
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    // ---- queries ----

    /// Runs a query; rows carry the projected columns in order.
    pub fn select(&self, q: &Query) -> Result<Vec<Row>, EngineError> {
        // Assemble the joined relation as (qualified name -> index) + rows.
        let tid = self.table_id(&q.table)?;
        let mut columns: Vec<String> = self
            .schema
            .table(tid)
            .columns
            .iter()
            .map(|c| format!("{}.{}", q.table, c.name))
            .collect();
        let mut rows: Vec<Row> = self.state.rows(tid).iter().cloned().collect();

        for join in &q.joins {
            let jt = self.table_id(&join.table)?;
            let j_cols: Vec<String> = self
                .schema
                .table(jt)
                .columns
                .iter()
                .map(|c| format!("{}.{}", join.table, c.name))
                .collect();
            let on: Vec<(usize, u32)> = join
                .on
                .iter()
                .map(|(l, r)| {
                    let li = find_col(&columns, l)
                        .ok_or_else(|| EngineError::Unknown(format!("column {l}")))?;
                    let ri = self
                        .schema
                        .table(jt)
                        .column_by_name(r)
                        .ok_or_else(|| EngineError::Unknown(format!("column {r}")))?;
                    Ok((li, ri))
                })
                .collect::<Result<_, EngineError>>()?;
            let mut joined = Vec::new();
            for row in &rows {
                for jrow in self.state.rows(jt) {
                    if on.iter().all(|(li, ri)| row[*li] == jrow[*ri as usize]) {
                        let mut merged = row.clone();
                        merged.extend(jrow.iter().cloned());
                        joined.push(merged);
                    }
                }
            }
            columns.extend(j_cols);
            rows = joined;
        }

        // Filter.
        let mut filtered = Vec::new();
        'rows: for row in rows {
            for p in &q.filter {
                let matches = match p {
                    Pred::Eq(c, v) => {
                        let i = find_col(&columns, c)
                            .ok_or_else(|| EngineError::Unknown(format!("column {c}")))?;
                        row[i].as_ref() == Some(v)
                    }
                    Pred::IsNull(c) => {
                        let i = find_col(&columns, c)
                            .ok_or_else(|| EngineError::Unknown(format!("column {c}")))?;
                        row[i].is_none()
                    }
                    Pred::NotNull(c) => {
                        let i = find_col(&columns, c)
                            .ok_or_else(|| EngineError::Unknown(format!("column {c}")))?;
                        row[i].is_some()
                    }
                };
                if !matches {
                    continue 'rows;
                }
            }
            filtered.push(row);
        }

        // Project.
        if q.select.is_empty() {
            return Ok(filtered);
        }
        let proj: Vec<usize> = q
            .select
            .iter()
            .map(|c| {
                find_col(&columns, c).ok_or_else(|| EngineError::Unknown(format!("column {c}")))
            })
            .collect::<Result<_, _>>()?;
        Ok(filtered
            .into_iter()
            .map(|row| proj.iter().map(|i| row[*i].clone()).collect())
            .collect())
    }

    /// Executes a [`ColumnSelection`] — a forwards-map SELECT — directly.
    pub fn select_selection(&self, sel: &ColumnSelection) -> Vec<Row> {
        self.state
            .select_where(sel.table, &sel.cols, &sel.not_null, &sel.eq)
            .into_iter()
            .collect()
    }

    // ---- views ----

    /// Defines a named view (the "open" meta-database interface, §3.1).
    pub fn create_view(&mut self, name: impl Into<String>, q: Query) {
        self.views.insert(name.into(), q);
    }

    /// Runs a named view.
    pub fn select_view(&self, name: &str) -> Result<Vec<Row>, EngineError> {
        let q = self
            .views
            .get(name)
            .ok_or_else(|| EngineError::Unknown(format!("view {name}")))?;
        self.select(q)
    }

    /// Names of the defined views.
    pub fn view_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.views.keys().map(String::as_str).collect();
        v.sort();
        v
    }

    // ---- transactions ----

    /// Opens a transaction. O(1): just an undo-log watermark, no snapshot.
    pub fn begin(&mut self) {
        self.txn_marks.push(self.undo.len());
    }

    /// Commits the innermost transaction, validating the final state in
    /// full (the deferred check that makes `insert_unchecked` safe). On
    /// violation the transaction's changes are rolled back via the undo
    /// log.
    pub fn commit(&mut self) -> Result<(), EngineError> {
        let mark = self.txn_marks.pop().ok_or(EngineError::NoTransaction)?;
        let violations = parallel::validate_parallel(&self.schema, &self.state);
        if violations.is_empty() {
            self.has_unchecked = false;
            if self.txn_marks.is_empty() {
                self.undo.clear();
            }
            Ok(())
        } else {
            self.revert_to(mark);
            Err(EngineError::ConstraintViolation(violations))
        }
    }

    /// Rolls back the innermost transaction by replaying its undo-log
    /// suffix in reverse. O(changes in the transaction).
    pub fn rollback(&mut self) -> Result<(), EngineError> {
        let mark = self.txn_marks.pop().ok_or(EngineError::NoTransaction)?;
        self.revert_to(mark);
        Ok(())
    }
}

fn find_col(columns: &[String], name: &str) -> Option<usize> {
    if let Some(i) = columns.iter().position(|c| c == name) {
        return Some(i);
    }
    // Bare name: unique suffix match.
    let matches: Vec<usize> = columns
        .iter()
        .enumerate()
        .filter(|(_, c)| c.rsplit('.').next() == Some(name))
        .map(|(i, _)| i)
        .collect();
    if matches.len() == 1 {
        Some(matches[0])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::DataType;
    use ridl_relational::{Column, RelConstraintKind, Table};

    fn v(s: &str) -> Option<Value> {
        Some(Value::str(s))
    }

    fn sample_db() -> Database {
        let mut s = RelSchema::new("t");
        let d = s.domain("D", DataType::Char(10));
        let paper = s.add_table(Table::new(
            "Paper",
            vec![
                Column::not_null("Paper_Id", d),
                Column::nullable("Program_Id", d),
            ],
        ));
        let pp = s.add_table(Table::new(
            "Program_Paper",
            vec![
                Column::not_null("Program_Id", d),
                Column::not_null("Session", d),
            ],
        ));
        s.add_named(RelConstraintKind::PrimaryKey {
            table: paper,
            cols: vec![0],
        });
        s.add_named(RelConstraintKind::PrimaryKey {
            table: pp,
            cols: vec![0],
        });
        s.add_named(RelConstraintKind::ForeignKey {
            table: pp,
            cols: vec![0],
            ref_table: paper,
            ref_cols: vec![1],
        });
        Database::create(s).unwrap()
    }

    #[test]
    fn insert_enforces_keys() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        // Same key, different row: primary-key violation.
        let err = db.insert("Paper", vec![v("P1"), v("A1")]);
        assert!(matches!(err, Err(EngineError::ConstraintViolation(_))));
        // Identical row: rejected as a duplicate.
        let err = db.insert("Paper", vec![v("P1"), None]);
        assert!(matches!(err, Err(EngineError::ConstraintViolation(_))));
        // State unchanged after the rejected insert.
        assert_eq!(db.state().num_rows(), 1);
    }

    #[test]
    fn foreign_keys_enforced_both_ways() {
        let mut db = sample_db();
        let err = db.insert("Program_Paper", vec![v("A1"), v("S1")]);
        assert!(err.is_err(), "dangling FK accepted");
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
        // Deleting the referenced paper violates the FK.
        let err = db.delete_where("Paper", &[Pred::Eq("Paper_Id".into(), Value::str("P1"))]);
        assert!(err.is_err());
    }

    #[test]
    fn update_where_works_and_validates() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        db.insert("Paper", vec![v("P2"), None]).unwrap();
        let n = db
            .update_where(
                "Paper",
                &[Pred::Eq("Paper_Id".into(), Value::str("P2"))],
                &[("Program_Id", v("A9"))],
            )
            .unwrap();
        assert_eq!(n, 1);
        // Updating both papers to the same key collides.
        let err = db.update_where("Paper", &[], &[("Paper_Id", v("SAME"))]);
        assert!(err.is_err());
        assert_eq!(db.state().num_rows(), 2);
    }

    #[test]
    fn select_with_join_and_filter() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.insert("Paper", vec![v("P2"), None]).unwrap();
        db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
        let q = Query::from("Paper")
            .join("Program_Paper", &[("Program_Id", "Program_Id")])
            .select(&["Paper_Id", "Session"]);
        let rows = db.select(&q).unwrap();
        assert_eq!(rows, vec![vec![v("P1"), v("S1")]]);
        let q2 = Query::from("Paper")
            .select(&["Paper_Id"])
            .filter(Pred::IsNull("Program_Id".into()));
        assert_eq!(db.select(&q2).unwrap(), vec![vec![v("P2")]]);
    }

    #[test]
    fn views_are_named_queries() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        db.create_view("V_ALL_PAPERS", Query::from("Paper").select(&["Paper_Id"]));
        assert_eq!(db.view_names(), vec!["V_ALL_PAPERS"]);
        assert_eq!(db.select_view("V_ALL_PAPERS").unwrap().len(), 1);
        assert!(db.select_view("NOPE").is_err());
    }

    #[test]
    fn transactions_roll_back_and_defer_checks() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.begin();
        // Within the transaction, load the FK target *after* the source.
        db.insert_unchecked("Program_Paper", vec![v("A2"), v("S2")])
            .unwrap();
        db.insert_unchecked("Paper", vec![v("P2"), v("A2")])
            .unwrap();
        db.commit().unwrap();
        assert_eq!(db.state().num_rows(), 3);

        db.begin();
        db.insert_unchecked("Program_Paper", vec![v("A9"), v("S9")])
            .unwrap();
        let err = db.commit();
        assert!(err.is_err());
        assert_eq!(db.state().num_rows(), 3, "commit rolled back");

        db.begin();
        db.insert_unchecked("Paper", vec![v("P3"), None]).unwrap();
        db.rollback().unwrap();
        assert_eq!(db.state().num_rows(), 3);
        assert!(db.commit().is_err()); // no open transaction
    }

    #[test]
    fn nested_transactions_unwind_independently() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        db.begin();
        db.insert_unchecked("Paper", vec![v("P2"), None]).unwrap();
        db.begin();
        db.insert_unchecked("Paper", vec![v("P3"), None]).unwrap();
        // Inner rollback drops only P3.
        db.rollback().unwrap();
        assert_eq!(db.state().num_rows(), 2);
        // Outer commit keeps P2.
        db.commit().unwrap();
        assert_eq!(db.state().num_rows(), 2);
        assert!(db.rollback().is_err(), "no transaction left");
    }

    #[test]
    fn selection_execution_matches_state_select() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.insert("Paper", vec![v("P2"), None]).unwrap();
        db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
        let sel = ColumnSelection::of(TableId(0), vec![0]).where_not_null(vec![1]);
        let rows = db.select_selection(&sel);
        assert_eq!(rows, vec![vec![v("P1")]]);
    }

    #[test]
    fn apply_batch_is_all_or_nothing() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        let n = db
            .apply_batch([
                BatchOp::insert("Paper", vec![v("P2"), v("A2")]),
                BatchOp::insert("Program_Paper", vec![v("A2"), v("S1")]),
            ])
            .unwrap();
        assert_eq!(n, 2);
        // A failing batch reverts everything, including its clean prefix.
        let err = db.apply_batch([
            BatchOp::insert("Paper", vec![v("P3"), None]),
            BatchOp::insert("Program_Paper", vec![v("A9"), v("S9")]), // dangling FK
        ]);
        assert!(matches!(err, Err(EngineError::ConstraintViolation(_))));
        assert_eq!(db.state().num_rows(), 3);
    }

    #[test]
    fn apply_batch_nets_inverse_ops() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
        // The lone delete would dangle the FK; with the re-insert in the
        // same batch the delta nets out and the batch passes.
        let n = db
            .apply_batch([
                BatchOp::delete("Paper", vec![v("P1"), v("A1")]),
                BatchOp::insert("Paper", vec![v("P1"), v("A1")]),
            ])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.state().num_rows(), 2);
    }

    #[test]
    fn apply_batch_duplicate_matches_insert_message() {
        let mut db = sample_db();
        let err = db.apply_batch([
            BatchOp::insert("Paper", vec![v("P1"), None]),
            BatchOp::insert("Paper", vec![v("P1"), None]),
        ]);
        match err {
            Err(EngineError::ConstraintViolation(vs)) => {
                assert_eq!(vs[0].constraint, "DUPLICATE");
                assert_eq!(vs[0].detail, "row already present in Paper");
            }
            other => panic!("expected DUPLICATE rejection, got {other:?}"),
        }
        assert_eq!(db.state().num_rows(), 0, "batch reverted");
    }

    #[test]
    fn apply_batch_unknown_table_mutates_nothing() {
        let mut db = sample_db();
        let err = db.apply_batch([
            BatchOp::insert("Paper", vec![v("P1"), None]),
            BatchOp::insert("Nope", vec![v("x")]),
        ]);
        assert!(matches!(err, Err(EngineError::Unknown(_))));
        assert_eq!(db.state().num_rows(), 0);
    }

    #[test]
    fn apply_batch_absent_delete_is_noop() {
        let mut db = sample_db();
        let n = db
            .apply_batch([
                BatchOp::insert("Paper", vec![v("P1"), None]),
                BatchOp::delete("Paper", vec![v("GHOST"), None]),
            ])
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.state().num_rows(), 1);
    }

    #[test]
    fn bulk_load_replaces_state_and_validates() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("OLD"), None]).unwrap();
        let n = db
            .bulk_load([
                (TableId(0), vec![v("P1"), v("A1")]),
                (TableId(0), vec![v("P2"), None]),
                (TableId(0), vec![v("P2"), None]), // duplicate: absorbed
                (TableId(1), vec![v("A1"), v("S1")]),
            ])
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(db.state().num_rows(), 3);
        // The stream-built indexes match a fresh rebuild.
        assert!(db.indexes().consistent_with(db.schema(), db.state()));
        // A failing load leaves the database untouched.
        let err = db.bulk_load([(TableId(1), vec![v("A9"), v("S9")])]);
        assert!(matches!(err, Err(EngineError::ConstraintViolation(_))));
        assert_eq!(db.state().num_rows(), 3);
    }

    #[test]
    fn bulk_load_rejects_bad_table_id() {
        let mut db = sample_db();
        let err = db.bulk_load([(TableId(9), vec![v("x")])]);
        assert!(matches!(err, Err(EngineError::Unknown(_))));
    }

    #[test]
    fn bad_schema_rejected() {
        let mut s = RelSchema::new("bad");
        s.add_named(RelConstraintKind::PrimaryKey {
            table: TableId(7),
            cols: vec![0],
        });
        assert!(matches!(
            Database::create(s),
            Err(EngineError::BadSchema(_))
        ));
    }
}

//! # ridl-engine — a small in-memory relational engine
//!
//! The substrate substitute for the ORACLE installation of the paper: the
//! meta-database lives here (§3.1, "its implementation is a relational
//! (ORACLE) database"), and generated schemas can be *executed* here —
//! inserts and deletes are checked against every constraint RIDL-M
//! generated, including the extended pseudo-SQL ones that 1989-era RDBMSs
//! could not enforce. That upgrade is deliberate: it lets the test-suite
//! demonstrate end-to-end that the generated constraint specifications
//! actually control the redundancies the mapping options introduce.
//!
//! Features: DDL from a [`RelSchema`], constraint-checked DML (including
//! group-committed batches via [`Database::apply_batch`] and an
//! index-streaming [`Database::bulk_load`]), a small select/project/
//! equi-join query executor, named views (the "open" meta-database views
//! of §3.1), and snapshot transactions.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod db;
pub mod durable;
pub mod query;
pub mod report;
pub mod snapshot;

pub use db::{BatchOp, Database, EngineError, ValidationMode};
pub use query::{Pred, Query};
pub use report::{ConstraintCost, EnforcementReport, ExplainStep, QueryExplain};
pub use snapshot::ReadSnapshot;

// Durability configuration and recovery reporting, re-exported so engine
// users need not depend on ridl-durable directly.
pub use ridl_durable::{
    CheckpointKind, CheckpointStats, Durability, DurableIo, FsyncPolicy, RecoveryReport, StdIo,
};

use ridl_relational::RelSchema;

/// Opens a database over a generated schema — convenience for examples.
pub fn open(schema: RelSchema) -> Result<Database, EngineError> {
    Database::create(schema)
}

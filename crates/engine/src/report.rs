//! Structured reports: what enforcement did for a statement
//! ([`EnforcementReport`]) and what the executor did for a query
//! ([`QueryExplain`]).
//!
//! Both are the engine-level face of the `ridl-obs` layer: cheap enough to
//! produce on every statement (the per-kind breakdown and timings fill in
//! only while the obs detail gate is on), structured enough for tests to
//! assert on, and renderable for the CLI.

use std::fmt::Write as _;

use ridl_obs::{ConstraintClass, MetricsSnapshot};

use crate::db::ValidationMode;

/// Cost attributed to one constraint class during one statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConstraintCost {
    /// The class name (see [`ConstraintClass::name`]).
    pub class: &'static str,
    /// Checks run.
    pub checks: u64,
    /// Violations reported.
    pub violations: u64,
    /// Nanoseconds spent (zero when the obs detail gate was off).
    pub nanos: u64,
}

/// What enforcement did for one mutating statement: which validation
/// strategy ran, how big the (net) delta was, what each constraint class
/// cost. Retrieve the most recent one with
/// [`crate::Database::last_statement_report`].
#[derive(Clone, PartialEq, Debug)]
pub struct EnforcementReport {
    /// The statement kind (`insert`, `delete_where`, `update_where`,
    /// `batch`, `bulk_load`, `insert_unchecked`, `commit`).
    pub statement: &'static str,
    /// The database's validation mode when the statement ran.
    pub mode: ValidationMode,
    /// The validation strategy that actually ran: `delta` (O(change)
    /// probes), `full` (whole-state re-validation), `aggregate` (bulk-load
    /// counter-level checks), or `deferred` (no validation until commit).
    pub strategy: &'static str,
    /// Row operations the statement recorded.
    pub ops: usize,
    /// Net delta size after inverse pairs cancelled.
    pub net_ops: usize,
    /// Violations found (the statement was reverted if nonzero).
    pub violations: usize,
    /// Whether the statement was rolled back.
    pub reverted: bool,
    /// Key-counter probes during validation (detail gate only).
    pub key_probes: u64,
    /// Selection-counter probes during validation (detail gate only).
    pub sel_probes: u64,
    /// Undo-log depth when the statement finished validating.
    pub undo_depth: usize,
    /// Wall-clock nanoseconds for the validation step (detail gate only).
    pub duration_ns: u64,
    /// Per-constraint-class costs, non-zero classes only (detail gate
    /// only for the delta path; bulk aggregate checks always count).
    pub per_kind: Vec<ConstraintCost>,
}

impl EnforcementReport {
    /// Extracts the per-class costs from a statement-scoped snapshot diff,
    /// keeping only classes that did something.
    pub(crate) fn per_kind_from(diff: &MetricsSnapshot) -> Vec<ConstraintCost> {
        ConstraintClass::ALL
            .into_iter()
            .filter_map(|class| {
                let k = diff.kind(class);
                (k.checks != 0 || k.violations != 0 || k.nanos != 0).then(|| ConstraintCost {
                    class: class.name(),
                    checks: k.checks,
                    violations: k.violations,
                    nanos: k.nanos,
                })
            })
            .collect()
    }

    /// One-line summary, used as the obs sink event detail.
    pub fn summary(&self) -> String {
        format!(
            "{} {:?}/{} ops={} net={} violations={}{}",
            self.statement,
            self.mode,
            self.strategy,
            self.ops,
            self.net_ops,
            self.violations,
            if self.reverted { " reverted" } else { "" }
        )
    }

    /// Renders the report for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "statement : {}", self.statement);
        let _ = writeln!(out, "mode      : {:?} ({})", self.mode, self.strategy);
        let _ = writeln!(out, "delta     : {} ops, {} net", self.ops, self.net_ops);
        let _ = writeln!(
            out,
            "verdict   : {}",
            if self.reverted {
                format!("{} violation(s), reverted", self.violations)
            } else {
                "clean".into()
            }
        );
        let _ = writeln!(
            out,
            "probes    : {} key, {} sel; undo depth {}",
            self.key_probes, self.sel_probes, self.undo_depth
        );
        if self.duration_ns > 0 {
            let _ = writeln!(out, "validation: {} ns", self.duration_ns);
        }
        for k in &self.per_kind {
            let _ = writeln!(
                out,
                "  {:<22} {:>6} checks {:>4} violations {:>9} ns",
                k.class, k.checks, k.violations, k.nanos
            );
        }
        out
    }
}

/// One step of a query plan, with the rows it produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExplainStep {
    /// The operator (`scan`, `join`, `filter`, `project`).
    pub op: &'static str,
    /// What it ran against (table name, or the predicate/column list).
    pub target: String,
    /// Rows flowing out of this step.
    pub rows_out: usize,
    /// Operator-specific annotation (join keys, predicate count, …).
    pub detail: String,
}

/// The executed plan of one [`crate::Query`], produced by
/// [`crate::Database::explain`]. The query *runs* — row counts are actual,
/// not estimates (the executor is a nested-loop interpreter; the value of
/// EXPLAIN here is seeing where rows multiply or vanish).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct QueryExplain {
    /// The steps, in execution order.
    pub steps: Vec<ExplainStep>,
    /// Rows the query returned.
    pub rows_out: usize,
}

impl QueryExplain {
    pub(crate) fn step(
        &mut self,
        op: &'static str,
        target: impl Into<String>,
        rows_out: usize,
        detail: impl Into<String>,
    ) {
        self.steps.push(ExplainStep {
            op,
            target: target.into(),
            rows_out,
            detail: detail.into(),
        });
    }

    /// Renders the plan for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>2}. {:<8} {:<28} -> {:>6} rows   {}",
                i + 1,
                s.op,
                s.target,
                s.rows_out,
                s.detail
            );
        }
        let _ = writeln!(out, "    result{:>37} rows", self.rows_out);
        out
    }
}

//! Read-only database snapshots for concurrent sessions.
//!
//! A [`ReadSnapshot`] is a frozen version of a [`Database`]: the schema,
//! the views, and a copy-on-write clone of the relational state
//! ([`RelState::clone`] is O(tables), not O(rows) — see the CoW notes on
//! `RelState`). Taking one never blocks the writer, and once taken it is
//! immune to later mutation: the writer's `Arc::make_mut` unshares any
//! table it touches, leaving the snapshot's version intact.
//!
//! This is the read half of the server's concurrency story (DESIGN.md
//! §13): sessions execute `query`/`explain` statements against the
//! snapshot published at their statement's start, while the single
//! serialized commit pipeline advances the authoritative state.

use std::collections::HashMap;
use std::sync::Arc;

use ridl_relational::{RelSchema, RelState, Row};

use crate::db::{execute_query, explain_query, Database, EngineError};
use crate::query::Query;
use crate::report::QueryExplain;

/// An immutable frozen version of a database, serving reads via `&self`.
///
/// Cheap to create (O(tables) + schema/view clone, independent of row
/// count) and cheap to share (wrap in an `Arc` and hand clones to any
/// number of threads — every field is immutable after construction).
#[derive(Clone, Debug)]
pub struct ReadSnapshot {
    schema: Arc<RelSchema>,
    views: Arc<HashMap<String, Query>>,
    state: RelState,
    version: u64,
}

impl ReadSnapshot {
    /// The schema the snapshot was taken under.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The frozen state.
    pub fn state(&self) -> &RelState {
        &self.state
    }

    /// The commit version this snapshot reflects (assigned by the caller
    /// that published it; 0 for ad-hoc snapshots).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total rows in the frozen state.
    pub fn num_rows(&self) -> usize {
        self.state.num_rows()
    }

    /// Runs a query against the frozen state — same executor, same plans,
    /// same errors as [`Database::select`].
    pub fn select(&self, q: &Query) -> Result<Vec<Row>, EngineError> {
        execute_query(&self.schema, &self.state, q, &mut None)
    }

    /// Explains a query against the frozen state; see [`Database::explain`].
    pub fn explain(&self, q: &Query) -> Result<QueryExplain, EngineError> {
        explain_query(&self.schema, &self.state, q)
    }

    /// Runs a named view against the frozen state.
    pub fn select_view(&self, name: &str) -> Result<Vec<Row>, EngineError> {
        let q = self
            .views
            .get(name)
            .ok_or_else(|| EngineError::Unknown(format!("view {name}")))?;
        self.select(q)
    }

    /// Names of the views frozen into the snapshot.
    pub fn view_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.views.keys().map(String::as_str).collect();
        v.sort();
        v
    }

    /// True if this snapshot still shares every table's storage with
    /// `db`'s live state — i.e. no mutation has happened since it was
    /// taken. Test hook proving snapshots are zero-copy.
    pub fn shares_storage_with(&self, db: &Database) -> bool {
        self.state.shares_storage_with(db.state())
    }
}

impl Database {
    /// Takes a read snapshot of the current committed state: O(tables)
    /// for the state plus one schema/view-map clone, independent of row
    /// count. The snapshot serves [`ReadSnapshot::select`] /
    /// [`ReadSnapshot::explain`] / [`ReadSnapshot::select_view`] through
    /// `&self` and never sees later mutations.
    ///
    /// `version` is an arbitrary caller-assigned label (the server stamps
    /// its commit sequence number); use [`Database::snapshot`] when it
    /// does not matter.
    pub fn snapshot_at(&self, version: u64) -> ReadSnapshot {
        ridl_obs::metrics().snapshots_taken.inc();
        ReadSnapshot {
            schema: Arc::new(self.schema.clone()),
            views: Arc::new(self.views.clone()),
            state: self.state.clone(),
            version,
        }
    }

    /// [`Database::snapshot_at`] with version 0.
    pub fn snapshot(&self) -> ReadSnapshot {
        self.snapshot_at(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::{DataType, Value};
    use ridl_relational::{Column, RelConstraintKind, Table};

    fn v(s: &str) -> Option<Value> {
        Some(Value::str(s))
    }

    fn sample_db() -> Database {
        let mut s = RelSchema::new("t");
        let d = s.domain("D", DataType::Char(10));
        let paper = s.add_table(Table::new(
            "Paper",
            vec![
                Column::not_null("Paper_Id", d),
                Column::nullable("Program_Id", d),
            ],
        ));
        s.add_named(RelConstraintKind::PrimaryKey {
            table: paper,
            cols: vec![0],
        });
        Database::create(s).unwrap()
    }

    /// Satellite: a reader holding a snapshot observes a stable state
    /// while the writer commits — and the snapshot is zero-copy until the
    /// writer actually touches a table.
    #[test]
    fn snapshot_is_stable_across_writer_commits() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        let snap = db.snapshot_at(7);
        assert_eq!(snap.version(), 7);
        assert!(snap.shares_storage_with(&db), "snapshot must be zero-copy");
        // The writer commits more rows; the snapshot stays frozen.
        db.insert("Paper", vec![v("P2"), None]).unwrap();
        db.insert("Paper", vec![v("P3"), None]).unwrap();
        assert_eq!(snap.num_rows(), 1);
        assert_eq!(db.state().num_rows(), 3);
        assert!(!snap.shares_storage_with(&db));
        let q = Query::from("Paper").select(&["Paper_Id"]);
        assert_eq!(snap.select(&q).unwrap(), vec![vec![v("P1")]]);
        assert_eq!(db.select(&q).unwrap().len(), 3);
    }

    /// Satellite: snapshot reads stay available (and stable) while a long
    /// write transaction is open — uncommitted changes are never visible.
    #[test]
    fn snapshot_reads_progress_during_open_transaction() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        let snap = db.snapshot();
        db.begin();
        db.insert_unchecked("Paper", vec![v("UNCOMMITTED"), None])
            .unwrap();
        // Snapshot taken before the transaction: frozen pre-state.
        assert_eq!(snap.num_rows(), 1);
        // A fresh snapshot mid-transaction sees the in-progress state
        // (the *server* only publishes post-commit snapshots; the engine
        // hook itself is just a state copy), and keeps serving even if
        // the transaction later rolls back.
        let mid = db.snapshot();
        assert_eq!(mid.num_rows(), 2);
        db.rollback().unwrap();
        assert_eq!(mid.num_rows(), 2, "snapshot unaffected by rollback");
        assert_eq!(db.state().num_rows(), 1);
    }

    #[test]
    fn snapshot_serves_views_and_explain() {
        let mut db = sample_db();
        db.insert("Paper", vec![v("P1"), None]).unwrap();
        db.create_view("V_ALL", Query::from("Paper").select(&["Paper_Id"]));
        let snap = db.snapshot();
        assert_eq!(snap.view_names(), vec!["V_ALL"]);
        assert_eq!(snap.select_view("V_ALL").unwrap().len(), 1);
        assert!(snap.select_view("NOPE").is_err());
        let ex = snap.explain(&Query::from("Paper")).unwrap();
        assert_eq!(ex.rows_out, 1);
        assert_eq!(snap.schema().tables.len(), 1);
    }
}

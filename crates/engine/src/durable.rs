//! Durability wiring: opens a [`Database`] over an on-disk store
//! directory, recovers from whatever a crash left behind, and keeps the
//! write-ahead log and checkpoints in step with the engine's commit
//! points.
//!
//! The protocol pieces (WAL framing, snapshot format, the crash-safe
//! checkpoint sequence) live in `ridl-durable`; this module is the glue
//! that decides *when* they run:
//!
//! * every successful statement outside a transaction, and every
//!   successful outermost `commit`, appends one WAL unit ending in a
//!   commit marker, then fsyncs per the configured [`FsyncPolicy`];
//! * `insert_unchecked` outside a transaction logs an *unchecked* unit,
//!   so recovery re-defers its constraint check exactly as the live run
//!   did;
//! * `bulk_load` / `load_state` checkpoint the incoming state instead of
//!   logging it row by row;
//! * recovery loads the newest usable checkpoint, replays the committed
//!   WAL suffix through the engine's own validation path, discards any
//!   torn tail, and reports what it did in a [`RecoveryReport`].

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use ridl_durable::store::{store_path, CheckpointFailure, WAL_FILE};
use ridl_durable::{
    encode_unit, fingerprint_str, read_store, wal, write_checkpoint, CheckpointKind,
    CheckpointPlan, CheckpointStats, Durability, DurableIo, ExtentGeometry, FsyncPolicy,
    RecoveryReport, StdIo,
};
use ridl_obs::journal;
use ridl_obs::Severity;
use ridl_relational::{parallel, DeltaOp, RelSchema, RelState, Row, TableId};

use crate::db::{Database, EngineError};

/// Longest delta chain before the next checkpoint is forced to be a full
/// base. Bounds both recovery merge work and the number of files a scan
/// probes; 8 deltas at the auto-checkpoint threshold keeps the chain's
/// total bytes comfortably below one extra base.
const MAX_DELTA_CHAIN: u32 = 8;

/// The engine's live connection to a store directory.
pub(crate) struct WalHandle {
    io: Arc<dyn DurableIo>,
    dir: PathBuf,
    config: Durability,
    /// Checkpoint generation; the WAL header carries the epoch its units
    /// apply on top of.
    epoch: u64,
    /// Schema fingerprint cross-checked against snapshots and WAL headers.
    fingerprint: u64,
    /// Current WAL file length (the append position).
    wal_len: u64,
    /// Set on any append/fsync failure: the log may no longer reflect the
    /// state, so mutations are refused until a checkpoint succeeds.
    poisoned: bool,
    /// Group commit: when the last fsync happened and whether appended
    /// bytes are still waiting for one.
    last_sync: Instant,
    unsynced: bool,
    /// Commits appended since the last fsync — the group-commit batch
    /// size, recorded to the `wal.group_batch` histogram at each fsync.
    commits_since_sync: u64,
    /// The extent geometry frozen by the current chain's base checkpoint
    /// (v2). `None` until the first v2 base exists (fresh store, or a
    /// legacy v1 snapshot awaiting upgrade) — then every checkpoint is a
    /// full base.
    geometry: Option<ExtentGeometry>,
    /// `(table, extent)` pairs mutated since the last checkpoint, marked
    /// at mutation time against `geometry`. What an incremental
    /// checkpoint rewrites.
    dirty: BTreeSet<(u32, u32)>,
    /// Set when a mutation touched a table the geometry does not cover
    /// (defensive; schema changes mid-run are otherwise rejected). Forces
    /// the next checkpoint to be a base.
    dirty_overflow: bool,
    /// Deltas layered on the current base so far.
    chain_len: u32,
    /// Size accounting of the most recent durable checkpoint.
    last_ckpt: Option<CheckpointStats>,
}

impl WalHandle {
    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

fn io_err(what: &str, e: std::io::Error) -> EngineError {
    EngineError::Io(format!("{what}: {e}"))
}

/// Fingerprint of the relational schema, stored in snapshots and WAL
/// headers so a store is never replayed under a different schema. Derived
/// from the schema's debug rendering — conservative: any structural
/// change (tables, columns, constraints) changes it.
fn schema_fingerprint(schema: &RelSchema) -> u64 {
    fingerprint_str(&format!("{schema:?}"))
}

impl Database {
    /// Opens (or creates) a durable database in `dir` with default
    /// durability (fsync on every commit), recovering whatever a previous
    /// process — cleanly shut down or not — left there.
    pub fn open(dir: impl AsRef<Path>, schema: RelSchema) -> Result<Self, EngineError> {
        Self::open_with(Arc::new(StdIo), dir, schema, Durability::default())
    }

    /// [`Database::open`] with an explicit I/O implementation and
    /// durability configuration (the fault-injection entry point).
    pub fn open_with(
        io: Arc<dyn DurableIo>,
        dir: impl AsRef<Path>,
        schema: RelSchema,
        config: Durability,
    ) -> Result<Self, EngineError> {
        let dir = dir.as_ref().to_path_buf();
        let mut span = ridl_obs::span::enter("engine.recover");
        // Always-on wall clock (the obs Stopwatch is detail-gated): the
        // recovery report carries the elapsed time unconditionally.
        let wall = Instant::now();
        let sw = ridl_obs::Stopwatch::start();
        let mut db = Database::create(schema)?;
        let fingerprint = schema_fingerprint(&db.schema);

        io.create_dir_all(&dir)
            .map_err(|e| io_err("create store dir", e))?;
        let scan = read_store(&*io, &dir)
            .map_err(|e| io_err("read store", e))?
            .map_err(|e| EngineError::Corrupt(e.0))?;

        let mut report = RecoveryReport {
            fresh: scan.fresh && scan.snapshot.is_none() && scan.snapshots_rejected == 0,
            snapshots_rejected: scan.snapshots_rejected,
            wal_bytes_scanned: scan.wal_len,
            bytes_discarded: if scan.stale_wal {
                // The whole log predates the checkpoint; every byte past
                // its header was already absorbed.
                scan.wal_len
            } else {
                scan.wal.discarded
            },
            stale_wal: scan.stale_wal,
            snapshot_format: scan.snapshot_format,
            deltas_merged: scan.deltas_merged,
            ..RecoveryReport::default()
        };

        // Cross-check fingerprints before touching any data.
        if let Some((snap, _)) = &scan.snapshot {
            if snap.fingerprint != fingerprint {
                return Err(EngineError::SchemaMismatch);
            }
        }
        if let Some(h) = &scan.wal.header {
            if h.fingerprint != fingerprint {
                return Err(EngineError::SchemaMismatch);
            }
        }

        // Base state: the chosen checkpoint, fully validated on the way in
        // (load_state), or the empty state.
        let epoch = match scan.snapshot {
            Some((snap, file)) => {
                if snap.state.num_tables() != db.schema.tables.len() {
                    return Err(EngineError::Corrupt(format!(
                        "snapshot has {} tables, schema has {}",
                        snap.state.num_tables(),
                        db.schema.tables.len()
                    )));
                }
                report.checkpoint = Some((snap.epoch, file));
                let epoch = snap.epoch;
                db.load_state(snap.state)?;
                epoch
            }
            None => scan.wal.header.map(|h| h.epoch).unwrap_or(0),
        };

        if !report.fresh {
            journal::record(
                Severity::Info,
                "recover.begin",
                vec![
                    ("epoch", epoch.into()),
                    ("wal_bytes", scan.wal_len.into()),
                    ("deltas_merged", report.deltas_merged.into()),
                    ("snapshot_format", u64::from(report.snapshot_format).into()),
                ],
            );
        }
        if report.stale_wal {
            journal::record(
                Severity::Warn,
                "recover.stale_wal",
                vec![("epoch", epoch.into()), ("bytes", scan.wal_len.into())],
            );
        }

        // Replay the committed WAL suffix through the engine's own
        // validation path. Checked units re-validate (and must pass — they
        // passed live); unchecked units re-defer, exactly as the live run
        // did. A unit that no longer validates stops replay gracefully.
        let units = scan.wal.units;
        for unit in &units {
            if report.replay_rejected {
                break;
            }
            let mark = db.undo.len();
            for op in &unit.ops {
                db.apply(op.clone());
            }
            if unit.checked {
                match db.finish_statement(mark, "recover.replay") {
                    Ok(()) => {}
                    Err(EngineError::ConstraintViolation(_)) => {
                        report.replay_rejected = true;
                        journal::record(
                            Severity::Warn,
                            "recover.reject",
                            vec![
                                ("unit", report.units_replayed.into()),
                                ("ops", unit.ops.len().into()),
                            ],
                        );
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            } else {
                db.has_unchecked = true;
                db.unchecked_uncovered = true;
                db.undo.clear();
            }
            journal::record(
                Severity::Debug,
                "recover.replay",
                vec![
                    ("unit", report.units_replayed.into()),
                    ("ops", unit.ops.len().into()),
                    ("checked", unit.checked.into()),
                ],
            );
            report.units_replayed += 1;
            report.ops_replayed += unit.ops.len();
        }

        // Re-seed the dirty-extent set from the replayed units: their
        // changes are in the WAL but not yet in the chain on disk, so the
        // next incremental checkpoint must rewrite their extents. (During
        // replay `db.wal` was not yet attached, so the live `note_dirty`
        // path never saw them.)
        let mut dirty_extents = BTreeSet::new();
        let mut dirty_overflow = false;
        if let Some(g) = &scan.geometry {
            for unit in &units[..report.units_replayed] {
                for op in &unit.ops {
                    let (DeltaOp::Insert { table, row } | DeltaOp::Remove { table, row }) = op;
                    let t = table.index();
                    if t >= g.num_tables() {
                        dirty_overflow = true;
                    } else {
                        dirty_extents.insert((t as u32, g.extent_of(t, row)));
                    }
                }
            }
        }

        // Establish a clean append point. The WAL file can be appended
        // to as-is only when it is fully intact; a torn tail, a stale
        // log, or a rejected replay means the file must be rewritten to
        // exactly the units the recovered state contains.
        let dirty = report.bytes_discarded > 0
            || report.stale_wal
            || report.replay_rejected
            || scan.wal.header.is_none();
        let mut handle = WalHandle {
            io,
            dir,
            config,
            epoch,
            fingerprint,
            wal_len: scan.wal.committed_end,
            poisoned: false,
            last_sync: Instant::now(),
            unsynced: false,
            commits_since_sync: 0,
            geometry: scan.geometry,
            dirty: dirty_extents,
            dirty_overflow,
            chain_len: scan.deltas_merged as u32,
            last_ckpt: None,
        };
        if dirty {
            let rewrite = rewrite_wal(&handle, &units, report.units_replayed);
            journal::record(
                if rewrite.is_ok() {
                    Severity::Warn
                } else {
                    Severity::Error
                },
                "recover.rewrite",
                vec![
                    ("units_kept", report.units_replayed.into()),
                    ("discarded", report.bytes_discarded.into()),
                    ("ok", rewrite.is_ok().into()),
                ],
            );
            match rewrite {
                Ok(len) => handle.wal_len = len,
                // The store is readable but not yet appendable; surface
                // the recovered data and let a checkpoint repair the log.
                Err(_) => handle.poisoned = true,
            }
        }

        let m = ridl_obs::metrics();
        m.wal_recoveries.inc();
        m.wal_replayed_ops.add(report.ops_replayed as u64);
        m.wal_discarded_bytes.add(report.bytes_discarded);
        if span.is_recording() {
            span.attr("units_replayed", report.units_replayed);
            span.attr("ops_replayed", report.ops_replayed);
            span.attr("bytes_discarded", report.bytes_discarded);
            span.attr("stale_wal", report.stale_wal);
            span.attr("fresh", report.fresh);
        }
        ridl_obs::hist::record_named("engine.recover", sw.elapsed_ns());
        // Recovery progress histograms: always-on count distributions so
        // the bench artifact can report replay volume without detail mode.
        ridl_obs::hist::record_named("recover.units_replayed", report.units_replayed as u64);
        ridl_obs::hist::record_named("recover.deltas_merged", report.deltas_merged as u64);
        ridl_obs::hist::record_named("recover.bytes_scanned", report.wal_bytes_scanned);
        report.elapsed_ns = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if !report.fresh {
            journal::record(
                Severity::Info,
                "recover.done",
                vec![
                    ("epoch", epoch.into()),
                    ("units", report.units_replayed.into()),
                    ("ops", report.ops_replayed.into()),
                    ("discarded", report.bytes_discarded.into()),
                    ("elapsed_ns", report.elapsed_ns.into()),
                ],
            );
            // Dump-on-recovery: the one moment the flight recorder is
            // guaranteed to matter. No-op unless RIDL_JOURNAL_JSONL is set.
            journal::dump_env();
        }

        db.wal = Some(handle);
        db.recovery = Some(report);
        Ok(db)
    }

    /// Whether this database is backed by a store directory.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// The durability configuration, if durable.
    pub fn durability(&self) -> Option<Durability> {
        self.wal.as_ref().map(|w| w.config)
    }

    /// Current WAL length in bytes, if durable.
    pub fn wal_bytes(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.wal_len)
    }

    /// What recovery found when this database was opened from disk.
    /// `None` for in-memory databases.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Forces any WAL bytes still buffered by a group-commit window to
    /// durable storage. No-op for in-memory databases.
    pub fn flush_wal(&mut self) -> Result<(), EngineError> {
        let Some(w) = self.wal.as_mut() else {
            return Ok(());
        };
        if w.poisoned {
            return Err(EngineError::WalPoisoned);
        }
        if w.unsynced {
            let path = store_path(&w.dir, WAL_FILE);
            let sw = ridl_obs::Stopwatch::start();
            if let Err(e) = w.io.sync(&path) {
                w.poisoned = true;
                journal::record(
                    Severity::Error,
                    "wal.poison",
                    vec![("stage", "flush_fsync".into())],
                );
                return Err(io_err("wal fsync", e));
            }
            ridl_obs::metrics().wal_fsyncs.inc();
            ridl_obs::hist::record_named("wal.fsync", sw.elapsed_ns());
            ridl_obs::hist::record_named("wal.group_batch", w.commits_since_sync);
            journal::record(
                Severity::Debug,
                "wal.fsync",
                vec![
                    ("batch", w.commits_since_sync.into()),
                    ("flush", true.into()),
                ],
            );
            w.commits_since_sync = 0;
            w.unsynced = false;
            w.last_sync = Instant::now();
        }
        Ok(())
    }

    /// Takes a checkpoint: snapshots the current state, then truncates
    /// the WAL. Also the recovery path from a poisoned WAL. Refused while
    /// a transaction is open ([`EngineError::CheckpointInTransaction`]) —
    /// a snapshot taken mid-transaction would make uncommitted changes
    /// durable. While unchecked rows are pending their deferred check,
    /// the state is fully validated first (checkpoints only ever persist
    /// constraint-valid states).
    pub fn checkpoint(&mut self) -> Result<(), EngineError> {
        self.checkpoint_inner(false)
    }

    /// [`Database::checkpoint`], but always writes a full base snapshot —
    /// never an incremental delta — collapsing the delta chain to one
    /// file and re-freezing the extent geometry to the current state's
    /// size.
    pub fn checkpoint_full(&mut self) -> Result<(), EngineError> {
        self.checkpoint_inner(true)
    }

    fn checkpoint_inner(&mut self, force_full: bool) -> Result<(), EngineError> {
        if self.wal.is_none() {
            return Err(EngineError::Unknown("no durable store attached".into()));
        }
        if !self.txn_marks.is_empty() {
            return Err(EngineError::CheckpointInTransaction);
        }
        if self.has_unchecked {
            let violations = parallel::validate_parallel(&self.schema, &self.state);
            if !violations.is_empty() {
                return Err(EngineError::ConstraintViolation(violations));
            }
            self.has_unchecked = false;
            self.unchecked_uncovered = false;
        }
        let state = std::mem::take(&mut self.state);
        let r = self.wal_checkpoint_of(&state, force_full);
        self.state = state;
        r
    }

    /// Size accounting of the most recent checkpoint this process wrote
    /// (base or delta). `None` for in-memory databases and before the
    /// first checkpoint.
    pub fn last_checkpoint_stats(&self) -> Option<CheckpointStats> {
        self.wal.as_ref().and_then(|w| w.last_ckpt)
    }

    /// Marks the extent holding `row` dirty, so the next incremental
    /// checkpoint rewrites it. Called on every effective mutation (and
    /// every revert — conservative: a revert restores the snapshot's
    /// content, but proving that is not worth the bookkeeping). No-op
    /// until a v2 base has frozen a geometry.
    pub(crate) fn note_dirty(&mut self, table: TableId, row: &Row) {
        let Some(w) = self.wal.as_mut() else {
            return;
        };
        let Some(g) = w.geometry.as_ref() else {
            return;
        };
        let t = table.index();
        if t >= g.num_tables() {
            w.dirty_overflow = true;
            return;
        }
        w.dirty.insert((t as u32, g.extent_of(t, row)));
    }

    /// Writes a checkpoint of `state` (which may be a candidate state not
    /// yet swapped in — `bulk_load`). No-op for in-memory databases.
    ///
    /// Picks incremental vs full: an extent delta is written when a
    /// geometry exists, the dirty set describes `state` (it does not for
    /// `bulk_load`/`load_state` candidates — those pass `force_full`),
    /// the chain is short enough, and the dirty fraction is small enough
    /// that a delta actually saves bytes. Anything else gets a base.
    ///
    /// Failure modes: if the snapshot itself could not be made current,
    /// the store still holds the previous state and the error aborts the
    /// caller's operation. If only the WAL reset failed, the snapshot
    /// *is* durable — the call succeeds, but the handle is poisoned until
    /// a later checkpoint repairs the log.
    pub(crate) fn wal_checkpoint_of(
        &mut self,
        state: &RelState,
        force_full: bool,
    ) -> Result<(), EngineError> {
        let Some(w) = self.wal.as_mut() else {
            return Ok(());
        };
        let mut span = ridl_obs::span::enter("engine.checkpoint");
        let sw = ridl_obs::Stopwatch::start();
        let next = w.epoch + 1;
        let use_delta = !force_full
            && !w.dirty_overflow
            && w.chain_len < MAX_DELTA_CHAIN
            && w.geometry.as_ref().is_some_and(|g| {
                // Past half the extents dirty, a delta is bigger than the
                // base it postpones — just write the base.
                g.num_tables() == state.num_tables()
                    && (w.dirty.len() as u64) * 2 <= g.total_extents()
            });
        let plan = if use_delta {
            CheckpointPlan::Delta {
                geometry: w.geometry.as_ref().expect("use_delta requires geometry"),
                dirty: &w.dirty,
                seq: w.chain_len + 1,
            }
        } else {
            CheckpointPlan::Base
        };
        if span.is_recording() {
            span.attr("epoch", next);
            span.attr("rows", state.num_rows());
            span.attr("kind", if use_delta { "delta" } else { "base" });
        }
        journal::record(
            Severity::Info,
            "ckpt.decision",
            vec![
                ("epoch", next.into()),
                ("kind", if use_delta { "delta" } else { "base" }.into()),
                ("dirty", w.dirty.len().into()),
                ("chain_len", u64::from(w.chain_len).into()),
                ("wal_len", w.wal_len.into()),
            ],
        );
        let settle = |w: &mut WalHandle, outcome: &ridl_durable::CheckpointOutcome| {
            w.epoch = next;
            w.chain_len = match outcome.stats.kind {
                CheckpointKind::Base => 0,
                CheckpointKind::Delta => w.chain_len + 1,
            };
            w.geometry = Some(outcome.geometry.clone());
            w.dirty.clear();
            w.dirty_overflow = false;
            w.last_ckpt = Some(outcome.stats);
            ridl_obs::metrics().wal_checkpoints.inc();
        };
        match write_checkpoint(&*w.io, &w.dir, next, w.fingerprint, state, plan) {
            Ok(outcome) => {
                journal::record(
                    Severity::Info,
                    "ckpt.done",
                    vec![
                        ("epoch", next.into()),
                        (
                            "kind",
                            match outcome.stats.kind {
                                CheckpointKind::Base => "base",
                                CheckpointKind::Delta => "delta",
                            }
                            .into(),
                        ),
                        ("bytes", outcome.stats.bytes.into()),
                    ],
                );
                settle(w, &outcome);
                w.wal_len = outcome.wal_len;
                w.poisoned = false;
                w.unsynced = false;
                w.commits_since_sync = 0;
                w.last_sync = Instant::now();
                ridl_obs::hist::record_named("engine.checkpoint", sw.elapsed_ns());
                Ok(())
            }
            Err(CheckpointFailure::SnapshotWrite(e)) => {
                // Nothing became current; the old snapshot + WAL (and the
                // dirty set, which still describes the distance to the
                // on-disk chain) stay as they were — the handle stays
                // healthy.
                journal::record(
                    Severity::Warn,
                    "ckpt.fail",
                    vec![("epoch", next.into()), ("stage", "snapshot".into())],
                );
                Err(io_err("checkpoint snapshot", e))
            }
            Err(CheckpointFailure::WalReset { error, outcome }) => {
                // The new snapshot is durable; only log truncation failed.
                // Record the new epoch + chain position (the files on disk
                // carry them) and poison appends until a later checkpoint
                // rewrites the log.
                journal::record(
                    Severity::Error,
                    "ckpt.fail",
                    vec![("epoch", next.into()), ("stage", "wal_reset".into())],
                );
                settle(w, &outcome);
                w.poisoned = true;
                let _ = error;
                Ok(())
            }
        }
    }

    /// Appends `undo[mark..]` as one committed WAL unit and applies the
    /// fsync policy. No-op for in-memory databases and empty deltas. Any
    /// failure poisons the handle; the caller reverts the statement.
    pub(crate) fn wal_commit(&mut self, mark: usize, checked: bool) -> Result<(), EngineError> {
        let ops = &self.undo[mark..];
        if ops.is_empty() {
            return Ok(());
        }
        let Some(w) = self.wal.as_mut() else {
            return Ok(());
        };
        if w.poisoned {
            return Err(EngineError::WalPoisoned);
        }
        let m = ridl_obs::metrics();
        let bytes = encode_unit(ops, checked);
        let path = store_path(&w.dir, WAL_FILE);
        let sw = ridl_obs::Stopwatch::start();
        if let Err(e) = w.io.append(&path, &bytes) {
            w.poisoned = true;
            journal::record(
                Severity::Error,
                "wal.poison",
                vec![("stage", "append".into()), ("bytes", bytes.len().into())],
            );
            return Err(io_err("wal append", e));
        }
        w.wal_len += bytes.len() as u64;
        m.wal_appends.inc();
        m.wal_append_bytes.add(bytes.len() as u64);
        ridl_obs::hist::record_named("wal.append", sw.elapsed_ns());
        ridl_obs::hist::record_named("wal.append_bytes", bytes.len() as u64);
        journal::record(
            Severity::Debug,
            "wal.append",
            vec![
                ("bytes", bytes.len().into()),
                ("ops", ops.len().into()),
                ("checked", checked.into()),
            ],
        );
        w.commits_since_sync += 1;
        let sync_now = match w.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Never => false,
            FsyncPolicy::GroupCommit { window_micros } => {
                w.last_sync.elapsed().as_micros() as u64 >= window_micros
            }
        };
        if sync_now {
            let sw = ridl_obs::Stopwatch::start();
            if let Err(e) = w.io.sync(&path) {
                w.poisoned = true;
                // The append (commit marker included) may still be durable
                // even though the fsync failed, while the caller reverts
                // the statement in memory — a crash before the repairing
                // checkpoint would then replay a statement the caller was
                // told failed. Best-effort rewind of the log to its
                // pre-append length closes that window; if the rewind
                // itself fails the anomaly remains possible (accepted,
                // fsyncgate-style) and the handle stays poisoned either
                // way, so no further appends happen until a checkpoint
                // rebuilds the log.
                let pre = w.wal_len - bytes.len() as u64;
                let rewound =
                    w.io.truncate(&path, pre)
                        .and_then(|()| w.io.sync(&path))
                        .is_ok();
                if rewound {
                    w.wal_len = pre;
                }
                journal::record(
                    Severity::Error,
                    "wal.rewind",
                    vec![("to", pre.into()), ("ok", rewound.into())],
                );
                return Err(io_err("wal fsync", e));
            }
            m.wal_fsyncs.inc();
            ridl_obs::hist::record_named("wal.fsync", sw.elapsed_ns());
            ridl_obs::hist::record_named("wal.group_batch", w.commits_since_sync);
            journal::record(
                Severity::Debug,
                "wal.fsync",
                vec![
                    ("batch", w.commits_since_sync.into()),
                    ("flush", false.into()),
                ],
            );
            w.commits_since_sync = 0;
            w.unsynced = false;
            w.last_sync = Instant::now();
        } else {
            w.unsynced = true;
        }
        m.wal_commits.inc();
        Ok(())
    }

    /// Checkpoints automatically once the WAL outgrows the configured
    /// threshold. Deferred while a transaction is open or unchecked rows
    /// are pending (a checkpoint only persists committed, valid states);
    /// best-effort — a failure leaves the WAL in place and the poison
    /// flag (if set) surfaces on the next mutation.
    pub(crate) fn maybe_auto_checkpoint(&mut self) {
        let Some(w) = self.wal.as_ref() else {
            return;
        };
        let Some(threshold) = w.config.checkpoint_every_bytes else {
            return;
        };
        if w.wal_len <= threshold || w.poisoned || !self.txn_marks.is_empty() || self.has_unchecked
        {
            return;
        }
        let state = std::mem::take(&mut self.state);
        let _ = self.wal_checkpoint_of(&state, false);
        self.state = state;
    }
}

/// Rewrites the WAL to exactly the replayed prefix of `units` (fresh
/// header + each unit), atomically, returning the new length. Used when
/// recovery found a file it cannot append to (torn tail, stale epoch,
/// missing header, rejected replay).
fn rewrite_wal(
    w: &WalHandle,
    units: &[ridl_durable::CommitUnit],
    replayed: usize,
) -> Result<u64, EngineError> {
    let mut bytes = wal::wal_init_bytes(w.epoch, w.fingerprint);
    for unit in &units[..replayed] {
        bytes.extend_from_slice(&encode_unit(&unit.ops, unit.checked));
    }
    let tmp = store_path(&w.dir, "wal.tmp");
    let dst = store_path(&w.dir, WAL_FILE);
    w.io.write_new(&tmp, &bytes)
        .and_then(|()| w.io.sync(&tmp))
        .and_then(|()| w.io.rename(&tmp, &dst))
        .and_then(|()| w.io.sync_dir(&w.dir))
        .map_err(|e| io_err("wal rewrite", e))?;
    Ok(bytes.len() as u64)
}

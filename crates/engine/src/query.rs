//! A small query model: selection, projection and equi-joins, enough for
//! the meta-database views and for executing forwards-map SELECTs.

use ridl_brm::Value;

/// A row-level predicate over (possibly qualified) column names.
#[derive(Clone, PartialEq, Debug)]
pub enum Pred {
    /// Column equals a literal.
    Eq(String, Value),
    /// Column IS NULL.
    IsNull(String),
    /// Column IS NOT NULL.
    NotNull(String),
}

/// An equi-join step: join `table` where `left_col = right_col`.
///
/// `left_col` refers to the row assembled so far (qualify with the source
/// table name when ambiguous), `right_col` to the joined table.
#[derive(Clone, PartialEq, Debug)]
pub struct Join {
    /// The table being joined in.
    pub table: String,
    /// Join condition pairs: (column of the assembled row, column of the
    /// joined table).
    pub on: Vec<(String, String)>,
}

/// A query: `SELECT cols FROM table [JOIN …] WHERE preds`.
#[derive(Clone, PartialEq, Debug)]
pub struct Query {
    /// The driving table.
    pub table: String,
    /// Equi-join chain.
    pub joins: Vec<Join>,
    /// Projected column names, possibly `Table.col`-qualified; empty means
    /// all columns of the driving table.
    pub select: Vec<String>,
    /// Conjunctive filter.
    pub filter: Vec<Pred>,
}

impl Query {
    /// `SELECT * FROM table`.
    pub fn from(table: impl Into<String>) -> Self {
        Self {
            table: table.into(),
            joins: Vec::new(),
            select: Vec::new(),
            filter: Vec::new(),
        }
    }

    /// Sets the projection.
    pub fn select(mut self, cols: &[&str]) -> Self {
        self.select = cols.iter().map(|c| (*c).to_owned()).collect();
        self
    }

    /// Adds a filter predicate.
    pub fn filter(mut self, pred: Pred) -> Self {
        self.filter.push(pred);
        self
    }

    /// Adds an equi-join.
    pub fn join(mut self, table: impl Into<String>, on: &[(&str, &str)]) -> Self {
        self.joins.push(Join {
            table: table.into(),
            on: on
                .iter()
                .map(|(l, r)| ((*l).to_owned(), (*r).to_owned()))
                .collect(),
        });
        self
    }

    /// Number of joins — the cost metric of the sublink-option experiment
    /// ("more dynamic joins might be needed", §4.2.2).
    pub fn join_count(&self) -> usize {
        self.joins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let q = Query::from("Paper")
            .select(&["Paper_Id", "Program_Paper.Session_comprising"])
            .join(
                "Program_Paper",
                &[("Paper_ProgramId_Is", "Paper_ProgramId")],
            )
            .filter(Pred::NotNull("Paper_ProgramId_Is".into()));
        assert_eq!(q.join_count(), 1);
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.filter.len(), 1);
    }
}

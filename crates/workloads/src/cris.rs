//! The "CRIS-case": a hypothetical conference-organisation database, the
//! paper's running example (after T.W. Olle, *Design Specifications for
//! Conference Organization*, and the RIDL\* treatment in De Troyer,
//! Meersman & Verlinden, "RIDL\* on the CRIS Case").
//!
//! The reconstruction exercises every BRM feature the mapper handles:
//! simple and compound reference schemes, a subtype hierarchy over `Person`
//! and `Paper`, exclusive and total subtype families, m:n facts, value
//! constraints, occurrence frequencies and role subset/equality constraints.

use ridl_brm::builder::{identify, SchemaBuilder};
use ridl_brm::{DataType, Population, Schema, Side, Value};

/// Builds the CRIS conference-organisation schema.
pub fn schema() -> Schema {
    let mut b = SchemaBuilder::new("cris");

    // ---- People ----
    b.nolot("Person").unwrap();
    identify(&mut b, "Person", "Person_Name", DataType::Char(30)).unwrap();
    b.lot_nolot("Address", DataType::VarChar(80)).unwrap();
    b.fact(
        "person_address",
        ("resides_at", "Person"),
        ("of_residence", "Address"),
    )
    .unwrap();
    b.unique("person_address", Side::Left).unwrap();
    b.nolot("Institution").unwrap();
    identify(
        &mut b,
        "Institution",
        "Institution_Name",
        DataType::Char(40),
    )
    .unwrap();
    b.lot_nolot("Country", DataType::Char(20)).unwrap();
    b.fact(
        "institution_country",
        ("located_in", "Institution"),
        ("location_of", "Country"),
    )
    .unwrap();
    b.unique("institution_country", Side::Left).unwrap();
    b.total_role("institution_country", Side::Left).unwrap();
    b.fact(
        "person_affiliation",
        ("affiliated_with", "Person"),
        ("employing", "Institution"),
    )
    .unwrap();
    b.unique("person_affiliation", Side::Left).unwrap();

    // Person subtypes.
    for sub in ["Author", "Referee", "Participant", "PC_Member"] {
        b.nolot(sub).unwrap();
        b.sublink(sub, "Person").unwrap();
    }
    // A referee never authors what they review — modelled below via an
    // exclusion on the review/writes roles; authors and referees as types
    // may overlap, so no subtype exclusion here.

    // ---- Papers ----
    b.nolot("Paper").unwrap();
    identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
    b.lot("Paper_Title", DataType::VarChar(60)).unwrap();
    b.fact("paper_title", ("titled", "Paper"), ("of", "Paper_Title"))
        .unwrap();
    b.unique("paper_title", Side::Left).unwrap();
    b.total_role("paper_title", Side::Left).unwrap();
    b.lot_nolot("Date", DataType::Date).unwrap();
    b.fact(
        "paper_submitted",
        ("submitted_at", "Paper"),
        ("of_submission", "Date"),
    )
    .unwrap();
    b.unique("paper_submitted", Side::Left).unwrap();

    b.nolot("Invited_Paper").unwrap();
    let sl_invited = b.sublink("Invited_Paper", "Paper").unwrap();
    b.nolot("Accepted_Paper").unwrap();
    let sl_accepted = b.sublink("Accepted_Paper", "Paper").unwrap();
    b.nolot("Rejected_Paper").unwrap();
    let sl_rejected = b.sublink("Rejected_Paper", "Paper").unwrap();
    // Accepted and rejected papers are mutually exclusive.
    b.exclusion_subtypes(&[sl_accepted, sl_rejected]).unwrap();
    let _ = sl_invited;

    b.nolot("Program_Paper").unwrap();
    b.sublink("Program_Paper", "Accepted_Paper").unwrap();
    b.lot("Paper_ProgramId", DataType::Char(2)).unwrap();
    b.fact(
        "pp_program_id",
        ("has", "Program_Paper"),
        ("with", "Paper_ProgramId"),
    )
    .unwrap();
    b.unique("pp_program_id", Side::Left).unwrap();
    b.unique("pp_program_id", Side::Right).unwrap();
    b.total_role("pp_program_id", Side::Left).unwrap();

    // ---- Authorship (m:n) ----
    b.fact("writes", ("author_of", "Author"), ("written_by", "Paper"))
        .unwrap();
    b.unique_pair("writes").unwrap();
    b.total_role("writes", Side::Left).unwrap(); // every author wrote something
    b.fact(
        "presents",
        ("presenter_of", "Author"),
        ("presented_by", "Program_Paper"),
    )
    .unwrap();
    b.unique("presents", Side::Right).unwrap(); // one presenter per program paper
                                                // A presenter must be one of the authors (role subset on the author side).
    b.subset(&[("presents", Side::Left)], &[("writes", Side::Left)])
        .unwrap();

    // ---- Reviewing ----
    b.fact(
        "reviews",
        ("reviewer_of", "Referee"),
        ("reviewed_by", "Paper"),
    )
    .unwrap();
    b.unique_pair("reviews").unwrap();
    // Every paper is reviewed 2 to 4 times.
    b.cardinality("reviews", Side::Right, 2, Some(4)).unwrap();
    // Referees never review their own papers — the reviewing and writing
    // pairs are disjoint at the paper end only if the same person holds
    // both roles; the CRIS case states reviewers are not authors of the
    // reviewed paper, which needs a pair-level constraint; we keep the
    // conservative role-level exclusion used in the RIDL* treatment:
    b.nolot("Review").unwrap();
    identify(&mut b, "Review", "Review_No", DataType::Numeric(5, 0)).unwrap();
    b.fact("review_of", ("about", "Review"), ("judged_in", "Paper"))
        .unwrap();
    b.unique("review_of", Side::Left).unwrap();
    b.total_role("review_of", Side::Left).unwrap();
    b.lot("Grade", DataType::Char(1)).unwrap();
    b.fact("review_grade", ("graded", "Review"), ("grading", "Grade"))
        .unwrap();
    b.unique("review_grade", Side::Left).unwrap();
    b.total_role("review_grade", Side::Left).unwrap();
    b.value_constraint(
        "Grade",
        vec![
            Value::str("A"),
            Value::str("B"),
            Value::str("C"),
            Value::str("D"),
        ],
    )
    .unwrap();

    // ---- Sessions ----
    b.nolot("Session").unwrap();
    b.lot("Session_Day", DataType::Char(3)).unwrap();
    b.lot("Session_Slot", DataType::Numeric(2, 0)).unwrap();
    b.fact(
        "session_day",
        ("held_on", "Session"),
        ("day_of", "Session_Day"),
    )
    .unwrap();
    b.unique("session_day", Side::Left).unwrap();
    b.total_role("session_day", Side::Left).unwrap();
    b.fact(
        "session_slot",
        ("held_in", "Session"),
        ("slot_of", "Session_Slot"),
    )
    .unwrap();
    b.unique("session_slot", Side::Left).unwrap();
    b.total_role("session_slot", Side::Left).unwrap();
    b.external_unique(&[("session_day", Side::Right), ("session_slot", Side::Right)])
        .unwrap();
    b.nolot("Room").unwrap();
    identify(&mut b, "Room", "Room_No", DataType::Numeric(3, 0)).unwrap();
    b.fact(
        "session_room",
        ("located_in", "Session"),
        ("hosting", "Room"),
    )
    .unwrap();
    b.unique("session_room", Side::Left).unwrap();
    b.total_role("session_room", Side::Left).unwrap();
    b.fact(
        "pp_scheduled",
        ("scheduled_in", "Program_Paper"),
        ("comprising", "Session"),
    )
    .unwrap();
    b.unique("pp_scheduled", Side::Left).unwrap();
    b.total_role("pp_scheduled", Side::Left).unwrap();
    b.nolot("Chairperson").unwrap();
    b.sublink("Chairperson", "Person").unwrap();
    b.fact(
        "session_chair",
        ("chaired_by", "Session"),
        ("chairing", "Chairperson"),
    )
    .unwrap();
    b.unique("session_chair", Side::Left).unwrap();

    // ---- Registration & payment ----
    b.lot_nolot("Amount", DataType::Numeric(8, 2)).unwrap();
    b.fact(
        "participant_fee",
        ("charged", "Participant"),
        ("fee_of", "Amount"),
    )
    .unwrap();
    b.unique("participant_fee", Side::Left).unwrap();
    b.total_role("participant_fee", Side::Left).unwrap();
    b.fact(
        "participant_paid",
        ("paid_at", "Participant"),
        ("of_payment", "Date"),
    )
    .unwrap();
    b.unique("participant_paid", Side::Left).unwrap();
    b.nolot("Hotel").unwrap();
    identify(&mut b, "Hotel", "Hotel_Name", DataType::Char(30)).unwrap();
    b.fact(
        "participant_hotel",
        ("housed_in", "Participant"),
        ("housing", "Hotel"),
    )
    .unwrap();
    b.unique("participant_hotel", Side::Left).unwrap();

    b.finish().expect("cris schema is well-formed")
}

/// A consistent sample population of the CRIS schema: two sessions, four
/// papers (two accepted & scheduled, one rejected, one invited-pending),
/// five persons across the subtype spectrum.
pub fn population(s: &Schema) -> Population {
    let mut p = Population::new();
    let e = Value::entity;
    let f = |name: &str| s.fact_type_by_name(name).unwrap();
    let ot = |name: &str| s.object_type_by_name(name).unwrap();

    // Persons 1..=5.
    let names = ["Olga", "Robert", "Peter", "Maria", "Jan"];
    for (i, n) in names.iter().enumerate() {
        let id = i as u64 + 1;
        p.add_fact_closed(s, f("Person_has_Person_Name"), e(id), Value::str(*n));
    }
    p.add_fact_closed(s, f("person_address"), e(1), Value::str("Tilburg 1"));
    // Institutions.
    p.add_fact_closed(
        s,
        f("Institution_has_Institution_Name"),
        e(20),
        Value::str("Tilburg University"),
    );
    p.add_fact_closed(s, f("institution_country"), e(20), Value::str("NL"));
    p.add_fact_closed(s, f("person_affiliation"), e(1), e(20));
    p.add_fact_closed(s, f("person_affiliation"), e(2), e(20));
    // Subtype memberships.
    for a in [1u64, 2] {
        p.add_object(ot("Author"), e(a));
    }
    for r in [3u64, 4] {
        p.add_object(ot("Referee"), e(r));
    }
    p.add_object(ot("Participant"), e(5));
    p.add_object(ot("PC_Member"), e(4));
    p.add_object(ot("Chairperson"), e(4));

    // Papers 10..=13.
    for (i, (id, title)) in [
        ("P10", "Binary Models"),
        ("P11", "RIDL Mapping"),
        ("P12", "Rejected Ideas"),
        ("P13", "Invited Talk"),
    ]
    .iter()
    .enumerate()
    {
        let pe = 10 + i as u64;
        p.add_fact_closed(s, f("Paper_has_Paper_Id"), e(pe), Value::str(*id));
        p.add_fact_closed(s, f("paper_title"), e(pe), Value::str(*title));
    }
    p.add_fact_closed(s, f("paper_submitted"), e(10), Value::Date(50));
    p.add_fact_closed(s, f("paper_submitted"), e(11), Value::Date(60));
    p.add_object(ot("Accepted_Paper"), e(10));
    p.add_object(ot("Accepted_Paper"), e(11));
    p.add_object(ot("Rejected_Paper"), e(12));
    p.add_object(ot("Invited_Paper"), e(13));
    p.add_object(ot("Program_Paper"), e(10));
    p.add_object(ot("Program_Paper"), e(11));
    p.add_fact_closed(s, f("pp_program_id"), e(10), Value::str("A1"));
    p.add_fact_closed(s, f("pp_program_id"), e(11), Value::str("A2"));

    // Authorship.
    p.add_fact_closed(s, f("writes"), e(1), e(10));
    p.add_fact_closed(s, f("writes"), e(2), e(10));
    p.add_fact_closed(s, f("writes"), e(2), e(11));
    p.add_fact_closed(s, f("writes"), e(1), e(12));
    p.add_fact_closed(s, f("writes"), e(2), e(13));
    p.add_fact_closed(s, f("presents"), e(1), e(10));
    p.add_fact_closed(s, f("presents"), e(2), e(11));

    // Reviews: papers 10-12 reviewed twice each.
    let mut review_no = 100u64;
    for (paper, referee) in [(10u64, 3u64), (10, 4), (11, 3), (11, 4), (12, 3), (12, 4)] {
        p.add_fact_closed(s, f("reviews"), e(referee), e(paper));
        review_no += 1;
        p.add_fact_closed(
            s,
            f("Review_has_Review_No"),
            e(review_no),
            Value::Int(review_no as i64),
        );
        p.add_fact_closed(s, f("review_of"), e(review_no), e(paper));
        p.add_fact_closed(
            s,
            f("review_grade"),
            e(review_no),
            Value::str(if paper == 12 { "D" } else { "B" }),
        );
    }

    // Sessions 30, 31.
    p.add_fact_closed(s, f("session_day"), e(30), Value::str("MON"));
    p.add_fact_closed(s, f("session_slot"), e(30), Value::Int(1));
    p.add_fact_closed(s, f("session_day"), e(31), Value::str("MON"));
    p.add_fact_closed(s, f("session_slot"), e(31), Value::Int(2));
    p.add_fact_closed(s, f("Room_has_Room_No"), e(40), Value::Int(101));
    p.add_fact_closed(s, f("session_room"), e(30), e(40));
    p.add_fact_closed(s, f("session_room"), e(31), e(40));
    p.add_fact_closed(s, f("session_chair"), e(30), e(4));
    p.add_fact_closed(s, f("pp_scheduled"), e(10), e(30));
    p.add_fact_closed(s, f("pp_scheduled"), e(11), e(31));

    // Registration.
    p.add_fact_closed(
        s,
        f("participant_fee"),
        e(5),
        Value::Num(ridl_brm::Decimal::new(35000, 2)),
    );
    p.add_fact_closed(s, f("participant_paid"), e(5), Value::Date(70));
    p.add_fact_closed(
        s,
        f("Hotel_has_Hotel_Name"),
        e(50),
        Value::str("Grand Hotel"),
    );
    p.add_fact_closed(s, f("participant_hotel"), e(5), e(50));

    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::population::{is_model, validate};

    #[test]
    fn schema_size() {
        let s = schema();
        assert!(s.num_object_types() >= 25, "{}", s.num_object_types());
        assert!(s.num_fact_types() >= 25, "{}", s.num_fact_types());
        assert!(s.num_sublinks() >= 8);
        assert!(s.num_constraints() >= 40);
    }

    #[test]
    fn sample_population_is_a_model() {
        let s = schema();
        let p = population(&s);
        let violations = validate(&s, &p);
        assert!(is_model(&s, &p), "{violations:?}");
    }
}

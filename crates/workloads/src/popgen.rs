//! Seeded generator of model populations for synthetic schemas.
//!
//! Populations are built to satisfy the schema's constraints *by
//! construction*: identifier values are drawn from per-LOT counters so
//! co-uniqueness holds, total roles are filled for every instance, optional
//! roles with a coin flip, subtype memberships respect exclusion families,
//! and m:n facts pair instances without duplicates. The property tests in
//! `tests/state_equivalence.rs` additionally *verify* modelhood with
//! [`ridl_brm::population::validate`] before using a population.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::collections::{HashMap, HashSet};

use ridl_brm::{
    ConstraintKind, DataType, ObjectTypeId, Population, RoleOrSublink, RoleRef, Schema, Side, Value,
};

/// Parameters for population generation.
#[derive(Clone, Debug)]
pub struct PopParams {
    /// RNG seed.
    pub seed: u64,
    /// Instances per base (non-subtype) NOLOT.
    pub instances_per_entity: usize,
    /// Probability an instance plays an optional role.
    pub optional_prob: f64,
    /// Probability a supertype instance belongs to a given subtype.
    pub subtype_prob: f64,
    /// Pairs per m:n fact, as a multiple of `instances_per_entity`.
    pub mn_multiplier: f64,
}

impl Default for PopParams {
    fn default() -> Self {
        Self {
            seed: 7,
            instances_per_entity: 8,
            optional_prob: 0.5,
            subtype_prob: 0.4,
            mn_multiplier: 1.5,
        }
    }
}

/// Fixed-width base-62 rendering of `counter`, so narrow string domains
/// keep producing distinct values (truncating decimal `v{counter}` to a
/// `Char(4)` identifier domain started colliding past v999, which made
/// large generated populations silently violate their own keys).
pub(crate) fn encode62(mut counter: u64, width: usize) -> String {
    const ALPHABET: &[u8] = b"0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    let mut out = vec![b'0'; width];
    for slot in out.iter_mut().rev() {
        *slot = ALPHABET[(counter % 62) as usize];
        counter /= 62;
    }
    String::from_utf8(out).expect("alphabet is ASCII")
}

fn fresh_value(dt: DataType, counter: u64) -> Value {
    match dt {
        DataType::Char(n) | DataType::VarChar(n) => {
            if n <= 1 {
                Value::Str(encode62(counter, 1))
            } else {
                // 'v' marker + base-62 payload filling the domain (capped:
                // 8 payload chars already distinguish 62^8 values).
                let width = (n as usize - 1).min(8);
                Value::Str(format!("v{}", encode62(counter, width)))
            }
        }
        DataType::Numeric(p, s) => {
            let limit = 10i64.pow((p - s).min(9) as u32);
            Value::Int((counter as i64) % limit)
        }
        DataType::Integer => Value::Int(counter as i64),
        DataType::Real => Value::Num(ridl_brm::Decimal::new(counter as i64, 1)),
        DataType::Date => Value::Date(counter as i32),
        DataType::Boolean => Value::Bool(counter.is_multiple_of(2)),
        DataType::Surrogate => Value::entity(counter),
    }
}

/// Generates a population for a schema produced by [`crate::synth`] (or any
/// schema of the same discipline: simple/own reference schemes, functional
/// attribute facts, m:n facts, exclusion-free optional roles).
pub fn generate(schema: &Schema, params: &PopParams) -> Population {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut pop = Population::new();
    let mut next_entity: u64 = 1;
    let mut next_value: u64 = 1;

    // Exclusive subtype families and exclusive role groups.
    let mut exclusive_groups: Vec<Vec<ObjectTypeId>> = Vec::new();
    let mut role_exclusion_group: HashMap<RoleRef, usize> = HashMap::new();
    let mut next_group = 0usize;
    // Enumerated LOT values (VALUES constraints) to draw from.
    let mut enum_values: HashMap<u32, Vec<Value>> = HashMap::new();
    for (_, c) in schema.constraints() {
        match &c.kind {
            ConstraintKind::Exclusion { items } => {
                let subs: Vec<ObjectTypeId> = items
                    .iter()
                    .filter_map(|i| match i {
                        RoleOrSublink::Sublink(s) => Some(schema.sublink(*s).sub),
                        RoleOrSublink::Role(_) => None,
                    })
                    .collect();
                if subs.len() == items.len() {
                    exclusive_groups.push(subs);
                } else {
                    for i in items {
                        if let RoleOrSublink::Role(r) = i {
                            role_exclusion_group.insert(*r, next_group);
                        }
                    }
                    next_group += 1;
                }
            }
            ConstraintKind::Value { over, values } if !values.is_empty() => {
                enum_values.insert(over.raw(), values.clone());
            }
            _ => {}
        }
    }
    // Occurrence caps (cardinality constraints) per role: the m:n
    // generator stays under the tightest maximum. Minima of 0/1 — all
    // [`crate::synth`] produces — hold for free: the validator counts
    // only values that occur, and an occurring value occurs at least once.
    let mut card_max: HashMap<RoleRef, u32> = HashMap::new();
    for (_, c) in schema.constraints() {
        if let ConstraintKind::Cardinality {
            role, max: Some(m), ..
        } = &c.kind
        {
            let slot = card_max.entry(*role).or_insert(*m);
            *slot = (*slot).min(*m);
        }
    }
    // (anchor value, exclusion group) pairs already claimed.
    let mut claimed: HashSet<(Value, usize)> = HashSet::new();

    // 1. Base entities.
    for (oid, ot) in schema.object_types() {
        if !ot.kind.is_nolot() || !schema.supertypes_of(oid).is_empty() {
            continue;
        }
        for _ in 0..params.instances_per_entity {
            pop.add_object(oid, Value::entity(next_entity));
            next_entity += 1;
        }
    }

    // 2. Subtype memberships, supertype-first, exclusion-aware.
    let mut order: Vec<ObjectTypeId> = schema
        .object_types()
        .filter(|(_, ot)| ot.kind.is_nolot())
        .map(|(oid, _)| oid)
        .collect();
    order.sort_by_key(|o| schema.ancestors_of(*o).len());
    for oid in order {
        for sup in schema.supertypes_of(oid) {
            let sup_pop: Vec<Value> = pop.objects_of(sup).iter().cloned().collect();
            for e in sup_pop {
                if !rng.gen_bool(params.subtype_prob) {
                    continue;
                }
                // Respect exclusion families: skip if e is already in a
                // sibling of an exclusive group containing oid.
                let blocked = exclusive_groups.iter().any(|group| {
                    group.contains(&oid)
                        && group
                            .iter()
                            .any(|sib| *sib != oid && pop.objects_of(*sib).contains(&e))
                });
                if !blocked {
                    pop.add_object(oid, e);
                }
            }
        }
    }

    // 3. Facts.
    for (fid, ft) in schema.fact_types() {
        let (lu, ru) = schema.fact_multiplicity(fid);
        match (lu, ru) {
            // Functional fact: one value per anchor instance.
            (true, _) | (_, true) => {
                let anchor_side = if lu { Side::Left } else { Side::Right };
                let anchor = ft.player(anchor_side);
                let value_player = ft.player(anchor_side.other());
                let value_role = RoleRef::new(fid, anchor_side.other());
                let co_unique = schema.is_role_unique(value_role);
                let total = schema.is_role_total(RoleRef::new(fid, anchor_side));
                let anchors: Vec<Value> = pop.objects_of(anchor).iter().cloned().collect();
                let targets: Vec<Value> = pop.objects_of(value_player).iter().cloned().collect();
                let mut target_cursor = 0usize;
                let anchor_role = RoleRef::new(fid, anchor_side);
                let excl = role_exclusion_group.get(&anchor_role).copied();
                for e in anchors {
                    if !total && !rng.gen_bool(params.optional_prob) {
                        continue;
                    }
                    // Respect role-level exclusions: an instance plays at
                    // most one role of an exclusion group.
                    if let Some(g) = excl {
                        if !claimed.insert((e.clone(), g)) {
                            continue;
                        }
                    }
                    let v = match schema.kind_of(value_player).data_type() {
                        Some(dt) => {
                            if let Some(vals) = enum_values.get(&value_player.raw()) {
                                vals[rng.gen_range(0..vals.len())].clone()
                            } else {
                                let v = fresh_value(dt, next_value);
                                next_value += 1;
                                v
                            }
                        }
                        None => {
                            if targets.is_empty() {
                                continue;
                            }
                            if co_unique {
                                // Injective: walk distinct targets.
                                if target_cursor >= targets.len() {
                                    continue;
                                }
                                let v = targets[target_cursor].clone();
                                target_cursor += 1;
                                v
                            } else {
                                targets[rng.gen_range(0..targets.len())].clone()
                            }
                        }
                    };
                    let (l, r) = match anchor_side {
                        Side::Left => (e, v),
                        Side::Right => (v, e),
                    };
                    pop.add_fact_closed(schema, fid, l, r);
                }
            }
            // m:n fact: random distinct pairs.
            (false, false) => {
                let ls: Vec<Value> = pop
                    .objects_of(ft.player(Side::Left))
                    .iter()
                    .cloned()
                    .collect();
                let rs: Vec<Value> = pop
                    .objects_of(ft.player(Side::Right))
                    .iter()
                    .cloned()
                    .collect();
                if ls.is_empty() || rs.is_empty() {
                    continue;
                }
                let lcap = card_max.get(&RoleRef::new(fid, Side::Left)).copied();
                let rcap = card_max.get(&RoleRef::new(fid, Side::Right)).copied();
                // Count only *distinct* pairs toward the caps — the
                // population stores facts as a set, so a re-drawn pair
                // changes nothing.
                let mut seen: HashSet<(Value, Value)> = HashSet::new();
                let mut lcount: HashMap<Value, u32> = HashMap::new();
                let mut rcount: HashMap<Value, u32> = HashMap::new();
                let n = ((params.instances_per_entity as f64) * params.mn_multiplier) as usize;
                for _ in 0..n {
                    let l = ls[rng.gen_range(0..ls.len())].clone();
                    let r = rs[rng.gen_range(0..rs.len())].clone();
                    if seen.contains(&(l.clone(), r.clone())) {
                        continue;
                    }
                    let at_cap = |cap: Option<u32>, count: &HashMap<Value, u32>, v: &Value| {
                        cap.is_some_and(|m| count.get(v).copied().unwrap_or(0) >= m)
                    };
                    if at_cap(lcap, &lcount, &l) || at_cap(rcap, &rcount, &r) {
                        continue;
                    }
                    *lcount.entry(l.clone()).or_insert(0) += 1;
                    *rcount.entry(r.clone()).or_insert(0) += 1;
                    seen.insert((l.clone(), r.clone()));
                    pop.add_fact_closed(schema, fid, l, r);
                }
            }
        }
    }
    pop
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate as gen_schema, GenParams};
    use ridl_brm::population::validate;

    #[test]
    fn generated_population_is_a_model() {
        for seed in [1u64, 2, 3, 4] {
            let s = gen_schema(&GenParams {
                seed,
                ..GenParams::default()
            });
            let p = generate(
                &s.schema,
                &PopParams {
                    seed: seed * 11,
                    ..PopParams::default()
                },
            );
            let violations = validate(&s.schema, &p);
            assert!(
                violations.is_empty(),
                "seed {seed}: {:?}",
                &violations[..violations.len().min(5)]
            );
            assert!(p.num_fact_instances() > 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = gen_schema(&GenParams::default());
        let a = generate(&s.schema, &PopParams::default());
        let b = generate(&s.schema, &PopParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn cardinality_bounds_hold_by_construction() {
        for seed in [5u64, 6, 7] {
            let s = gen_schema(&GenParams {
                seed,
                card_prob: 1.0, // every m:n fact gets a frequency bound
                ..GenParams::default()
            });
            let n_card = s
                .schema
                .constraints()
                .filter(|(_, c)| matches!(c.kind, ConstraintKind::Cardinality { .. }))
                .count();
            assert!(
                n_card > 0,
                "seed {seed} generated no cardinality constraints"
            );
            let p = generate(
                &s.schema,
                &PopParams {
                    seed: seed * 13,
                    mn_multiplier: 4.0, // push hard against the caps
                    ..PopParams::default()
                },
            );
            let violations = validate(&s.schema, &p);
            assert!(
                violations.is_empty(),
                "seed {seed}: {:?}",
                &violations[..violations.len().min(5)]
            );
        }
    }

    #[test]
    fn fact_closure_holds() {
        let s = gen_schema(&GenParams::default());
        let p = generate(&s.schema, &PopParams::default());
        // Entities may play no role only if their identifier fact covers
        // them; identifiers are total, so everything is fact-closed.
        assert!(ridl_transform::is_fact_closed(&s.schema, &p));
    }
}

//! The binary schema of the paper's figure 6.
//!
//! Concepts (reconstructed from the figure's four alternatives, the SQL2
//! fragment and the map-report fragments):
//!
//! * NOLOT **Paper**, identified by LOT `Paper_Id`, with a total `Title`
//!   fact and an optional submission `Date`;
//! * NOLOT **Invited_Paper** IS-A Paper, with no facts of its own (the
//!   `Is_Invited_Paper` indicator of Alternatives 3–4);
//! * NOLOT **Program_Paper** IS-A Paper, with its *own* identifier LOT
//!   `Paper_ProgramId` (CHAR(2)), a total `Session` fact
//!   (`Session_comprising`, NUMERIC(3)) and an optional presenting `Person`
//!   fact (`Person_presenting`, CHAR(30)).

use ridl_brm::builder::SchemaBuilder;
use ridl_brm::{DataType, Population, Schema, Side, Value};

/// Builds the figure-6 schema.
pub fn schema() -> Schema {
    let mut b = SchemaBuilder::new("fig6");
    b.nolot("Paper").unwrap();
    b.nolot("Invited_Paper").unwrap();
    b.nolot("Program_Paper").unwrap();
    b.sublink("Invited_Paper", "Paper").unwrap();
    b.sublink("Program_Paper", "Paper").unwrap();

    // Paper identified by Paper_Id.
    b.lot("Paper_Id", DataType::Char(6)).unwrap();
    b.fact("paper_id", ("identified_by", "Paper"), ("", "Paper_Id"))
        .unwrap();
    b.unique("paper_id", Side::Left).unwrap();
    b.unique("paper_id", Side::Right).unwrap();
    b.total_role("paper_id", Side::Left).unwrap();

    // Paper has a (mandatory) title.
    b.lot("Title", DataType::VarChar(60)).unwrap();
    b.fact("paper_title", ("titled", "Paper"), ("of", "Title"))
        .unwrap();
    b.unique("paper_title", Side::Left).unwrap();
    b.total_role("paper_title", Side::Left).unwrap();

    // Paper may have a submission date.
    b.lot_nolot("Date", DataType::Date).unwrap();
    b.fact(
        "paper_submitted",
        ("submitted_at", "Paper"),
        ("of_submission", "Date"),
    )
    .unwrap();
    b.unique("paper_submitted", Side::Left).unwrap();

    // Program_Paper has its own identifier Paper_ProgramId.
    b.lot("Paper_ProgramId", DataType::Char(2)).unwrap();
    b.fact(
        "pp_program_id",
        ("has", "Program_Paper"),
        ("with", "Paper_ProgramId"),
    )
    .unwrap();
    b.unique("pp_program_id", Side::Left).unwrap();
    b.unique("pp_program_id", Side::Right).unwrap();
    b.total_role("pp_program_id", Side::Left).unwrap();

    // Program_Paper is presented during a session (mandatory).
    b.lot_nolot("Session", DataType::Numeric(3, 0)).unwrap();
    b.fact(
        "pp_session",
        ("presented_during", "Program_Paper"),
        ("comprising", "Session"),
    )
    .unwrap();
    b.unique("pp_session", Side::Left).unwrap();
    b.total_role("pp_session", Side::Left).unwrap();

    // Program_Paper may be presented by a person.
    b.lot_nolot("Person", DataType::Char(30)).unwrap();
    b.fact(
        "pp_presenter",
        ("presented_by", "Program_Paper"),
        ("presenting", "Person"),
    )
    .unwrap();
    b.unique("pp_presenter", Side::Left).unwrap();

    b.finish().expect("fig6 schema is well-formed")
}

/// A consistent sample population of the figure-6 schema: three papers, one
/// of them invited, two on the program (one with a presenter).
pub fn population(s: &Schema) -> Population {
    let paper = s.object_type_by_name("Paper").unwrap();
    let invited = s.object_type_by_name("Invited_Paper").unwrap();
    let program = s.object_type_by_name("Program_Paper").unwrap();
    let f_id = s.fact_type_by_name("paper_id").unwrap();
    let f_title = s.fact_type_by_name("paper_title").unwrap();
    let f_sub = s.fact_type_by_name("paper_submitted").unwrap();
    let f_pid = s.fact_type_by_name("pp_program_id").unwrap();
    let f_sess = s.fact_type_by_name("pp_session").unwrap();
    let f_pres = s.fact_type_by_name("pp_presenter").unwrap();

    let mut p = Population::new();
    let e = Value::entity;
    // Three papers.
    p.add_fact_closed(s, f_id, e(1), Value::str("P1"));
    p.add_fact_closed(s, f_id, e(2), Value::str("P2"));
    p.add_fact_closed(s, f_id, e(3), Value::str("P3"));
    p.add_fact_closed(s, f_title, e(1), Value::str("On NIAM"));
    p.add_fact_closed(s, f_title, e(2), Value::str("On RIDL"));
    p.add_fact_closed(s, f_title, e(3), Value::str("On Mapping"));
    p.add_fact_closed(s, f_sub, e(1), Value::Date(100));
    p.add_fact_closed(s, f_sub, e(2), Value::Date(120));
    // Paper 1 is invited.
    p.add_object(invited, e(1));
    // Papers 1 and 2 are program papers.
    p.add_object(program, e(1));
    p.add_object(program, e(2));
    p.add_fact_closed(s, f_pid, e(1), Value::str("A1"));
    p.add_fact_closed(s, f_pid, e(2), Value::str("A2"));
    p.add_fact_closed(s, f_sess, e(1), Value::Int(1));
    p.add_fact_closed(s, f_sess, e(2), Value::Int(2));
    p.add_fact_closed(s, f_pres, e(1), Value::str("De Troyer"));
    let _ = paper;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::population::{is_model, validate};

    #[test]
    fn schema_is_well_formed() {
        let s = schema();
        assert_eq!(s.num_object_types(), 9);
        assert_eq!(s.num_fact_types(), 6);
        assert_eq!(s.num_sublinks(), 2);
    }

    #[test]
    fn sample_population_is_a_model() {
        let s = schema();
        let p = population(&s);
        assert!(is_model(&s, &p), "{:?}", validate(&s, &p));
    }
}

//! RIDL-Bench macro workload: the full-pipeline scenario behind
//! `ridl bench` and the `macro_pipeline` criterion bench.
//!
//! The micro benches each exercise one subsystem; this module describes
//! the *end-to-end* run — synthesize an industrial-band BRM schema,
//! analyze and map it through RIDL-M, generate a calibrated population,
//! and drive mixed closed-loop traffic against the loaded engine. The
//! module itself stays engine-free (so `ridl-workloads` keeps its thin
//! dependency cone): it produces the schema, the state, and a
//! deterministic *traffic plan*; the driver in `ridl-bench` translates
//! plan steps into engine statements and times them.
//!
//! Everything here is deterministic in the seed: equal [`MacroParams`]
//! give byte-equal schemas, states and traffic plans (the determinism
//! regression suite asserts this, across thread counts too).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ridl_core::{MappingOptions, MappingOutput, Workbench};
use ridl_relational::RelState;

use crate::scenario;
use crate::synth::{self, GenParams, SynthSchema};

/// Parameters of the macro workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MacroParams {
    /// Seed for schema synthesis, population and traffic planning.
    pub seed: u64,
    /// Approximate row count of the loaded population.
    pub target_rows: usize,
}

impl Default for MacroParams {
    fn default() -> Self {
        Self {
            seed: 1989,
            target_rows: 100_000,
        }
    }
}

/// Phase 1 — synthesize the industrial-band BRM schema (120–150 mapped
/// tables at the default parameters).
pub fn synthesize(p: &MacroParams) -> SynthSchema {
    synth::generate(&GenParams::industrial(p.seed))
}

/// Phase 2 — run RIDL-A analysis and the RIDL-M mapping, yielding the
/// relational schema (with its full generated constraint set), the
/// transformation trace and the state maps.
pub fn analyze_and_map(s: &SynthSchema) -> MappingOutput {
    let wb = Workbench::new(s.schema.clone());
    assert!(
        wb.analysis().is_mappable(),
        "industrial synthetic schema must be mappable"
    );
    wb.map(&MappingOptions::new())
        .expect("industrial schema maps")
}

/// Phase 3 — generate the calibrated population: probe for rows-per-
/// instance, then scale the instance count to roughly `target_rows` rows
/// (the same calibration [`scenario::industrial_population`] uses).
pub fn populate(s: &SynthSchema, out: &MappingOutput, p: &MacroParams) -> RelState {
    let instances = scenario::calibrate_instances(s, out, p.target_rows);
    scenario::populate_instances(s, out, instances)
}

/// One step of the mixed closed-loop traffic plan. The index selects one
/// of the driver's probed mutation targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrafficOp {
    /// Delete the target row by primary key, then re-insert it — two
    /// committed statements through the delta-validation path.
    DeleteReinsert(usize),
    /// The same pair as one all-or-nothing `apply_batch` group (nets to
    /// zero, exercising batch netting and group commit).
    Batch(usize),
    /// Insert a row duplicating the target's primary key — the engine
    /// must reject it and roll back (validate + undo cost).
    RejectInsert(usize),
    /// A point query on the target row's primary key through the query
    /// executor.
    PointQuery(usize),
}

/// Builds the deterministic mixed traffic plan: `ops` steps over
/// `targets` probed mutation targets, roughly 40% delete+reinsert pairs,
/// 20% batches, 10% rejected inserts and 30% point queries.
pub fn plan_traffic(seed: u64, ops: usize, targets: usize) -> Vec<TrafficOp> {
    assert!(targets > 0, "traffic needs at least one mutation target");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51D1_BE9C);
    (0..ops)
        .map(|_| {
            let t = rng.gen_range(0..targets);
            match rng.gen_range(0..10u32) {
                0..=3 => TrafficOp::DeleteReinsert(t),
                4..=5 => TrafficOp::Batch(t),
                6 => TrafficOp::RejectInsert(t),
                _ => TrafficOp::PointQuery(t),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_relational::validate;

    #[test]
    fn macro_pipeline_stages_compose() {
        let p = MacroParams {
            seed: 1989,
            target_rows: 600,
        };
        let s = synthesize(&p);
        let out = analyze_and_map(&s);
        let state = populate(&s, &out, &p);
        assert!(validate(&out.rel, &state).is_empty(), "population is clean");
        assert!(state.num_rows() >= 300, "calibration reached the target");
    }

    #[test]
    fn traffic_plan_is_deterministic_and_mixed() {
        let a = plan_traffic(7, 500, 4);
        let b = plan_traffic(7, 500, 4);
        assert_eq!(a, b);
        assert!(a.iter().any(|o| matches!(o, TrafficOp::DeleteReinsert(_))));
        assert!(a.iter().any(|o| matches!(o, TrafficOp::Batch(_))));
        assert!(a.iter().any(|o| matches!(o, TrafficOp::PointQuery(_))));
        assert!(plan_traffic(8, 500, 4) != a, "seed changes the plan");
    }
}

//! Significant-example generator: adversarial near-violation populations
//! per constraint class, after Proper's *Generating Significant Examples
//! for Conceptual Schema Validation* (see PAPERS.md).
//!
//! A *significant example* stresses one constraint at its boundary
//! instead of the happy path: the base population (plus optional `pads`)
//! satisfies every generated constraint while standing exactly one row
//! from a violation, and a single *tipping* insert crosses the edge —
//! a uniqueness collision one row away, an FK orphan, a NULL in a
//! mandatory column, an occurrence-frequency group filled to its maximum.
//!
//! Construction is propose-and-verify: each proposer derives candidate
//! rows from the live population by shape-preserving value mutation, and
//! [`verify_example`] replays the candidate against the full relational
//! validator — the padded state must be clean, and the tipped state must
//! report a violation of the expected [`ConstraintClass`]. Candidates
//! that fail verification are discarded, so every returned example is
//! *proved* significant, never merely plausible.

use std::collections::BTreeSet;

use ridl_brm::{Decimal, EntityId, Value};
use ridl_obs::ConstraintClass;
use ridl_relational::{
    validate, RelConstraintKind, RelSchema, RelState, RelViolation, Row, TableId,
};

use crate::popgen::encode62;

/// A verified near-violation population for one constraint.
#[derive(Clone, PartialEq, Debug)]
pub struct SignificantExample {
    /// The constraint class the tipping row violates.
    pub class: ConstraintClass,
    /// The generated constraint name expected in the violation report
    /// (a structural pseudo-name like `NOT NULL` for [`ConstraintClass::Structure`]).
    pub constraint: String,
    /// Rows added to the base state to reach the boundary; the padded
    /// state still validates clean.
    pub pads: Vec<(TableId, Row)>,
    /// The one row whose insertion violates `class`.
    pub tip: (TableId, Row),
}

/// The class a reported violation belongs to: structural pseudo-names
/// (`NOT NULL`, `ARITY`, `DOMAIN`) map to [`ConstraintClass::Structure`],
/// everything else resolves through the named constraint's kind.
pub fn violation_class(schema: &RelSchema, v: &RelViolation) -> ConstraintClass {
    schema
        .constraints
        .iter()
        .find(|c| c.name == v.constraint)
        .map(|c| c.kind.class())
        .unwrap_or(ConstraintClass::Structure)
}

/// Checks an example against the full validator: pads must be insertable
/// and leave the state clean, and the tip must produce a violation of the
/// example's class. The generator only returns examples that pass; tests
/// and the macro-bench driver re-run it as an oracle.
pub fn verify_example(schema: &RelSchema, base: &RelState, ex: &SignificantExample) -> bool {
    let mut s = base.clone();
    for (t, r) in &ex.pads {
        if s.rows(*t).contains(r) || !s.insert(*t, r.clone()) {
            return false;
        }
    }
    if !validate(schema, &s).is_empty() {
        return false;
    }
    let (tt, tr) = &ex.tip;
    if s.rows(*tt).contains(tr) || !s.insert(*tt, tr.clone()) {
        return false;
    }
    validate(schema, &s)
        .iter()
        .any(|v| violation_class(schema, v) == ex.class)
}

/// Shape-preserving value mutation: produces a value of the same datatype
/// shape (string length, digit count for small salts) so mutated rows do
/// not trip DOMAIN checks while colliding with or escaping the original.
fn mutate_value(v: &Value, salt: u64) -> Value {
    match v {
        Value::Str(s) => {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in s.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1_0000_01b3);
            }
            h = h.wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            Value::Str(encode62(h, s.len().max(1)))
        }
        Value::Int(i) => {
            // Alternate adding and subtracting small offsets to stay
            // within the column's digit budget where possible.
            let off = (salt / 2 + 1) as i64;
            Value::Int(if salt.is_multiple_of(2) {
                i.wrapping_add(off)
            } else {
                i.wrapping_sub(off)
            })
        }
        Value::Num(d) => Value::Num(Decimal::new(
            d.mantissa.wrapping_add(salt as i64 % 9 + 1),
            d.scale,
        )),
        Value::Date(d) => Value::Date(d.wrapping_add(salt as i32 + 1)),
        Value::Bool(b) => Value::Bool(!b),
        Value::Entity(e) => Value::Entity(EntityId(e.0 ^ (0x8000_0000_0000_0000 | salt))),
    }
}

/// Non-null projections of `cols` over a table's rows.
fn projection(state: &RelState, table: TableId, cols: &[u32]) -> BTreeSet<Vec<Value>> {
    state
        .rows(table)
        .iter()
        .filter_map(|r| {
            cols.iter()
                .map(|c| r[*c as usize].clone())
                .collect::<Option<Vec<_>>>()
        })
        .collect()
}

/// Rewrites `cols` of `row` to a mutated combination absent from `taken`,
/// marking the new combination as taken. Returns false when no fresh
/// combination was found within the salt budget or a column was NULL.
fn freshen(row: &mut Row, cols: &[u32], taken: &mut BTreeSet<Vec<Value>>, base_salt: u64) -> bool {
    for salt in base_salt..base_salt + 64 {
        let cand: Option<Vec<Value>> = cols
            .iter()
            .map(|c| row[*c as usize].as_ref().map(|v| mutate_value(v, salt)))
            .collect();
        let Some(cand) = cand else {
            return false;
        };
        if taken.insert(cand.clone()) {
            for (c, v) in cols.iter().zip(cand) {
                row[*c as usize] = Some(v);
            }
            return true;
        }
    }
    false
}

/// Uniqueness collision one row away: a distinct row sharing an existing
/// row's full key, differing only in a non-key column.
fn key_candidates(schema: &RelSchema, state: &RelState) -> Vec<SignificantExample> {
    let mut out = Vec::new();
    for c in &schema.constraints {
        let (table, cols) = match &c.kind {
            RelConstraintKind::PrimaryKey { table, cols }
            | RelConstraintKind::CandidateKey { table, cols } => (*table, cols),
            _ => continue,
        };
        let t = schema.table(table);
        let Some(non_key) = (0..t.arity() as u32).find(|c2| !cols.contains(c2)) else {
            continue;
        };
        for row in state.rows(table).iter().take(8) {
            if cols.iter().any(|c2| row[*c2 as usize].is_none()) {
                continue;
            }
            let Some(orig) = row[non_key as usize].as_ref() else {
                continue;
            };
            for salt in 0..8 {
                let mut tip = row.clone();
                tip[non_key as usize] = Some(mutate_value(orig, salt));
                if !state.rows(table).contains(&tip) {
                    out.push(SignificantExample {
                        class: ConstraintClass::Key,
                        constraint: c.name.clone(),
                        pads: Vec::new(),
                        tip: (table, tip),
                    });
                    break;
                }
            }
        }
        if out.len() >= 8 {
            break;
        }
    }
    out
}

/// FK orphan: a fresh row whose foreign-key columns reference a
/// combination absent from the referenced table.
fn foreign_key_candidates(schema: &RelSchema, state: &RelState) -> Vec<SignificantExample> {
    let mut out = Vec::new();
    for c in &schema.constraints {
        let RelConstraintKind::ForeignKey {
            table,
            cols,
            ref_table,
            ref_cols,
        } = &c.kind
        else {
            continue;
        };
        let mut ref_proj = projection(state, *ref_table, ref_cols);
        let pk: Vec<u32> = schema
            .primary_key_of(*table)
            .map(|k| k.to_vec())
            .unwrap_or_default();
        let mut key_proj = projection(state, *table, &pk);
        for row in state.rows(*table).iter().take(8) {
            if cols.iter().any(|c2| row[*c2 as usize].is_none()) {
                continue;
            }
            let mut tip = row.clone();
            // Orphan the reference: move the FK columns to a combination
            // the referenced table does not contain (recording it as
            // taken so it stays an orphan against later candidates).
            if !freshen(&mut tip, cols, &mut ref_proj, 0) {
                continue;
            }
            // Keep the new row's own key fresh so only the FK trips.
            let extra: Vec<u32> = pk.iter().copied().filter(|p| !cols.contains(p)).collect();
            if !extra.is_empty() && !freshen(&mut tip, &extra, &mut key_proj, 16) {
                continue;
            }
            if state.rows(*table).contains(&tip) {
                continue;
            }
            out.push(SignificantExample {
                class: ConstraintClass::ForeignKey,
                constraint: c.name.clone(),
                pads: Vec::new(),
                tip: (*table, tip),
            });
            if out.len() >= 8 {
                return out;
            }
        }
    }
    out
}

/// Mandatory-column violation: a fresh row (key freshened) with NULL in a
/// NOT NULL non-key column.
fn structure_candidates(schema: &RelSchema, state: &RelState) -> Vec<SignificantExample> {
    let mut out = Vec::new();
    for (tid, t) in schema.tables() {
        let Some(pk) = schema.primary_key_of(tid) else {
            continue;
        };
        let pk = pk.to_vec();
        let Some(nn) = (0..t.arity() as u32).find(|c2| !t.column(*c2).nullable && !pk.contains(c2))
        else {
            continue;
        };
        let mut key_proj = projection(state, tid, &pk);
        for row in state.rows(tid).iter().take(8) {
            if row[nn as usize].is_none() || pk.iter().any(|c2| row[*c2 as usize].is_none()) {
                continue;
            }
            let mut tip = row.clone();
            if !freshen(&mut tip, &pk, &mut key_proj, 0) {
                continue;
            }
            tip[nn as usize] = None;
            if state.rows(tid).contains(&tip) {
                continue;
            }
            out.push(SignificantExample {
                class: ConstraintClass::Structure,
                constraint: "NOT NULL".into(),
                pads: Vec::new(),
                tip: (tid, tip),
            });
            if out.len() >= 8 {
                return out;
            }
        }
    }
    out
}

/// Boundary cardinality: pad one occurrence-frequency group to exactly
/// its maximum (the padded state is clean, sitting on the edge), then tip
/// with one more member.
fn frequency_candidates(schema: &RelSchema, state: &RelState) -> Vec<SignificantExample> {
    let mut out = Vec::new();
    for c in &schema.constraints {
        let RelConstraintKind::Frequency {
            table,
            cols,
            max: Some(max),
            ..
        } = &c.kind
        else {
            continue;
        };
        let Some(pk) = schema.primary_key_of(*table) else {
            continue;
        };
        let pk: Vec<u32> = pk.to_vec();
        // A clone must change its key without leaving the group.
        let extra: Vec<u32> = pk.iter().copied().filter(|p| !cols.contains(p)).collect();
        if extra.is_empty() {
            continue;
        }
        // Group sizes of the current population.
        let mut groups: std::collections::BTreeMap<Vec<Value>, (Row, usize)> =
            std::collections::BTreeMap::new();
        for row in state.rows(*table) {
            if let Some(combo) = cols
                .iter()
                .map(|c2| row[*c2 as usize].clone())
                .collect::<Option<Vec<_>>>()
            {
                let e = groups.entry(combo).or_insert_with(|| (row.clone(), 0));
                e.1 += 1;
            }
        }
        let mut key_proj = projection(state, *table, &pk);
        for (_, (base, count)) in groups.into_iter().take(8) {
            if count > *max as usize {
                continue;
            }
            let mut pads = Vec::new();
            let mut ok = true;
            for i in 0..(*max as usize - count + 1) {
                let mut clone = base.clone();
                if !freshen(&mut clone, &extra, &mut key_proj, (i as u64) * 64) {
                    ok = false;
                    break;
                }
                pads.push((*table, clone));
            }
            if !ok {
                continue;
            }
            // The last clone is the tipping row: pads bring the group to
            // exactly `max`, the tip makes it `max + 1`.
            let tip = pads.pop().expect("max >= count implies at least one");
            out.push(SignificantExample {
                class: ConstraintClass::Frequency,
                constraint: c.name.clone(),
                pads,
                tip,
            });
            if out.len() >= 8 {
                return out;
            }
        }
    }
    out
}

/// Generates one verified significant example per representable
/// constraint class of the schema. Classes with no generator (views,
/// conditional equality) or no verifiable candidate in this population
/// are skipped — every returned example passes [`verify_example`].
pub fn significant_examples(schema: &RelSchema, state: &RelState) -> Vec<SignificantExample> {
    let proposers: [fn(&RelSchema, &RelState) -> Vec<SignificantExample>; 4] = [
        key_candidates,
        foreign_key_candidates,
        structure_candidates,
        frequency_candidates,
    ];
    proposers
        .iter()
        .filter_map(|p| {
            p(schema, state)
                .into_iter()
                .find(|ex| verify_example(schema, state, ex))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn industrial_population_yields_verified_examples() {
        let sc = scenario::industrial_population(7, 400);
        let examples = significant_examples(&sc.schema, &sc.state);
        let classes: Vec<ConstraintClass> = examples.iter().map(|e| e.class).collect();
        assert!(classes.contains(&ConstraintClass::Key), "key example");
        assert!(classes.contains(&ConstraintClass::ForeignKey), "fk example");
        assert!(
            classes.contains(&ConstraintClass::Structure),
            "structure example"
        );
        for ex in &examples {
            assert!(verify_example(&sc.schema, &sc.state, ex));
        }
    }
}

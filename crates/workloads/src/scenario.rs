//! Ready-made experiment scenarios: mapped schemas with consistent
//! populations at a requested scale.
//!
//! The benches (and the differential test suites) all need the same
//! artefact — the industrial-scale synthetic schema mapped through RIDL-M,
//! plus a valid relational state of roughly *N* rows. The row count per
//! generated instance depends on the schema's shape, so the builder
//! calibrates on a small probe population first and scales the instance
//! count from there.

use ridl_core::state_map::map_population;
use ridl_core::{MappingOptions, Workbench};
use ridl_relational::{RelSchema, RelState};

use crate::popgen::{self, PopParams};
use crate::synth::{self, GenParams};

/// An industrial-scale mapped schema plus a valid population state.
pub struct MappedPopulation {
    /// The generated relational schema (with its full constraint set).
    pub schema: RelSchema,
    /// A constraint-satisfying state of approximately the requested size.
    pub state: RelState,
}

/// Rows-per-instance calibration: probes the mapped schema with two
/// instances per entity and returns the instance count whose mapped state
/// lands at roughly `target_rows` rows. Deterministic in its inputs —
/// shared by [`industrial_population`] and the `macrobench` pipeline.
pub fn calibrate_instances(
    s: &synth::SynthSchema,
    out: &ridl_core::MappingOutput,
    target_rows: usize,
) -> usize {
    let probe = popgen::generate(
        &s.schema,
        &PopParams {
            instances_per_entity: 2,
            ..PopParams::default()
        },
    );
    let probe_rows = map_population(&out.schema, out, &probe)
        .expect("probe state maps")
        .num_rows()
        .max(1);
    let per_instance = probe_rows as f64 / 2.0;
    ((target_rows as f64 / per_instance).ceil() as usize).max(1)
}

/// Generates a population at `instances` instances per entity and maps it
/// through the schema's forwards state map. Deterministic: equal inputs
/// give byte-equal states.
pub fn populate_instances(
    s: &synth::SynthSchema,
    out: &ridl_core::MappingOutput,
    instances: usize,
) -> RelState {
    let pop = popgen::generate(
        &s.schema,
        &PopParams {
            instances_per_entity: instances,
            ..PopParams::default()
        },
    );
    map_population(&out.schema, out, &pop).expect("state maps")
}

/// Builds the industrial mapped schema (120–150 tables band) with a state
/// of roughly `target_rows` rows. Deterministic in `seed`: equal inputs
/// give byte-equal schemas and states.
pub fn industrial_population(seed: u64, target_rows: usize) -> MappedPopulation {
    let s = synth::generate(&GenParams::industrial(seed));
    let wb = Workbench::new(s.schema.clone());
    let out = wb
        .map(&MappingOptions::new())
        .expect("industrial schema maps");
    let instances = calibrate_instances(&s, &out, target_rows);
    let state = populate_instances(&s, &out, instances);
    MappedPopulation {
        schema: out.rel,
        state,
    }
}

/// Maps an arbitrary synthetic schema with a fixed-size population — the
/// small-schema sibling of [`industrial_population`], used by the
/// differential test suites to vary schema shape per proptest case.
/// Deterministic: equal inputs give byte-equal schemas and states.
pub fn mapped_population(params: &GenParams, instances_per_entity: usize) -> MappedPopulation {
    let s = synth::generate(params);
    let wb = Workbench::new(s.schema.clone());
    let out = wb
        .map(&MappingOptions::new())
        .expect("synthetic schema maps");
    let pop = popgen::generate(
        &s.schema,
        &PopParams {
            instances_per_entity,
            ..PopParams::default()
        },
    );
    let state = map_population(&out.schema, &out, &pop).expect("state maps");
    MappedPopulation {
        schema: out.rel,
        state,
    }
}

/// Flattens a state into `(table, row)` pairs in table order — the input
/// shape of the engine's `bulk_load`.
pub fn rows_of(
    schema: &RelSchema,
    state: &RelState,
) -> Vec<(ridl_relational::TableId, ridl_relational::Row)> {
    schema
        .tables()
        .flat_map(|(tid, _)| state.rows(tid).iter().map(move |r| (tid, r.clone())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_relational::validate;

    #[test]
    fn scenario_states_are_valid_and_calibrated() {
        let sc = industrial_population(7, 1_000);
        assert!(validate(&sc.schema, &sc.state).is_empty());
        let n = sc.state.num_rows();
        // Calibration lands within a factor of the target.
        assert!((500..=4_000).contains(&n), "calibrated to {n} rows");
        let pairs = rows_of(&sc.schema, &sc.state);
        assert_eq!(pairs.len(), n);
    }
}

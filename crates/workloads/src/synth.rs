//! Seeded generator of well-formed, referable binary schemas of arbitrary
//! size — the stand-in for the proprietary industrial schemas behind the
//! paper's "routinely generates databases of up to 120–150 ORACLE tables"
//! (§5). Only aggregate statistics of those schemas are public; the
//! generator is parameterised to land in the same band while exercising the
//! identical mapping code path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ridl_brm::builder::SchemaBuilder;
use ridl_brm::{DataType, FactTypeId, ObjectTypeId, Schema, Side};

/// Parameters of a synthetic schema.
#[derive(Clone, Debug)]
pub struct GenParams {
    /// RNG seed; equal seeds give equal schemas.
    pub seed: u64,
    /// Number of entity (NOLOT) types.
    pub nolots: usize,
    /// Functional (attribute) facts per NOLOT, inclusive range.
    pub attrs_per_nolot: (usize, usize),
    /// Probability that an attribute fact is total (NOT NULL).
    pub total_prob: f64,
    /// Probability that an attribute's value is another NOLOT (an entity
    /// reference) rather than a fresh LOT.
    pub ref_prob: f64,
    /// Number of m:n fact types.
    pub mn_facts: usize,
    /// Number of sublinks (subtype links).
    pub sublinks: usize,
    /// Probability that a subtype carries its own reference scheme.
    pub own_ref_prob: f64,
    /// Probability that an optional attribute fact joins an exclusion pair
    /// with a sibling optional fact of the same entity.
    pub exclusion_prob: f64,
    /// Probability that a lexical attribute is drawn from an enumerated
    /// value list (a VALUES constraint).
    pub enum_prob: f64,
    /// Probability that an optional role gets an explicit subset constraint
    /// toward the entity's identifier role (stating the implied inclusion,
    /// as industrial NIAM schemas commonly do).
    pub subset_prob: f64,
    /// Probability that one role of an m:n fact carries an occurrence
    /// frequency (cardinality) constraint — "each X links at most k Ys" —
    /// which maps to a relational `Frequency` constraint.
    pub card_prob: f64,
}

impl Default for GenParams {
    fn default() -> Self {
        Self {
            seed: 42,
            nolots: 12,
            attrs_per_nolot: (1, 4),
            total_prob: 0.6,
            ref_prob: 0.25,
            mn_facts: 6,
            sublinks: 3,
            own_ref_prob: 0.3,
            exclusion_prob: 0.3,
            enum_prob: 0.2,
            subset_prob: 0.3,
            card_prob: 0.4,
        }
    }
}

impl GenParams {
    /// A parameter set sized to land in the paper's industrial band of
    /// 120–150 generated tables under the default options.
    pub fn industrial(seed: u64) -> Self {
        Self {
            seed,
            nolots: 85,
            attrs_per_nolot: (3, 7),
            total_prob: 0.6,
            ref_prob: 0.25,
            mn_facts: 40,
            sublinks: 18,
            own_ref_prob: 0.25,
            exclusion_prob: 0.5,
            enum_prob: 0.3,
            subset_prob: 0.5,
            card_prob: 0.5,
        }
    }
}

/// A generated schema plus the bookkeeping the population generator needs.
#[derive(Clone, Debug)]
pub struct SynthSchema {
    /// The schema.
    pub schema: Schema,
    /// The generated NOLOT ids (base entities first, then subtypes).
    pub entities: Vec<ObjectTypeId>,
    /// The m:n fact ids.
    pub mn_facts: Vec<FactTypeId>,
    /// The parameters used.
    pub params: GenParams,
}

/// Generates a schema from parameters.
pub fn generate(params: &GenParams) -> SynthSchema {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = SchemaBuilder::new(format!("synth_{}", params.seed));
    let mut entities: Vec<ObjectTypeId> = Vec::new();
    let mut lot_counter = 0usize;

    // Base entities with a simple reference scheme each.
    for i in 0..params.nolots {
        let name = format!("E{i:03}");
        let id = b.nolot(&name).unwrap();
        entities.push(id);
        let lot = format!("E{i:03}_Id");
        b.lot(&lot, DataType::Char(8)).unwrap();
        let fact = format!("E{i:03}_id");
        b.fact(
            &fact,
            ("identified_by", name.as_str()),
            ("of", lot.as_str()),
        )
        .unwrap();
        b.unique(&fact, Side::Left).unwrap();
        b.unique(&fact, Side::Right).unwrap();
        b.total_role(&fact, Side::Left).unwrap();
    }

    // Subtypes (acyclic: each subtypes an earlier entity).
    let base_count = entities.len();
    for s in 0..params.sublinks {
        let sup_idx = rng.gen_range(0..base_count);
        let sup_name = b.schema().ot_name(entities[sup_idx]).to_owned();
        let name = format!("S{s:03}_{sup_name}");
        let id = b.nolot(&name).unwrap();
        b.sublink(&name, &sup_name).unwrap();
        entities.push(id);
        if rng.gen_bool(params.own_ref_prob) {
            let lot = format!("{name}_Key");
            b.lot(&lot, DataType::Char(4)).unwrap();
            let fact = format!("{name}_key");
            b.fact(&fact, ("has", name.as_str()), ("with", lot.as_str()))
                .unwrap();
            b.unique(&fact, Side::Left).unwrap();
            b.unique(&fact, Side::Right).unwrap();
            b.total_role(&fact, Side::Left).unwrap();
        }
    }

    // Attribute facts.
    let all = entities.clone();
    let mut optional_facts_of: Vec<Vec<String>> = vec![Vec::new(); all.len()];
    let mut id_fact_of: Vec<Option<String>> = vec![None; all.len()];
    for (ei, &ent) in all.iter().enumerate() {
        let ent_name = b.schema().ot_name(ent).to_owned();
        if b.schema()
            .fact_type_by_name(&format!("{ent_name}_id"))
            .is_some()
        {
            id_fact_of[ei] = Some(format!("{ent_name}_id"));
        } else if b
            .schema()
            .fact_type_by_name(&format!("{ent_name}_key"))
            .is_some()
        {
            id_fact_of[ei] = Some(format!("{ent_name}_key"));
        }
        let n_attrs = rng.gen_range(params.attrs_per_nolot.0..=params.attrs_per_nolot.1);
        for a in 0..n_attrs {
            let total = rng.gen_bool(params.total_prob);
            if rng.gen_bool(params.ref_prob) && all.len() > 1 {
                // Entity-valued attribute toward a *base* entity (base
                // entities always have relations, so foreign keys resolve).
                let target = entities[rng.gen_range(0..base_count)];
                if target == ent {
                    continue;
                }
                let tname = b.schema().ot_name(target).to_owned();
                let fact = format!("{ent_name}_ref{a}");
                b.fact(
                    &fact,
                    (format!("r{a}_of").as_str(), ent_name.as_str()),
                    (format!("r{a}").as_str(), tname.as_str()),
                )
                .unwrap();
                b.unique(&fact, Side::Left).unwrap();
                if total {
                    b.total_role(&fact, Side::Left).unwrap();
                } else {
                    optional_facts_of[ei].push(fact.clone());
                }
            } else {
                let dt = match rng.gen_range(0..4) {
                    0 => DataType::Char(12),
                    1 => DataType::VarChar(30),
                    2 => DataType::Numeric(8, 2),
                    _ => DataType::Date,
                };
                let lot = format!("L{lot_counter:04}");
                lot_counter += 1;
                b.lot(&lot, dt).unwrap();
                let fact = format!("{ent_name}_a{a}");
                b.fact(
                    &fact,
                    (format!("a{a}_of").as_str(), ent_name.as_str()),
                    (format!("a{a}").as_str(), lot.as_str()),
                )
                .unwrap();
                b.unique(&fact, Side::Left).unwrap();
                if total {
                    b.total_role(&fact, Side::Left).unwrap();
                } else {
                    optional_facts_of[ei].push(fact.clone());
                }
                // Some lexical attributes are enumerations.
                if rng.gen_bool(params.enum_prob) && dt == DataType::Char(12) {
                    let values: Vec<ridl_brm::Value> = (0..rng.gen_range(2..6))
                        .map(|k| ridl_brm::Value::str(format!("V{k}")))
                        .collect();
                    b.value_constraint(&lot, values).unwrap();
                }
            }
        }
    }

    // Set-algebraic constraint enrichment: exclusion pairs between optional
    // facts of one entity, and explicit subset statements from optional
    // roles into the identifier role.
    for (ei, opts) in optional_facts_of.iter().enumerate() {
        let mut iter = opts.chunks_exact(2);
        for pair in &mut iter {
            if rng.gen_bool(params.exclusion_prob) {
                b.exclusion_roles(&[
                    (pair[0].as_str(), Side::Left),
                    (pair[1].as_str(), Side::Left),
                ])
                .unwrap();
            }
        }
        if let Some(id_fact) = &id_fact_of[ei] {
            for f in opts {
                if rng.gen_bool(params.subset_prob) {
                    b.subset(
                        &[(f.as_str(), Side::Left)],
                        &[(id_fact.as_str(), Side::Left)],
                    )
                    .unwrap();
                }
            }
        }
    }

    // m:n facts between base entities.
    let mut mn_facts = Vec::new();
    for m in 0..params.mn_facts {
        let x = rng.gen_range(0..base_count);
        let mut y = rng.gen_range(0..base_count);
        if y == x {
            y = (y + 1) % base_count;
        }
        let xn = b.schema().ot_name(entities[x]).to_owned();
        let yn = b.schema().ot_name(entities[y]).to_owned();
        let fact = format!("M{m:03}_{xn}_{yn}");
        b.fact(&fact, ("links", xn.as_str()), ("linked_by", yn.as_str()))
            .unwrap();
        b.unique_pair(&fact).unwrap();
        // Occurrence frequencies on m:n roles ("each X links at most k
        // Ys"). Minima stay at 0/1: the population validator counts only
        // occurring values, so any occurring value already meets them —
        // the binding bound is the maximum, which popgen respects.
        if rng.gen_bool(params.card_prob) {
            let side = if rng.gen_bool(0.5) {
                Side::Left
            } else {
                Side::Right
            };
            let min = rng.gen_range(0..=1);
            let max = rng.gen_range(2..=4);
            b.cardinality(&fact, side, min, Some(max)).unwrap();
        }
        mn_facts.push(b.schema().fact_type_by_name(&fact).unwrap());
    }

    let schema = b.finish().expect("synthetic schema is well-formed");
    SynthSchema {
        schema,
        entities,
        mn_facts,
        params: params.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_analyzer::analyze;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GenParams::default());
        let b = generate(&GenParams::default());
        assert_eq!(a.schema.num_object_types(), b.schema.num_object_types());
        assert_eq!(a.schema.num_fact_types(), b.schema.num_fact_types());
        assert_eq!(a.schema.num_constraints(), b.schema.num_constraints());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenParams::default());
        let b = generate(&GenParams {
            seed: 7,
            ..GenParams::default()
        });
        // Object counts may coincide, but fact structure differs with
        // overwhelming probability.
        assert!(
            a.schema.num_fact_types() != b.schema.num_fact_types()
                || a.schema.num_constraints() != b.schema.num_constraints()
        );
    }

    #[test]
    fn generated_schemas_pass_ridl_a() {
        for seed in [1, 2, 3] {
            let s = generate(&GenParams {
                seed,
                ..GenParams::default()
            });
            let report = analyze(&s.schema);
            assert!(report.is_mappable(), "seed {seed}: {}", report.render());
        }
    }

    #[test]
    fn cardinality_constraints_are_generated() {
        let s = generate(&GenParams {
            seed: 9,
            card_prob: 1.0,
            ..GenParams::default()
        });
        let n = s
            .schema
            .constraints()
            .filter(|(_, c)| matches!(c.kind, ridl_brm::ConstraintKind::Cardinality { .. }))
            .count();
        assert_eq!(n, s.mn_facts.len(), "one frequency bound per m:n fact");
        assert!(analyze(&s.schema).is_mappable());
        // And off by default prior to this knob: probability 0 disables.
        let s0 = generate(&GenParams {
            seed: 9,
            card_prob: 0.0,
            ..GenParams::default()
        });
        let n0 = s0
            .schema
            .constraints()
            .filter(|(_, c)| matches!(c.kind, ridl_brm::ConstraintKind::Cardinality { .. }))
            .count();
        assert_eq!(n0, 0);
    }

    #[test]
    fn industrial_params_scale_up() {
        let p = GenParams::industrial(1);
        assert!(p.nolots >= 80);
        let s = generate(&GenParams {
            nolots: 20,
            mn_facts: 10,
            ..p
        });
        assert!(s.schema.num_fact_types() > 40);
    }
}

//! # ridl-workloads — the paper's schemas and synthetic generators
//!
//! * [`fig6`] — the Paper / Invited\_Paper / Program\_Paper fragment of the
//!   paper's figure 6, whose four mapping alternatives the experiments
//!   reproduce, plus a consistent sample population;
//! * [`cris`] — the full "CRIS-case" conference-organisation schema (the
//!   paper's running example, after Olle's *Design Specifications for
//!   Conference Organization*), reconstructed at realistic size;
//! * [`synth`] — a seeded generator of arbitrarily large, well-formed,
//!   referable binary schemas, standing in for the proprietary industrial
//!   schemas behind the paper's "120–150 ORACLE tables" claim (§5);
//! * [`popgen`] — a seeded generator of fact-closed model populations for
//!   any schema, powering the losslessness property tests;
//! * [`scenario`] — ready-made experiment scenarios (the industrial mapped
//!   schema with a calibrated large population) shared by the benches and
//!   the differential test suites;
//! * [`macrobench`] — the RIDL-Bench end-to-end macro workload: staged
//!   pipeline builders plus a deterministic mixed-traffic plan, driven by
//!   `ridl bench` and the `macro_pipeline` criterion bench;
//! * [`sigex`] — Proper-style significant examples: verified
//!   near-violation populations that stress each constraint class at its
//!   boundary.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cris;
pub mod fig6;
pub mod macrobench;
pub mod popgen;
pub mod scenario;
pub mod sigex;
pub mod synth;

pub use synth::{GenParams, SynthSchema};

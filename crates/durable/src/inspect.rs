//! Offline, read-only store inspection — the decode half of
//! [`crate::store::read_store`] without the repair half.
//!
//! `ridl status` points this at a store directory and reports what is
//! there *without opening the database*: the checkpoint chain (base file,
//! format, epoch, delta links), WAL health (CRC-valid committed units,
//! torn-tail bytes), fingerprint/geometry consistency, and debris
//! (orphaned tmp files, unchained delta files, rejected snapshots).
//! Unlike `read_store`, which deletes tmp files and orphans as repair
//! hygiene, inspection never writes: it is safe to run against a store
//! another process owns, or against evidence you want preserved.
//!
//! The decode paths are the same strict ones recovery uses
//! ([`decode_paged`], [`crate::snapshot::decode_snapshot`],
//! [`scan_wal`]), so the inspector's verdict agrees with what
//! `Database::open` would find: [`StoreStatus::verdict`] says `corrupt`
//! exactly when recovery would refuse the store, `recoverable` when
//! recovery would succeed but had something to clean up (torn tail,
//! stale WAL, debris), `clean` when there is nothing to do, and `fresh`
//! for an empty directory.

use std::io;
use std::path::Path;

use crate::io::DurableIo;
use crate::pagesnap::{decode_paged, PagedSnap, SnapFlavor, SNAP2_MAGIC};
use crate::snapshot::decode_snapshot;
use crate::store::{
    delta_file, probe_deltas, store_path, SNAP_FILE, SNAP_PREV_FILE, SNAP_TMP_FILE, WAL_FILE,
    WAL_TMP_FILE,
};
use crate::wal::scan_wal;

/// What one checkpoint file (base, fallback, or delta) holds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckpointInfo {
    /// File name inside the store directory.
    pub file: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Snapshot format: 1 legacy text, 2 binary paged.
    pub format: u8,
    /// `base` or `delta`.
    pub flavor: &'static str,
    /// Epoch stamped in the file.
    pub epoch: u64,
    /// Schema fingerprint stamped in the file.
    pub fingerprint: u64,
    /// Extents carried by the file (v2 only; 0 for v1 text).
    pub extents_carried: u64,
    /// Total extents in the file's geometry (v2 only; 0 for v1 text).
    pub extents_total: u64,
    /// Whether this file participates in the live chain: true for the
    /// chosen base, and for each delta that links onto it.
    pub chained: bool,
}

/// WAL health as seen on disk.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct WalStatus {
    /// Whether `wal.log` exists.
    pub present: bool,
    /// Total bytes on disk.
    pub bytes: u64,
    /// Header `(epoch, fingerprint)` if the header frame was readable.
    pub header: Option<(u64, u64)>,
    /// CRC-valid committed units.
    pub units: usize,
    /// Delta ops inside those units.
    pub ops: usize,
    /// Bytes up to the end of the last committed unit.
    pub committed_bytes: u64,
    /// Bytes past that point (torn/partial/corrupt tail).
    pub torn_bytes: u64,
    /// True when the WAL's epoch predates the chain head: its units are
    /// already inside the chain and recovery discards them wholesale.
    pub stale: bool,
}

/// Everything the offline inspector found in a store directory.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StoreStatus {
    /// The directory inspected.
    pub dir: String,
    /// The chain's head epoch (base epoch + chained deltas), if a base
    /// checkpoint was usable.
    pub epoch: Option<u64>,
    /// Which file the chain's base came from (`checkpoint.snap` or
    /// `checkpoint.prev`).
    pub base_file: Option<&'static str>,
    /// Chained delta count.
    pub chain_len: usize,
    /// Every checkpoint file that decoded, in layout order: `snap`,
    /// `prev`, then deltas. `chained` marks the live chain.
    pub checkpoints: Vec<CheckpointInfo>,
    /// Files present but undecodable: `(file, error)`.
    pub rejected: Vec<(String, String)>,
    /// Orphaned staging files present (`checkpoint.tmp`, `wal.tmp`).
    pub tmp_debris: Vec<String>,
    /// Delta files present that do not link onto the chain.
    pub orphan_deltas: Vec<String>,
    /// WAL health.
    pub wal: WalStatus,
    /// A store-level inconsistency that would make recovery refuse the
    /// directory (WAL ahead of every checkpoint, …).
    pub corrupt: Option<String>,
    /// Human-readable notes on everything recovery would repair or
    /// discard.
    pub issues: Vec<String>,
}

impl StoreStatus {
    /// One-word health verdict: `fresh`, `clean`, `recoverable`, or
    /// `corrupt` (see module docs).
    pub fn verdict(&self) -> &'static str {
        if self.corrupt.is_some() {
            "corrupt"
        } else if self.epoch.is_none()
            && !self.wal.present
            && self.checkpoints.is_empty()
            && self.rejected.is_empty()
            && self.tmp_debris.is_empty()
        {
            "fresh"
        } else if self.issues.is_empty() {
            "clean"
        } else {
            "recoverable"
        }
    }
}

fn info_of(file: &str, bytes: &[u8]) -> Result<CheckpointInfo, String> {
    if bytes.starts_with(SNAP2_MAGIC) {
        let paged: PagedSnap = decode_paged(bytes).map_err(|e| e.0)?;
        return Ok(CheckpointInfo {
            file: file.to_string(),
            bytes: bytes.len() as u64,
            format: 2,
            flavor: match paged.flavor {
                SnapFlavor::Base => "base",
                SnapFlavor::Delta => "delta",
            },
            epoch: paged.epoch,
            fingerprint: paged.fingerprint,
            extents_carried: paged.extents.len() as u64,
            extents_total: paged.geometry.total_extents(),
            chained: false,
        });
    }
    let text = std::str::from_utf8(bytes).map_err(|_| "snapshot: not UTF-8".to_string())?;
    let snap = decode_snapshot(text).map_err(|e| e.0)?;
    Ok(CheckpointInfo {
        file: file.to_string(),
        bytes: bytes.len() as u64,
        format: 1,
        flavor: "base",
        epoch: snap.epoch,
        fingerprint: snap.fingerprint,
        extents_carried: 0,
        extents_total: 0,
        chained: false,
    })
}

/// Inspects `dir` read-only. I/O errors propagate; everything else —
/// corruption included — is reported in the returned [`StoreStatus`],
/// never acted on.
pub fn inspect_store(io: &dyn DurableIo, dir: &Path) -> io::Result<StoreStatus> {
    let mut out = StoreStatus {
        dir: dir.display().to_string(),
        ..StoreStatus::default()
    };

    for tmp in [SNAP_TMP_FILE, WAL_TMP_FILE] {
        if io.exists(&store_path(dir, tmp)) {
            out.tmp_debris.push(tmp.to_string());
            out.issues.push(format!(
                "{tmp}: orphaned staging file (recovery deletes it)"
            ));
        }
    }

    // Decode both base slots; remember the paged form of each candidate
    // for chain linking.
    let mut candidates: Vec<(usize, Option<PagedSnap>, &'static str)> = Vec::new();
    for file in [SNAP_FILE, SNAP_PREV_FILE] {
        let path = store_path(dir, file);
        if !io.exists(&path) {
            continue;
        }
        let bytes = io.read(&path)?;
        match info_of(file, &bytes) {
            Ok(info) => {
                // A delta in a base slot cannot anchor a chain — recovery
                // rejects it (`decode_base`), so does the inspector.
                if info.flavor == "delta" {
                    out.rejected.push((
                        file.to_string(),
                        "base checkpoint file holds a delta".into(),
                    ));
                    out.issues
                        .push(format!("{file}: holds a delta, not a base snapshot"));
                    continue;
                }
                let paged = if info.format == 2 {
                    Some(decode_paged(&bytes).expect("decoded once already"))
                } else {
                    None
                };
                out.checkpoints.push(info);
                candidates.push((out.checkpoints.len() - 1, paged, file));
            }
            Err(e) => {
                out.rejected.push((file.to_string(), e.clone()));
                out.issues.push(format!("{file}: rejected ({e})"));
            }
        }
    }

    // Decode every delta file in probe order.
    let delta_seqs = probe_deltas(io, dir);
    let mut deltas: Vec<(u32, usize, Option<PagedSnap>)> = Vec::new();
    for seq in &delta_seqs {
        let file = delta_file(*seq);
        let bytes = io.read(&store_path(dir, &file))?;
        match info_of(&file, &bytes) {
            Ok(info) if info.flavor == "delta" && info.format == 2 => {
                let paged = decode_paged(&bytes).expect("decoded once already");
                out.checkpoints.push(info);
                deltas.push((*seq, out.checkpoints.len() - 1, Some(paged)));
            }
            Ok(info) => {
                out.rejected
                    .push((file.clone(), "delta file does not hold a v2 delta".into()));
                out.issues
                    .push(format!("{file}: not a delta snapshot ({})", info.flavor));
            }
            Err(e) => {
                out.rejected.push((file.clone(), e.clone()));
                out.issues.push(format!("{file}: rejected ({e})"));
            }
        }
    }

    // WAL scan (total: torn tails are data, not errors).
    let wal_path = store_path(dir, WAL_FILE);
    if io.exists(&wal_path) {
        let bytes = io.read(&wal_path)?;
        let scan = scan_wal(&bytes);
        out.wal = WalStatus {
            present: true,
            bytes: bytes.len() as u64,
            header: scan.header.map(|h| (h.epoch, h.fingerprint)),
            units: scan.units.len(),
            ops: scan.units.iter().map(|u| u.ops.len()).sum(),
            committed_bytes: scan.committed_end,
            torn_bytes: scan.discarded,
            stale: false,
        };
        if scan.header.is_none() && !bytes.is_empty() {
            out.issues
                .push(format!("{WAL_FILE}: header unreadable (torn or corrupt)"));
        }
        if scan.discarded > 0 {
            out.issues.push(format!(
                "{WAL_FILE}: {} torn-tail bytes past the last committed unit (recovery discards them)",
                scan.discarded
            ));
        }
    }
    let wal_epoch = out.wal.header.map(|(e, _)| e);

    // Chain linking against the chosen (first usable) base — the same
    // rule as recovery: d{k} belongs iff dense from 1 with epoch exactly
    // base+k and matching fingerprint + geometry.
    if let Some((idx, paged, file)) = candidates.first() {
        out.base_file = Some(file);
        out.checkpoints[*idx].chained = true;
        let base_epoch = out.checkpoints[*idx].epoch;
        let base_fp = out.checkpoints[*idx].fingerprint;
        let mut head_epoch = base_epoch;
        if let Some(base) = paged {
            let mut position = 0u32;
            for (seq, didx, dp) in &deltas {
                let d = dp.as_ref().expect("delta decoded");
                let next = position + 1;
                if *seq != next
                    || d.epoch != base.epoch + next as u64
                    || d.fingerprint != base.fingerprint
                    || d.geometry != base.geometry
                {
                    break;
                }
                position = next;
                out.checkpoints[*didx].chained = true;
            }
            out.chain_len = position as usize;
            head_epoch = base.epoch + position as u64;
        }
        out.epoch = Some(head_epoch);
        let _ = base_fp;
        for (seq, didx, _) in &deltas {
            if !out.checkpoints[*didx].chained {
                let file = delta_file(*seq);
                out.issues.push(format!(
                    "{file}: orphan delta (epoch {} cannot chain onto base epoch {base_epoch})",
                    out.checkpoints[*didx].epoch
                ));
                out.orphan_deltas.push(file);
            }
        }
        match wal_epoch {
            Some(we) if we > head_epoch => {
                out.corrupt = Some(format!(
                    "WAL epoch {we} requires a newer checkpoint than {file} (chain head epoch {head_epoch})"
                ));
            }
            Some(we) if we < head_epoch => {
                out.wal.stale = true;
                out.issues.push(format!(
                    "{WAL_FILE}: stale (epoch {we} predates chain head {head_epoch}); recovery discards its units"
                ));
            }
            _ => {}
        }
        if let Some((_, wal_fp)) = out.wal.header {
            if wal_fp != base_fp {
                out.issues.push(format!(
                    "{WAL_FILE}: schema fingerprint {wal_fp:#018x} differs from checkpoint {base_fp:#018x}"
                ));
            }
        }
    } else {
        // No usable base: any non-zero-epoch WAL needs one.
        for (seq, didx, _) in &deltas {
            let file = delta_file(*seq);
            out.issues
                .push(format!("{file}: delta without a usable base checkpoint"));
            out.orphan_deltas.push(file);
            let _ = didx;
        }
        match wal_epoch {
            Some(we) if we != 0 => {
                out.corrupt = Some(format!("WAL epoch {we} but no usable checkpoint found"));
            }
            None if out.wal.present && out.wal.bytes > 0 && !out.rejected.is_empty() => {
                out.corrupt = Some("no readable checkpoint and WAL header unreadable".into());
            }
            _ => {}
        }
    }

    Ok(out)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl StoreStatus {
    /// Machine-readable JSON (one object, pretty enough to diff). The
    /// schema is stable for CI: `verdict`, `epoch`, `chain`, `wal`,
    /// `checkpoints`, `rejected`, `debris`, `orphans`, `issues`,
    /// `corrupt`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"dir\": \"{}\",\n", esc(&self.dir)));
        s.push_str(&format!("  \"verdict\": \"{}\",\n", self.verdict()));
        match self.epoch {
            Some(e) => s.push_str(&format!("  \"epoch\": {e},\n")),
            None => s.push_str("  \"epoch\": null,\n"),
        }
        s.push_str("  \"chain\": {");
        match self.base_file {
            Some(f) => s.push_str(&format!("\"base_file\": \"{f}\", ")),
            None => s.push_str("\"base_file\": null, "),
        }
        let base = self
            .checkpoints
            .iter()
            .find(|c| c.chained && c.flavor == "base");
        match base {
            Some(b) => s.push_str(&format!(
                "\"format\": {}, \"base_epoch\": {}, \"deltas\": {}}},\n",
                b.format, b.epoch, self.chain_len
            )),
            None => s.push_str(&format!(
                "\"format\": 0, \"base_epoch\": null, \"deltas\": {}}},\n",
                self.chain_len
            )),
        }
        s.push_str("  \"wal\": {");
        if self.wal.present {
            match self.wal.header {
                Some((e, fp)) => s.push_str(&format!(
                    "\"present\": true, \"bytes\": {}, \"epoch\": {e}, \"fingerprint\": \"{fp:#018x}\", ",
                    self.wal.bytes
                )),
                None => s.push_str(&format!(
                    "\"present\": true, \"bytes\": {}, \"epoch\": null, \"fingerprint\": null, ",
                    self.wal.bytes
                )),
            }
            s.push_str(&format!(
                "\"units\": {}, \"ops\": {}, \"committed_bytes\": {}, \"torn_bytes\": {}, \"stale\": {}}},\n",
                self.wal.units,
                self.wal.ops,
                self.wal.committed_bytes,
                self.wal.torn_bytes,
                self.wal.stale
            ));
        } else {
            s.push_str("\"present\": false},\n");
        }
        s.push_str("  \"checkpoints\": [");
        for (i, c) in self.checkpoints.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"file\": \"{}\", \"bytes\": {}, \"format\": {}, \"flavor\": \"{}\", \"epoch\": {}, \"fingerprint\": \"{:#018x}\", \"extents_carried\": {}, \"extents_total\": {}, \"chained\": {}}}",
                esc(&c.file),
                c.bytes,
                c.format,
                c.flavor,
                c.epoch,
                c.fingerprint,
                c.extents_carried,
                c.extents_total,
                c.chained
            ));
        }
        s.push_str("],\n");
        s.push_str("  \"rejected\": [");
        for (i, (f, e)) in self.rejected.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"file\": \"{}\", \"error\": \"{}\"}}",
                esc(f),
                esc(e)
            ));
        }
        s.push_str("],\n");
        for (key, list) in [
            ("debris", &self.tmp_debris),
            ("orphans", &self.orphan_deltas),
            ("issues", &self.issues),
        ] {
            s.push_str(&format!("  \"{key}\": ["));
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\"", esc(item)));
            }
            s.push_str("],\n");
        }
        match &self.corrupt {
            Some(why) => s.push_str(&format!("  \"corrupt\": \"{}\"\n", esc(why))),
            None => s.push_str("  \"corrupt\": null\n"),
        }
        s.push('}');
        s
    }
}

impl std::fmt::Display for StoreStatus {
    /// The human summary `ridl status` prints.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "store: {}", self.dir)?;
        writeln!(f, "verdict: {}", self.verdict())?;
        match (self.epoch, self.base_file) {
            (Some(epoch), Some(file)) => {
                let base = self
                    .checkpoints
                    .iter()
                    .find(|c| c.chained && c.flavor == "base");
                let format = match base.map(|b| b.format) {
                    Some(1) => "v1 text",
                    Some(2) => "v2 paged",
                    _ => "unknown",
                };
                writeln!(
                    f,
                    "chain: epoch {epoch} = base {} ({file}, {format}) + {} delta(s)",
                    base.map(|b| b.epoch).unwrap_or(epoch),
                    self.chain_len
                )?;
                if let Some(b) = base {
                    writeln!(
                        f,
                        "base: {} bytes, {} extents, fingerprint {:#018x}",
                        b.bytes, b.extents_total, b.fingerprint
                    )?;
                }
                for c in self.checkpoints.iter().filter(|c| c.flavor == "delta") {
                    writeln!(
                        f,
                        "delta: {} epoch {} ({} bytes, {} extent(s)){}",
                        c.file,
                        c.epoch,
                        c.bytes,
                        c.extents_carried,
                        if c.chained { "" } else { " [orphan]" }
                    )?;
                }
            }
            _ => writeln!(f, "chain: no usable checkpoint")?,
        }
        if self.wal.present {
            match self.wal.header {
                Some((epoch, _)) => writeln!(
                    f,
                    "wal: epoch {epoch}, {} bytes, {} unit(s) / {} op(s) committed, {} torn byte(s){}",
                    self.wal.bytes,
                    self.wal.units,
                    self.wal.ops,
                    self.wal.torn_bytes,
                    if self.wal.stale { " [stale]" } else { "" }
                )?,
                None => writeln!(f, "wal: {} bytes, header unreadable", self.wal.bytes)?,
            }
        } else {
            writeln!(f, "wal: none")?;
        }
        for (file, err) in &self.rejected {
            writeln!(f, "rejected: {file}: {err}")?;
        }
        for d in &self.tmp_debris {
            writeln!(f, "debris: {d}")?;
        }
        if let Some(why) = &self.corrupt {
            writeln!(f, "corrupt: {why}")?;
        }
        for issue in &self.issues {
            writeln!(f, "note: {issue}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyIo;
    use crate::snapshot::encode_snapshot;
    use crate::store::{reset_wal, write_checkpoint, CheckpointPlan};
    use crate::wal::encode_unit;
    use ridl_brm::Value;
    use ridl_relational::{DeltaOp, RelState, TableId};
    use std::collections::BTreeSet;
    use std::path::PathBuf;

    fn dir() -> PathBuf {
        PathBuf::from("/store")
    }

    fn state_one_row() -> RelState {
        let mut st = RelState::with_tables(1);
        st.insert(TableId(0), vec![Some(Value::str("x"))]);
        st
    }

    fn append_insert(io: &FaultyIo, text: &str) {
        io.append(
            &store_path(&dir(), WAL_FILE),
            &encode_unit(
                &[DeltaOp::Insert {
                    table: TableId(0),
                    row: vec![Some(Value::str(text))],
                }],
                true,
            ),
        )
        .unwrap();
        io.sync(&store_path(&dir(), WAL_FILE)).unwrap();
    }

    #[test]
    fn fresh_directory_is_fresh() {
        let io = FaultyIo::new();
        let st = inspect_store(&io, &dir()).unwrap();
        assert_eq!(st.verdict(), "fresh");
        assert!(st.epoch.is_none());
        assert!(!st.wal.present);
        let json = st.to_json();
        assert!(json.contains("\"verdict\": \"fresh\""));
        assert!(json.contains("\"epoch\": null"));
    }

    #[test]
    fn healthy_chain_reports_epoch_and_links() {
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 0, 7).unwrap();
        let mut state = state_one_row();
        let outcome = write_checkpoint(&io, &dir(), 1, 7, &state, CheckpointPlan::Base).unwrap();
        let geometry = outcome.geometry;
        for (seq, name) in [(1u32, "y"), (2u32, "z")] {
            let row = vec![Some(Value::str(name))];
            let dirty: BTreeSet<_> = [(0u32, geometry.extent_of(0, &row))].into();
            state.insert(TableId(0), row);
            write_checkpoint(
                &io,
                &dir(),
                1 + seq as u64,
                7,
                &state,
                CheckpointPlan::Delta {
                    geometry: &geometry,
                    dirty: &dirty,
                    seq,
                },
            )
            .unwrap();
        }
        append_insert(&io, "tail");

        let st = inspect_store(&io, &dir()).unwrap();
        assert_eq!(st.verdict(), "clean");
        assert_eq!(st.epoch, Some(3), "base 1 + two deltas");
        assert_eq!(st.base_file, Some(SNAP_FILE));
        assert_eq!(st.chain_len, 2);
        assert_eq!(st.wal.units, 1);
        assert_eq!(st.wal.torn_bytes, 0);
        assert!(st.checkpoints.iter().all(|c| c.chained));
        // Read-only: nothing was deleted or created.
        assert!(io.exists(&store_path(&dir(), &delta_file(1))));
        let json = st.to_json();
        assert!(json.contains("\"deltas\": 2"));
        assert!(json.contains("\"units\": 1"));
        let human = st.to_string();
        assert!(human.contains("chain: epoch 3 = base 1"));
    }

    #[test]
    fn torn_tail_and_debris_are_reported_not_repaired() {
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 0, 7).unwrap();
        append_insert(&io, "good");
        // A torn append: half a unit past the committed end.
        let unit = encode_unit(
            &[DeltaOp::Insert {
                table: TableId(0),
                row: vec![Some(Value::str("torn"))],
            }],
            true,
        );
        io.append(&store_path(&dir(), WAL_FILE), &unit[..unit.len() / 2])
            .unwrap();
        io.poke(&store_path(&dir(), SNAP_TMP_FILE), b"half".to_vec());

        let st = inspect_store(&io, &dir()).unwrap();
        assert_eq!(st.verdict(), "recoverable");
        assert_eq!(st.wal.units, 1);
        assert!(st.wal.torn_bytes > 0);
        assert_eq!(st.tmp_debris, vec![SNAP_TMP_FILE.to_string()]);
        // Inspection never repairs: debris survives.
        assert!(io.exists(&store_path(&dir(), SNAP_TMP_FILE)));
        assert!(st.corrupt.is_none());
        assert!(st.issues.iter().any(|i| i.contains("torn-tail")));
    }

    #[test]
    fn orphan_delta_is_flagged_but_kept() {
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 0, 7).unwrap();
        let mut state = state_one_row();
        let outcome = write_checkpoint(&io, &dir(), 1, 7, &state, CheckpointPlan::Base).unwrap();
        let row = vec![Some(Value::str("y"))];
        let dirty: BTreeSet<_> = [(0u32, outcome.geometry.extent_of(0, &row))].into();
        state.insert(TableId(0), row);
        write_checkpoint(
            &io,
            &dir(),
            2,
            7,
            &state,
            CheckpointPlan::Delta {
                geometry: &outcome.geometry,
                dirty: &dirty,
                seq: 1,
            },
        )
        .unwrap();
        // Interrupted GC: stale d1 survives a new base.
        let stale = io.peek(&store_path(&dir(), &delta_file(1))).unwrap();
        write_checkpoint(&io, &dir(), 3, 7, &state, CheckpointPlan::Base).unwrap();
        io.poke(&store_path(&dir(), &delta_file(1)), stale);

        let st = inspect_store(&io, &dir()).unwrap();
        assert_eq!(st.verdict(), "recoverable");
        assert_eq!(st.epoch, Some(3));
        assert_eq!(st.chain_len, 0);
        assert_eq!(st.orphan_deltas, vec![delta_file(1)]);
        assert!(io.exists(&store_path(&dir(), &delta_file(1))), "kept");
    }

    #[test]
    fn wal_ahead_of_the_chain_is_corrupt() {
        let io = FaultyIo::new();
        let prev = encode_snapshot(1, 7, &state_one_row());
        io.poke(&store_path(&dir(), SNAP_PREV_FILE), prev.into_bytes());
        reset_wal(&io, &dir(), 2, 7).unwrap();
        let st = inspect_store(&io, &dir()).unwrap();
        assert_eq!(st.verdict(), "corrupt");
        assert!(st.corrupt.as_deref().unwrap().contains("WAL epoch 2"));

        // No checkpoint at all, WAL at a checkpointed epoch.
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 3, 7).unwrap();
        let st = inspect_store(&io, &dir()).unwrap();
        assert_eq!(st.verdict(), "corrupt");
    }

    #[test]
    fn stale_wal_and_corrupt_snap_fallback_match_recovery() {
        // Crash between checkpoint renames and WAL reset: snapshot at
        // epoch 1, WAL still at epoch 0.
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 0, 7).unwrap();
        append_insert(&io, "old");
        let snap = encode_snapshot(1, 7, &state_one_row());
        io.poke(&store_path(&dir(), SNAP_FILE), snap.into_bytes());
        let st = inspect_store(&io, &dir()).unwrap();
        assert_eq!(st.verdict(), "recoverable");
        assert!(st.wal.stale);
        assert_eq!(st.epoch, Some(1));

        // Corrupt snap falls back to prev — and reports the rejection.
        let io = FaultyIo::new();
        let prev = encode_snapshot(1, 7, &state_one_row());
        io.poke(&store_path(&dir(), SNAP_PREV_FILE), prev.into_bytes());
        io.poke(&store_path(&dir(), SNAP_FILE), b"garbage".to_vec());
        reset_wal(&io, &dir(), 1, 7).unwrap();
        let st = inspect_store(&io, &dir()).unwrap();
        assert_eq!(st.verdict(), "recoverable");
        assert_eq!(st.base_file, Some(SNAP_PREV_FILE));
        assert_eq!(st.rejected.len(), 1);
        assert!(io.exists(&store_path(&dir(), SNAP_FILE)), "not deleted");
    }
}

//! Checkpoint snapshots: a text encoding of [`RelState`] with a CRC32
//! footer, plus the typed value-token codec it shares with
//! `metadb::serde` (which delegates here, so the meta-database columns
//! and the durability layer speak one format).
//!
//! Layout (one record per line):
//!
//! ```text
//! RIDLSNAP 1
//! epoch <u64>
//! fingerprint <u64 hex>
//! tables <count>
//! t <table-index> <row-count>
//! r <cell><US><cell>...        one line per row; cell = ~ for NULL,
//!                              else the escaped value token
//! end
//! crc <u32 hex>                over every byte above, including "end\n"
//! ```
//!
//! Cells are percent-escaped so value tokens containing newlines, the
//! unit separator, or `%` itself round-trip byte-exactly; serialize →
//! parse → serialize is a fixpoint (rows live in `BTreeSet`s, so
//! iteration order is canonical). Truncated or bit-flipped input fails
//! the CRC (or the structural parse) with a typed error — never a panic.

use std::fmt;

use ridl_brm::{Decimal, Value};
use ridl_relational::{RelState, Row, TableId};

use crate::crc::crc32;

/// Errors raised while decoding snapshots or value tokens.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CorruptError(pub String);

impl fmt::Display for CorruptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt durable data: {}", self.0)
    }
}

impl std::error::Error for CorruptError {}

fn bad(what: impl Into<String>) -> CorruptError {
    CorruptError(what.into())
}

// ---- value tokens (the metadb::serde format) ----

/// Encodes a value as a typed token (`S…`, `I…`, `N…/…`, `D…`, `B0|B1`,
/// `E…`).
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("S{s}"),
        Value::Int(i) => format!("I{i}"),
        Value::Num(d) => format!("N{}/{}", d.mantissa, d.scale),
        Value::Date(d) => format!("D{d}"),
        Value::Bool(b) => format!("B{}", if *b { 1 } else { 0 }),
        Value::Entity(e) => format!("E{}", e.0),
    }
}

/// Decodes a typed value token.
pub fn decode_value(s: &str) -> Result<Value, CorruptError> {
    let err = || bad(format!("value {s}"));
    // One ASCII tag byte; a multibyte first char is corrupt, not a slice
    // panic.
    if s.is_empty() || !s.is_char_boundary(1) {
        return Err(err());
    }
    let (tag, rest) = s.split_at(1);
    Ok(match tag {
        "S" => Value::str(rest),
        "I" => Value::Int(rest.parse().map_err(|_| err())?),
        "N" => {
            let (m, sc) = rest.split_once('/').ok_or_else(err)?;
            Value::Num(Decimal::new(
                m.parse().map_err(|_| err())?,
                sc.parse().map_err(|_| err())?,
            ))
        }
        "D" => Value::Date(rest.parse().map_err(|_| err())?),
        "B" => match rest {
            "1" => Value::Bool(true),
            "0" => Value::Bool(false),
            _ => return Err(err()),
        },
        "E" => Value::entity(rest.parse().map_err(|_| err())?),
        _ => return Err(err()),
    })
}

// ---- cell escaping ----

const US: char = '\u{1f}';

/// Percent-escapes control characters (including `\n` and the unit
/// separator), `%`, and a leading-`~` collision so any value token is one
/// line-safe, separator-safe cell.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c < ' ' || c == '%' || c == '\u{7f}' {
            out.push('%');
            out.push_str(&format!("{:02X}", c as u32));
        } else {
            out.push(c);
        }
    }
    out
}

fn unesc(s: &str) -> Result<String, CorruptError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '%' {
            let hi = chars.next().ok_or_else(|| bad("truncated escape"))?;
            let lo = chars.next().ok_or_else(|| bad("truncated escape"))?;
            // Direct hex-digit decoding: no per-escape allocation, and
            // only actual hex digits pass (`u32::from_str_radix` would
            // also accept a leading sign, letting `%+5` sneak through).
            // A multi-byte char in either position is simply not a hex
            // digit — a typed error, never a slicing panic.
            let n = match (hi.to_digit(16), lo.to_digit(16)) {
                (Some(h), Some(l)) => h * 16 + l,
                _ => return Err(bad(format!("escape %{hi}{lo}"))),
            };
            out.push(char::from_u32(n).ok_or_else(|| bad(format!("escape %{hi}{lo}")))?);
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Encodes one row as a line of US-separated cells (`~` = NULL).
pub fn encode_row(row: &Row) -> String {
    row.iter()
        .map(|cell| match cell {
            None => "~".to_string(),
            Some(v) => esc(&encode_value(v)),
        })
        .collect::<Vec<_>>()
        .join(&US.to_string())
}

/// Decodes a row line produced by [`encode_row`].
pub fn decode_row(line: &str) -> Result<Row, CorruptError> {
    if line.is_empty() {
        return Ok(Vec::new());
    }
    line.split(US)
        .map(|cell| {
            if cell == "~" {
                Ok(None)
            } else {
                decode_value(&unesc(cell)?).map(Some)
            }
        })
        .collect()
}

// ---- state snapshots ----

/// A decoded checkpoint snapshot.
#[derive(Clone, PartialEq, Debug)]
pub struct Snapshot {
    /// WAL epoch this snapshot pairs with: a WAL whose header carries the
    /// same epoch applies *on top of* this state; a smaller epoch means
    /// the WAL is stale (its effects are already included here).
    pub epoch: u64,
    /// Schema fingerprint the state was captured under.
    pub fingerprint: u64,
    /// The state.
    pub state: RelState,
}

/// Serializes a snapshot. The output is a fixpoint under
/// parse-then-serialize.
pub fn encode_snapshot(epoch: u64, fingerprint: u64, state: &RelState) -> String {
    let mut body = String::new();
    body.push_str("RIDLSNAP 1\n");
    body.push_str(&format!("epoch {epoch}\n"));
    body.push_str(&format!("fingerprint {fingerprint:016x}\n"));
    body.push_str(&format!("tables {}\n", state.num_tables()));
    for i in 0..state.num_tables() {
        let rows = state.rows(TableId(i as u32));
        body.push_str(&format!("t {i} {}\n", rows.len()));
        for row in rows {
            body.push_str("r ");
            body.push_str(&encode_row(row));
            body.push('\n');
        }
    }
    body.push_str("end\n");
    let crc = crc32(body.as_bytes());
    body.push_str(&format!("crc {crc:08x}\n"));
    body
}

/// Parses and verifies a snapshot. Any truncation, bit flip, or
/// structural damage yields a [`CorruptError`].
pub fn decode_snapshot(text: &str) -> Result<Snapshot, CorruptError> {
    // The CRC footer is the last line; everything before it is covered.
    let body_end = text
        .rfind("\ncrc ")
        .ok_or_else(|| bad("snapshot: missing crc footer"))?
        + 1;
    let (body, footer) = text.split_at(body_end);
    let footer = footer
        .strip_prefix("crc ")
        .and_then(|f| f.strip_suffix('\n'))
        .ok_or_else(|| bad("snapshot: malformed crc footer"))?;
    let want = u32::from_str_radix(footer, 16).map_err(|_| bad("snapshot: malformed crc"))?;
    let got = crc32(body.as_bytes());
    if want != got {
        return Err(bad(format!(
            "snapshot: crc mismatch (stored {want:08x}, computed {got:08x})"
        )));
    }
    let mut lines = body.lines();
    let magic = lines.next().ok_or_else(|| bad("snapshot: empty"))?;
    if magic != "RIDLSNAP 1" {
        return Err(bad(format!("snapshot: bad magic {magic:?}")));
    }
    let field = |line: Option<&str>, key: &str| -> Result<String, CorruptError> {
        line.and_then(|l| l.strip_prefix(key))
            .and_then(|l| l.strip_prefix(' '))
            .map(str::to_string)
            .ok_or_else(|| bad(format!("snapshot: expected `{key}`")))
    };
    let epoch: u64 = field(lines.next(), "epoch")?
        .parse()
        .map_err(|_| bad("snapshot: epoch"))?;
    let fingerprint = u64::from_str_radix(&field(lines.next(), "fingerprint")?, 16)
        .map_err(|_| bad("snapshot: fingerprint"))?;
    let num_tables: usize = field(lines.next(), "tables")?
        .parse()
        .map_err(|_| bad("snapshot: tables"))?;
    let mut state = RelState::with_tables(num_tables);
    for i in 0..num_tables {
        let hdr = field(lines.next(), "t")?;
        let (idx, count) = hdr
            .split_once(' ')
            .ok_or_else(|| bad(format!("snapshot: table header {hdr:?}")))?;
        let idx: usize = idx.parse().map_err(|_| bad("snapshot: table index"))?;
        if idx != i {
            return Err(bad(format!("snapshot: table {idx} out of order")));
        }
        let count: usize = count.parse().map_err(|_| bad("snapshot: row count"))?;
        for _ in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| bad("snapshot: truncated rows"))?;
            let row = line
                .strip_prefix("r ")
                .ok_or_else(|| bad(format!("snapshot: expected row, got {line:?}")))?;
            if !state.insert(TableId(i as u32), decode_row(row)?) {
                return Err(bad("snapshot: duplicate row"));
            }
        }
    }
    match lines.next() {
        Some("end") => {}
        other => return Err(bad(format!("snapshot: expected end, got {other:?}"))),
    }
    Ok(Snapshot {
        epoch,
        fingerprint,
        state,
    })
}

/// FNV-1a over a string — the schema fingerprint stored in snapshots and
/// WAL headers, guarding a store against being opened under a different
/// schema. (Not stable across builds that change schema `Debug` output;
/// it guards operational mistakes, not archival formats.)
pub fn fingerprint_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Option<Value> {
        Some(Value::str(s))
    }

    fn sample_state() -> RelState {
        let mut st = RelState::with_tables(3);
        st.insert(TableId(0), vec![v("plain"), None]);
        st.insert(TableId(0), vec![v("with\nnewline"), v("with\u{1f}us")]);
        st.insert(TableId(0), vec![v("100%"), v("~tilde")]);
        st.insert(
            TableId(2),
            vec![
                Some(Value::Int(-42)),
                Some(Value::Num(Decimal::new(1234, 2))),
                Some(Value::Date(9999)),
                Some(Value::Bool(false)),
                Some(Value::entity(7)),
            ],
        );
        st
    }

    #[test]
    fn snapshot_roundtrips_and_is_a_fixpoint() {
        let st = sample_state();
        let enc = encode_snapshot(3, 0xABCD, &st);
        let snap = decode_snapshot(&enc).unwrap();
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.fingerprint, 0xABCD);
        assert_eq!(snap.state, st);
        assert_eq!(
            encode_snapshot(snap.epoch, snap.fingerprint, &snap.state),
            enc
        );
    }

    #[test]
    fn every_truncation_is_rejected() {
        let enc = encode_snapshot(1, 1, &sample_state());
        for cut in 0..enc.len() {
            assert!(
                decode_snapshot(&enc[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let enc = encode_snapshot(1, 1, &sample_state());
        let mut bytes = enc.clone().into_bytes();
        // Flip a byte inside a row cell (after the header lines).
        let pos = enc.find("r ").unwrap() + 2;
        bytes[pos] ^= 0x01;
        let tampered = String::from_utf8(bytes).unwrap();
        assert!(decode_snapshot(&tampered).is_err());
    }

    #[test]
    fn rows_with_hostile_strings_roundtrip() {
        for s in ["", "~", "%", "%41", "a\u{1f}b", "line\nbreak", "ünïcode…"] {
            let row: Row = vec![v(s), None, v(s)];
            let dec = decode_row(&encode_row(&row)).unwrap();
            assert_eq!(dec, row, "{s:?}");
        }
    }

    #[test]
    fn empty_state_roundtrips() {
        let st = RelState::with_tables(0);
        let snap = decode_snapshot(&encode_snapshot(0, 0, &st)).unwrap();
        assert_eq!(snap.state, st);
    }

    #[test]
    fn bad_escapes_are_typed_errors_not_panics() {
        // Truncated, non-hex, signed (from_str_radix would take "+5"),
        // and multi-byte chars in either digit position.
        for s in [
            "%", "%4", "%G1", "%1G", "%+5", "%-1", "% 1", "%Ａ1", "%1Ａ", "%日本", "a%", "x%~y",
        ] {
            assert!(unesc(s).is_err(), "{s:?} accepted");
        }
        // Uppercase (canonical) and lowercase hex both decode.
        assert_eq!(unesc("%0A").unwrap(), "\n");
        assert_eq!(unesc("%0a").unwrap(), "\n");
        assert_eq!(unesc("%FF").unwrap(), "\u{ff}");
    }

    mod escape_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// esc → unesc is the identity for any string.
            #[test]
            fn esc_unesc_roundtrips(s in "\\PC*") {
                prop_assert_eq!(unesc(&esc(&s)).unwrap(), s);
            }

            /// unesc never panics on adversarial input (multi-byte chars
            /// after '%', truncated escapes, raw control bytes), and when
            /// it succeeds, re-escaping its output re-parses to the same
            /// thing (no silent mangling).
            #[test]
            fn unesc_is_total_on_arbitrary_input(s in "\\PC*") {
                if let Ok(decoded) = unesc(&s) {
                    prop_assert_eq!(unesc(&esc(&decoded)).unwrap(), decoded);
                }
            }

            /// Adversarial escape sequences specifically: '%' followed by
            /// arbitrary (possibly multi-byte, possibly missing) chars.
            #[test]
            fn percent_prefixed_garbage_never_panics(
                tail in proptest::collection::vec(any::<char>(), 0..3),
                prefix in "\\PC{0,4}",
            ) {
                let mut s = prefix;
                s.push('%');
                s.extend(tail);
                let _ = unesc(&s); // must not panic; Err is fine
                let _ = decode_row(&s); // full cell path is total too
            }
        }
    }
}

//! Fault injection at the syscall boundary.
//!
//! [`FaultyIo`] is an in-memory filesystem implementing [`DurableIo`]
//! that models the volatility the durability layer must survive: bytes
//! written but not yet fsync'd live in a **volatile tail** that a
//! simulated crash discards (wholly or partially), and every syscall is
//! numbered so a [`FaultPlan`] can inject a short write, an I/O error, or
//! a crash at any exact operation. Renames are modeled as atomic and
//! immediately durable — the protocol layer must (and does) sync file
//! contents *before* renaming and the containing directory *after*
//! ([`DurableIo::sync_dir`], a no-op here, a real directory fsync in
//! [`crate::io::StdIo`]), which is what makes that simplification sound.
//!
//! The crash-consistency property suite drives a durable database over
//! this filesystem, injects a fault at every reachable syscall index,
//! "reboots" with [`FaultyIo::crash`], recovers, and asserts the
//! recovered state is exactly a committed prefix of the workload.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::io::DurableIo;

/// What to inject when the planned syscall index is reached.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The write persists only a prefix of the data, then errors. On
    /// non-write syscalls this degrades to a plain I/O error.
    ShortWrite,
    /// The syscall fails without side effects.
    IoError,
    /// The syscall fails and every subsequent syscall fails too, until
    /// [`FaultyIo::crash`] "reboots" the filesystem (dropping unsynced
    /// bytes).
    Crash,
}

/// One planned injection: fire `kind` at the `at_op`-th syscall
/// (0-based over the lifetime of the [`FaultyIo`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Syscall index at which to inject.
    pub at_op: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// One in-memory file: `data[..synced]` is durable, the rest is the
/// volatile tail a crash may discard.
#[derive(Clone, Default, Debug)]
struct FileBuf {
    data: Vec<u8>,
    synced: usize,
}

#[derive(Default)]
struct Inner {
    files: BTreeMap<PathBuf, FileBuf>,
    dirs: Vec<PathBuf>,
    op: u64,
    plan: Option<FaultPlan>,
    /// Set by an injected crash: all further syscalls fail until
    /// [`FaultyIo::crash`] reboots.
    down: bool,
    fsyncs: u64,
}

/// An in-memory, fault-injecting [`DurableIo`] implementation.
#[derive(Default)]
pub struct FaultyIo {
    inner: Mutex<Inner>,
}

fn inj_err(kind: FaultKind) -> io::Error {
    io::Error::other(format!("injected fault: {kind:?}"))
}

impl FaultyIo {
    /// A fresh, empty, fault-free filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or clears) the fault plan. Counting continues from the
    /// filesystem's lifetime syscall counter.
    pub fn set_plan(&self, plan: Option<FaultPlan>) {
        self.inner.lock().unwrap().plan = plan;
    }

    /// Syscalls performed so far (used to size a fault matrix).
    pub fn op_count(&self) -> u64 {
        self.inner.lock().unwrap().op
    }

    /// Number of [`DurableIo::sync`] calls that completed.
    pub fn fsync_count(&self) -> u64 {
        self.inner.lock().unwrap().fsyncs
    }

    /// Whether an injected crash has taken the filesystem down.
    pub fn is_down(&self) -> bool {
        self.inner.lock().unwrap().down
    }

    /// Simulates the machine rebooting: every file keeps its durable
    /// prefix plus at most `keep_unsynced` bytes of its volatile tail
    /// (a torn page-cache flush), the down flag clears, and the fault
    /// plan is discarded.
    pub fn crash(&self, keep_unsynced: usize) {
        let mut g = self.inner.lock().unwrap();
        for f in g.files.values_mut() {
            let keep = f.data.len().min(f.synced + keep_unsynced);
            f.data.truncate(keep);
            f.synced = f.data.len();
        }
        g.down = false;
        g.plan = None;
    }

    /// Direct read of a file's current bytes (synced + volatile), for
    /// test assertions. `None` if absent.
    pub fn peek(&self, path: &Path) -> Option<Vec<u8>> {
        self.inner
            .lock()
            .unwrap()
            .files
            .get(path)
            .map(|f| f.data.clone())
    }

    /// Overwrites a file's bytes directly, marking them durable —
    /// for tests that plant at-rest corruption.
    pub fn poke(&self, path: &Path, data: Vec<u8>) {
        let mut g = self.inner.lock().unwrap();
        let synced = data.len();
        g.files.insert(path.to_path_buf(), FileBuf { data, synced });
    }

    /// Checks the down flag and the plan; returns the fault to inject at
    /// this syscall, if any.
    fn gate(g: &mut Inner) -> io::Result<Option<FaultKind>> {
        if g.down {
            return Err(io::Error::other("filesystem down after injected crash"));
        }
        let this_op = g.op;
        g.op += 1;
        if let Some(p) = g.plan {
            if p.at_op == this_op {
                if p.kind == FaultKind::Crash {
                    g.down = true;
                }
                ridl_obs::journal::record(
                    ridl_obs::Severity::Warn,
                    "fault.inject",
                    vec![
                        ("op", this_op.into()),
                        (
                            "fault",
                            match p.kind {
                                FaultKind::ShortWrite => "short_write",
                                FaultKind::IoError => "io_error",
                                FaultKind::Crash => "crash",
                            }
                            .into(),
                        ),
                    ],
                );
                return Ok(Some(p.kind));
            }
        }
        Ok(None)
    }
}

impl DurableIo for FaultyIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut g = self.inner.lock().unwrap();
        if let Some(kind) = Self::gate(&mut g)? {
            return Err(inj_err(kind));
        }
        g.files
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display())))
    }

    fn exists(&self, path: &Path) -> bool {
        // Existence probes are metadata-only; not an injection point.
        self.inner.lock().unwrap().files.contains_key(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        if let Some(kind) = Self::gate(&mut g)? {
            return Err(inj_err(kind));
        }
        let p = path.to_path_buf();
        if !g.dirs.contains(&p) {
            g.dirs.push(p);
        }
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        let fault = Self::gate(&mut g)?;
        let f = g.files.entry(path.to_path_buf()).or_default();
        match fault {
            None => {
                f.data.extend_from_slice(data);
                Ok(())
            }
            Some(FaultKind::ShortWrite) | Some(FaultKind::Crash) => {
                // A torn write: half the bytes land in the volatile tail.
                f.data.extend_from_slice(&data[..data.len() / 2]);
                Err(inj_err(fault.unwrap()))
            }
            Some(FaultKind::IoError) => Err(inj_err(FaultKind::IoError)),
        }
    }

    fn write_new(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        let fault = Self::gate(&mut g)?;
        match fault {
            None => {
                g.files.insert(
                    path.to_path_buf(),
                    FileBuf {
                        data: data.to_vec(),
                        synced: 0,
                    },
                );
                Ok(())
            }
            Some(FaultKind::ShortWrite) | Some(FaultKind::Crash) => {
                g.files.insert(
                    path.to_path_buf(),
                    FileBuf {
                        data: data[..data.len() / 2].to_vec(),
                        synced: 0,
                    },
                );
                Err(inj_err(fault.unwrap()))
            }
            Some(FaultKind::IoError) => Err(inj_err(FaultKind::IoError)),
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        if let Some(kind) = Self::gate(&mut g)? {
            return Err(inj_err(kind));
        }
        g.fsyncs += 1;
        if let Some(f) = g.files.get_mut(path) {
            f.synced = f.data.len();
        }
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        if let Some(kind) = Self::gate(&mut g)? {
            return Err(inj_err(kind));
        }
        match g.files.get_mut(path) {
            Some(f) => {
                // Like renames (module docs), the shrink is modeled as
                // immediately durable: the cut bytes cannot reappear
                // after a crash.
                let len = len as usize;
                if len < f.data.len() {
                    f.data.truncate(len);
                    f.synced = f.synced.min(len);
                }
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{}", path.display()),
            )),
        }
    }

    fn sync_dir(&self, _path: &Path) -> io::Result<()> {
        // Renames and creations are modeled as atomic and immediately
        // durable (module docs), so directory sync has nothing to do —
        // and is deliberately *not* an injection point, keeping the fault
        // matrix aligned with the data-path syscalls the model covers.
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        if let Some(kind) = Self::gate(&mut g)? {
            return Err(inj_err(kind));
        }
        match g.files.remove(from) {
            Some(f) => {
                g.files.insert(to.to_path_buf(), f);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{}", from.display()),
            )),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        if let Some(kind) = Self::gate(&mut g)? {
            return Err(inj_err(kind));
        }
        g.files.remove(path);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn unsynced_bytes_die_in_a_crash() {
        let io = FaultyIo::new();
        io.append(&p("/w"), b"durable").unwrap();
        io.sync(&p("/w")).unwrap();
        io.append(&p("/w"), b"+volatile").unwrap();
        io.crash(0);
        assert_eq!(io.peek(&p("/w")).unwrap(), b"durable");
    }

    #[test]
    fn crash_can_keep_a_torn_prefix_of_the_tail() {
        let io = FaultyIo::new();
        io.append(&p("/w"), b"ok").unwrap();
        io.sync(&p("/w")).unwrap();
        io.append(&p("/w"), b"0123456789").unwrap();
        io.crash(4);
        assert_eq!(io.peek(&p("/w")).unwrap(), b"ok0123");
    }

    #[test]
    fn short_write_leaves_half_the_bytes() {
        let io = FaultyIo::new();
        io.set_plan(Some(FaultPlan {
            at_op: 0,
            kind: FaultKind::ShortWrite,
        }));
        assert!(io.append(&p("/w"), b"abcdef").is_err());
        assert_eq!(io.peek(&p("/w")).unwrap(), b"abc");
        // Next syscall is past the plan: works again.
        io.append(&p("/w"), b"gh").unwrap();
        assert_eq!(io.peek(&p("/w")).unwrap(), b"abcgh");
    }

    #[test]
    fn crash_takes_the_filesystem_down_until_reboot() {
        let io = FaultyIo::new();
        io.append(&p("/w"), b"x").unwrap();
        io.set_plan(Some(FaultPlan {
            at_op: 1,
            kind: FaultKind::Crash,
        }));
        assert!(io.sync(&p("/w")).is_err());
        assert!(io.is_down());
        assert!(io.append(&p("/w"), b"y").is_err(), "down: all ops fail");
        io.crash(0);
        assert!(!io.is_down());
        assert_eq!(io.peek(&p("/w")).unwrap(), b"", "nothing was synced");
    }

    #[test]
    fn rename_is_atomic_and_replaces() {
        let io = FaultyIo::new();
        io.write_new(&p("/a"), b"new").unwrap();
        io.sync(&p("/a")).unwrap();
        io.write_new(&p("/b"), b"old").unwrap();
        io.rename(&p("/a"), &p("/b")).unwrap();
        assert!(!io.exists(&p("/a")));
        assert_eq!(io.peek(&p("/b")).unwrap(), b"new");
        assert!(io.rename(&p("/a"), &p("/b")).is_err());
    }

    #[test]
    fn io_error_has_no_side_effects() {
        let io = FaultyIo::new();
        io.append(&p("/w"), b"keep").unwrap();
        io.set_plan(Some(FaultPlan {
            at_op: 1,
            kind: FaultKind::IoError,
        }));
        assert!(io.append(&p("/w"), b"lost").is_err());
        assert_eq!(io.peek(&p("/w")).unwrap(), b"keep");
    }
}

//! The syscall boundary of the durability layer.
//!
//! Everything the WAL and checkpoint machinery does to storage goes
//! through [`DurableIo`], so the crash-consistency suite can substitute
//! [`crate::fault::FaultyIo`] and inject a short write, an I/O error, or
//! a crash at any individual syscall. The trait is deliberately
//! path-keyed and stateless (no retained file handles): every call is one
//! injectable operation, and the real implementation ([`StdIo`]) maps
//! each call onto `std::fs`.

use std::io;
use std::path::Path;

/// Filesystem operations the durability layer performs. All paths are
/// absolute (the engine joins them against the store directory).
pub trait DurableIo: Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Whether a file exists.
    fn exists(&self, path: &Path) -> bool;

    /// Creates a directory (and parents); succeeds if already present.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Appends `data` to a file, creating it if absent. On failure an
    /// arbitrary **prefix** of `data` may have reached the file (a short
    /// write) — callers must treat any error as "bytes after the last
    /// known-good offset are torn".
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Creates/truncates a file and writes `data`. Same short-write
    /// semantics as [`DurableIo::append`].
    fn write_new(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Forces previously written data of `path` to durable storage
    /// (fsync).
    fn sync(&self, path: &Path) -> io::Result<()>;

    /// Truncates a file to `len` bytes (no-op if already shorter). Like
    /// any metadata change, the truncation is durable only after
    /// [`DurableIo::sync`].
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Forces a directory's entries to durable storage (fsync of the
    /// directory itself). On a real filesystem a rename or file creation
    /// whose *contents* were fsync'd can still vanish in a power loss
    /// until the containing directory is synced, so the store protocol
    /// calls this after every rename. [`crate::fault::FaultyIo`] models
    /// renames as immediately durable and implements this as a no-op.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to`, replacing `to` if it exists.
    /// Durable only after [`DurableIo::sync_dir`] of the containing
    /// directory.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file; succeeds if it does not exist.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem: each trait call is one `std::fs` operation.
#[derive(Debug, Default)]
pub struct StdIo;

impl DurableIo for StdIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let created = !path.exists();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(data)?;
        // A freshly created file's directory entry is not durable until
        // the directory itself is synced — without this, the first
        // commit's fsync could survive a power loss while the file it
        // went into does not.
        if created {
            if let Some(dir) = path.parent() {
                self.sync_dir(dir)?;
            }
        }
        Ok(())
    }

    fn write_new(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        // Data already reached the kernel through a prior write; fsync via
        // a fresh handle flushes the same inode.
        std::fs::File::open(path)?.sync_all()
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(len)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // On Unix a directory opens read-only and fsyncs like a file,
        // making its entries (renames, creations) durable.
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }
}

//! Write-ahead log framing: length-prefixed, CRC32-checksummed records
//! with explicit commit markers.
//!
//! ```text
//! file   := magic frame*            magic = "RIDLWAL1" (8 bytes)
//! frame  := len:u32le crc:u32le payload   crc over payload only
//! payload:= 0x01 epoch:u64le fingerprint:u64le        (header)
//!         | 0x02 table:u32le row                      (insert op)
//!         | 0x03 table:u32le row                      (remove op)
//!         | 0x04 checked:u8                           (commit marker)
//! row    := ncells:u32le cell*
//! cell   := 0x00 | 0x01 len:u32le token-bytes
//! ```
//!
//! The **commit marker** is the durability point: recovery replays op
//! frames only up to the last valid commit marker. [`scan_wal`] is
//! total — torn, short, or bit-flipped tails never error, they just end
//! the committed region and are counted as discarded bytes.

use ridl_relational::{DeltaOp, Row, TableId};

use crate::crc::crc32;
use crate::snapshot::{decode_value, encode_value};

/// First 8 bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"RIDLWAL1";

/// Frames larger than this are treated as corruption (a torn length
/// prefix would otherwise make the scanner wait for gigabytes).
pub const MAX_FRAME: u32 = 1 << 28;

const KIND_HEADER: u8 = 0x01;
const KIND_INSERT: u8 = 0x02;
const KIND_REMOVE: u8 = 0x03;
const KIND_COMMIT: u8 = 0x04;

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u32(b: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?))
}

pub(crate) fn get_u64(b: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
}

pub(crate) fn encode_row_bytes(out: &mut Vec<u8>, row: &Row) {
    put_u32(out, row.len() as u32);
    for cell in row {
        match cell {
            None => out.push(0x00),
            Some(v) => {
                out.push(0x01);
                let tok = encode_value(v);
                put_u32(out, tok.len() as u32);
                out.extend_from_slice(tok.as_bytes());
            }
        }
    }
}

pub(crate) fn decode_row_bytes(b: &[u8], at: &mut usize) -> Option<Row> {
    let n = get_u32(b, *at)? as usize;
    *at += 4;
    if n > b.len() {
        return None;
    }
    // Each cell costs at least one payload byte, so the bytes remaining
    // bound the plausible cell count: a crafted CRC-valid frame claiming
    // ~2^28 cells must abort on its first missing cell, not allocate
    // gigabytes up front.
    let mut row = Row::with_capacity(n.min(b.len() - *at));
    for _ in 0..n {
        match *b.get(*at)? {
            0x00 => {
                *at += 1;
                row.push(None);
            }
            0x01 => {
                *at += 1;
                let len = get_u32(b, *at)? as usize;
                *at += 4;
                let tok = b.get(*at..*at + len)?;
                *at += len;
                let tok = std::str::from_utf8(tok).ok()?;
                row.push(Some(decode_value(tok).ok()?));
            }
            _ => return None,
        }
    }
    Some(row)
}

/// Wraps a payload in a `[len][crc]` frame.
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// The bytes of a fresh WAL file: magic plus a header frame binding the
/// epoch (which checkpoint this WAL applies on top of) and the schema
/// fingerprint.
pub fn wal_init_bytes(epoch: u64, fingerprint: u64) -> Vec<u8> {
    let mut payload = vec![KIND_HEADER];
    put_u64(&mut payload, epoch);
    put_u64(&mut payload, fingerprint);
    let mut out = WAL_MAGIC.to_vec();
    out.extend_from_slice(&frame(&payload));
    out
}

/// Encodes one committed unit: every op as its own frame, sealed by a
/// commit marker. Appending this buffer (then fsyncing) is the whole
/// commit protocol — a crash anywhere inside leaves a tail without a
/// valid commit marker, which recovery discards.
pub fn encode_unit(ops: &[DeltaOp], checked: bool) -> Vec<u8> {
    let mut out = Vec::new();
    for op in ops {
        let (kind, table, row) = match op {
            DeltaOp::Insert { table, row } => (KIND_INSERT, table, row),
            DeltaOp::Remove { table, row } => (KIND_REMOVE, table, row),
        };
        let mut payload = vec![kind];
        put_u32(&mut payload, table.0);
        encode_row_bytes(&mut payload, row);
        out.extend_from_slice(&frame(&payload));
    }
    let payload = vec![KIND_COMMIT, u8::from(checked)];
    out.extend_from_slice(&frame(&payload));
    out
}

/// One committed unit recovered from the log.
#[derive(Clone, PartialEq, Debug)]
pub struct CommitUnit {
    /// The row operations, in append order.
    pub ops: Vec<DeltaOp>,
    /// Whether the unit was constraint-checked when first committed
    /// (`false` for a deferred `insert_unchecked` outside a transaction).
    pub checked: bool,
}

/// The result of scanning a WAL byte buffer.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct WalScan {
    /// The header, if the magic and header frame were intact.
    pub header: Option<WalHeader>,
    /// Fully committed units, in commit order.
    pub units: Vec<CommitUnit>,
    /// Byte offset just past the last valid commit marker (or past the
    /// header when no unit committed) — the clean append point.
    pub committed_end: u64,
    /// Bytes after `committed_end`: torn frames, ops without a commit
    /// marker, or garbage. Never replayed.
    pub discarded: u64,
}

/// Epoch + fingerprint from a WAL header frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WalHeader {
    /// Checkpoint epoch this log applies on top of.
    pub epoch: u64,
    /// Schema fingerprint at log creation.
    pub fingerprint: u64,
}

/// Scans a WAL buffer. Total: corruption anywhere truncates the
/// committed region instead of failing. A missing/invalid magic or
/// header leaves `header` as `None` with every byte discarded.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut scan = WalScan {
        discarded: bytes.len() as u64,
        ..WalScan::default()
    };
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return scan;
    }
    let mut pos = WAL_MAGIC.len();
    let mut pending: Vec<DeltaOp> = Vec::new();
    while let Some(payload) = next_frame(bytes, &mut pos) {
        let is_first = scan.header.is_none();
        match payload.first() {
            Some(&KIND_HEADER) if is_first => {
                let (Some(epoch), Some(fingerprint)) = (get_u64(payload, 1), get_u64(payload, 9))
                else {
                    break;
                };
                scan.header = Some(WalHeader { epoch, fingerprint });
                scan.committed_end = pos as u64;
            }
            _ if is_first => break, // first frame must be the header
            Some(&kind @ (KIND_INSERT | KIND_REMOVE)) => {
                let Some(table) = get_u32(payload, 1) else {
                    break;
                };
                let mut at = 5usize;
                let Some(row) = decode_row_bytes(payload, &mut at) else {
                    break;
                };
                if at != payload.len() {
                    break; // trailing junk inside the frame
                }
                let table = TableId(table);
                pending.push(if kind == KIND_INSERT {
                    DeltaOp::Insert { table, row }
                } else {
                    DeltaOp::Remove { table, row }
                });
            }
            Some(&KIND_COMMIT) => {
                let Some(&checked) = payload.get(1) else {
                    break;
                };
                scan.units.push(CommitUnit {
                    ops: std::mem::take(&mut pending),
                    checked: checked != 0,
                });
                scan.committed_end = pos as u64;
            }
            _ => break,
        }
    }
    scan.discarded = bytes.len() as u64 - scan.committed_end;
    scan
}

/// Reads the frame at `*pos`, advancing past it; `None` on any torn or
/// corrupt framing (short header, oversize length, CRC mismatch).
pub(crate) fn next_frame<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let len = get_u32(bytes, *pos)?;
    let crc = get_u32(bytes, *pos + 4)?;
    if len > MAX_FRAME {
        return None;
    }
    let start = *pos + 8;
    let payload = bytes.get(start..start + len as usize)?;
    if crc32(payload) != crc {
        return None;
    }
    *pos = start + len as usize;
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::Value;

    fn v(s: &str) -> Option<Value> {
        Some(Value::str(s))
    }

    fn sample_ops() -> Vec<DeltaOp> {
        vec![
            DeltaOp::Insert {
                table: TableId(0),
                row: vec![v("a"), None],
            },
            DeltaOp::Remove {
                table: TableId(1),
                row: vec![Some(Value::Int(-5))],
            },
        ]
    }

    fn sample_wal() -> Vec<u8> {
        let mut wal = wal_init_bytes(2, 0xFEED);
        wal.extend_from_slice(&encode_unit(&sample_ops(), true));
        wal.extend_from_slice(&encode_unit(&[], false));
        wal
    }

    #[test]
    fn clean_wal_roundtrips() {
        let scan = scan_wal(&sample_wal());
        assert_eq!(
            scan.header,
            Some(WalHeader {
                epoch: 2,
                fingerprint: 0xFEED
            })
        );
        assert_eq!(scan.units.len(), 2);
        assert_eq!(scan.units[0].ops, sample_ops());
        assert!(scan.units[0].checked);
        assert!(scan.units[1].ops.is_empty());
        assert!(!scan.units[1].checked);
        assert_eq!(scan.discarded, 0);
        assert_eq!(scan.committed_end, sample_wal().len() as u64);
    }

    #[test]
    fn every_truncation_keeps_a_committed_prefix() {
        let wal = sample_wal();
        let full = scan_wal(&wal);
        for cut in 0..wal.len() {
            let scan = scan_wal(&wal[..cut]);
            assert!(scan.units.len() <= full.units.len());
            for (a, b) in scan.units.iter().zip(full.units.iter()) {
                assert_eq!(a, b, "cut at {cut}: prefix property violated");
            }
            assert_eq!(
                scan.committed_end + scan.discarded,
                cut as u64,
                "cut at {cut}: bytes unaccounted"
            );
        }
    }

    #[test]
    fn ops_without_commit_marker_are_discarded() {
        let mut wal = wal_init_bytes(0, 0);
        let unit = encode_unit(&sample_ops(), true);
        // Drop the trailing commit frame (its length: frame of 2 bytes).
        let commit_len = 8 + 2;
        wal.extend_from_slice(&unit[..unit.len() - commit_len]);
        let scan = scan_wal(&wal);
        assert!(scan.units.is_empty());
        assert_eq!(scan.discarded, (unit.len() - commit_len) as u64);
    }

    #[test]
    fn bit_flip_truncates_from_the_flipped_frame() {
        let wal = sample_wal();
        // Flip a byte in the second unit's commit frame payload (last 2
        // bytes of the file are the commit payload).
        let mut tampered = wal.clone();
        let n = tampered.len();
        tampered[n - 1] ^= 0x80;
        let scan = scan_wal(&tampered);
        assert_eq!(scan.units.len(), 1, "first unit survives");
        assert!(scan.discarded > 0);
    }

    #[test]
    fn bad_magic_or_header_discards_everything() {
        let scan = scan_wal(b"NOTAWAL!garbage");
        assert!(scan.header.is_none());
        assert_eq!(scan.discarded, 15);
        assert!(scan.units.is_empty());

        // Valid magic, garbage frame.
        let mut wal = WAL_MAGIC.to_vec();
        wal.extend_from_slice(&[0xFF; 20]);
        let scan = scan_wal(&wal);
        assert!(scan.header.is_none());
        assert_eq!(scan.committed_end, 0);
    }

    #[test]
    fn inflated_cell_count_is_corruption_not_allocation() {
        // A CRC-valid insert frame whose row claims far more cells than
        // its payload holds: decoding must abort at the first missing
        // cell (capacity hint bounded by the bytes remaining), and the
        // scanner treats the frame as ending the committed region.
        let mut payload = vec![KIND_INSERT];
        put_u32(&mut payload, 0); // table id
        put_u32(&mut payload, 105); // claims 105 cells (<= payload len)...
        payload.extend_from_slice(&[0x00; 100]); // ...but holds only 100
        let mut wal = wal_init_bytes(0, 0);
        wal.extend_from_slice(&frame(&payload));
        let scan = scan_wal(&wal);
        assert!(scan.units.is_empty());
        assert_eq!(scan.committed_end, wal_init_bytes(0, 0).len() as u64);
        assert!(scan.discarded > 0);
    }

    #[test]
    fn oversize_length_prefix_is_corruption_not_allocation() {
        let mut wal = wal_init_bytes(0, 0);
        wal.extend_from_slice(&(u32::MAX).to_le_bytes());
        wal.extend_from_slice(&[0u8; 12]);
        let scan = scan_wal(&wal);
        assert_eq!(scan.units.len(), 0);
        assert_eq!(scan.committed_end, wal_init_bytes(0, 0).len() as u64);
    }
}

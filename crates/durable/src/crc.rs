//! Hand-rolled CRC32 (IEEE 802.3 polynomial, reflected), zero-dep.
//!
//! Every WAL frame and every checkpoint snapshot carries a CRC32 over its
//! payload; recovery treats a mismatch as the start of the torn tail.
//! The table-driven form costs one 1 KiB static and one lookup per byte.

/// The reflected IEEE polynomial used by zlib, PNG, Ethernet.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut b = 0;
        while b < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            b += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 of `data` (IEEE, reflected, init/xorout `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &byte in data {
        c = TABLE[((c ^ byte as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors (same values zlib's `crc32()` produces).
    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"RIDL* write-ahead log frame payload".to_vec();
        let c0 = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), c0, "flip at byte {i} bit {bit}");
            }
        }
    }
}

//! The on-disk store protocol: file layout, the checkpoint/truncation
//! dance, and the crash-safe read path.
//!
//! A store directory holds at most three files:
//!
//! * `wal.log` — magic + header frame (epoch, schema fingerprint) +
//!   committed units ([`crate::wal`]);
//! * `checkpoint.snap` — the latest snapshot ([`crate::snapshot`]);
//! * `checkpoint.prev` — the previous snapshot, kept as the fallback for
//!   a crash between the two checkpoint renames (or at-rest corruption
//!   of `checkpoint.snap`).
//!
//! **Checkpoint protocol** (each step one syscall; crash-safe at every
//! boundary): write the new snapshot to `checkpoint.tmp`, fsync it,
//! rename `snap`→`prev`, rename `tmp`→`snap`, fsync the directory (the
//! renames are not power-loss-durable until then), then reset the WAL by
//! writing `wal.tmp` (new epoch header), fsyncing, renaming over
//! `wal.log`, and fsyncing the directory again. The epoch stitches the pieces back together after a crash:
//! a WAL whose header epoch is *below* the chosen snapshot's is stale
//! (its units are already inside the snapshot) and is discarded; an
//! epoch *above* means the snapshot the WAL needs is gone — unrecoverable
//! without risking replaying ops against the wrong base state, so it is
//! reported as corruption rather than guessed at.

use std::io;
use std::path::{Path, PathBuf};

use ridl_relational::RelState;

use crate::io::DurableIo;
use crate::snapshot::{decode_snapshot, encode_snapshot, CorruptError, Snapshot};
use crate::wal::{scan_wal, wal_init_bytes, WalScan};

/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";
/// Latest checkpoint snapshot.
pub const SNAP_FILE: &str = "checkpoint.snap";
/// Previous checkpoint snapshot (crash/corruption fallback).
pub const SNAP_PREV_FILE: &str = "checkpoint.prev";
const SNAP_TMP_FILE: &str = "checkpoint.tmp";
const WAL_TMP_FILE: &str = "wal.tmp";

/// Joined path of a store file.
pub fn store_path(dir: &Path, file: &str) -> PathBuf {
    dir.join(file)
}

/// Which durable state a failed checkpoint left behind.
#[derive(Debug)]
pub enum CheckpointFailure {
    /// The new snapshot never became current: the store still holds the
    /// pre-checkpoint state and the WAL remains appendable. The
    /// checkpoint simply did not happen.
    SnapshotWrite(io::Error),
    /// The new snapshot is durable but the WAL reset failed: the old log
    /// is now stale (epoch below the snapshot's). Recovery handles this
    /// cleanly, but the live process must stop appending to the old log.
    WalReset(io::Error),
}

impl std::fmt::Display for CheckpointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointFailure::SnapshotWrite(e) => write!(f, "checkpoint snapshot write: {e}"),
            CheckpointFailure::WalReset(e) => write!(f, "WAL reset after checkpoint: {e}"),
        }
    }
}

/// Writes a checkpoint of `state` with `epoch`, then resets the WAL to
/// an empty log with the same epoch. On success the old WAL contents are
/// gone (log truncation). Returns the byte length of the fresh WAL.
pub fn write_checkpoint(
    io: &dyn DurableIo,
    dir: &Path,
    epoch: u64,
    fingerprint: u64,
    state: &RelState,
) -> Result<u64, CheckpointFailure> {
    let tmp = store_path(dir, SNAP_TMP_FILE);
    let snap = store_path(dir, SNAP_FILE);
    let prev = store_path(dir, SNAP_PREV_FILE);
    let enc = encode_snapshot(epoch, fingerprint, state);
    let snap_stage = (|| {
        io.write_new(&tmp, enc.as_bytes())?;
        io.sync(&tmp)?;
        if io.exists(&snap) {
            io.rename(&snap, &prev)?;
        }
        io.rename(&tmp, &snap)
    })();
    snap_stage.map_err(CheckpointFailure::SnapshotWrite)?;
    // The renames are only power-loss-durable once the directory itself
    // is synced. Past the final rename the new snapshot must be assumed
    // current, so a directory-sync failure is a WAL-stage failure (the
    // caller poisons appends) — never a retryable "nothing happened".
    io.sync_dir(dir).map_err(CheckpointFailure::WalReset)?;
    reset_wal(io, dir, epoch, fingerprint).map_err(CheckpointFailure::WalReset)
}

/// Atomically replaces the WAL with a fresh one carrying `epoch`.
/// Returns its byte length.
pub fn reset_wal(io: &dyn DurableIo, dir: &Path, epoch: u64, fingerprint: u64) -> io::Result<u64> {
    let tmp = store_path(dir, WAL_TMP_FILE);
    let wal = store_path(dir, WAL_FILE);
    let bytes = wal_init_bytes(epoch, fingerprint);
    io.write_new(&tmp, &bytes)?;
    io.sync(&tmp)?;
    io.rename(&tmp, &wal)?;
    io.sync_dir(dir)?;
    Ok(bytes.len() as u64)
}

/// Everything recovery needs, read and cross-checked from a store
/// directory.
#[derive(Debug, Default)]
pub struct StoreScan {
    /// The chosen snapshot and the file it came from, if any checkpoint
    /// was usable. `None` means the store starts from the empty state.
    pub snapshot: Option<(Snapshot, &'static str)>,
    /// Snapshot files present but rejected (CRC/parse failure).
    pub snapshots_rejected: usize,
    /// The WAL scan (committed units already filtered to the live
    /// epoch; stale units are dropped and counted below).
    pub wal: WalScan,
    /// Total WAL bytes on disk.
    pub wal_len: u64,
    /// True when the WAL's epoch predates the snapshot — its units were
    /// already absorbed by the checkpoint and were discarded wholesale.
    pub stale_wal: bool,
    /// True when no WAL file existed (fresh directory).
    pub fresh: bool,
}

/// Reads and validates a store directory. I/O errors propagate;
/// cross-file inconsistencies that would force replaying ops against the
/// wrong base state come back as [`CorruptError`].
pub fn read_store(io: &dyn DurableIo, dir: &Path) -> io::Result<Result<StoreScan, CorruptError>> {
    let mut out = StoreScan::default();
    let mut candidates: Vec<(Snapshot, &'static str)> = Vec::new();
    for file in [SNAP_FILE, SNAP_PREV_FILE] {
        let path = store_path(dir, file);
        if !io.exists(&path) {
            continue;
        }
        let bytes = io.read(&path)?;
        match std::str::from_utf8(&bytes)
            .map_err(|_| CorruptError("snapshot: not UTF-8".into()))
            .and_then(decode_snapshot)
        {
            Ok(snap) => candidates.push((snap, file)),
            Err(_) => out.snapshots_rejected += 1,
        }
    }

    let wal_path = store_path(dir, WAL_FILE);
    let wal_bytes = if io.exists(&wal_path) {
        io.read(&wal_path)?
    } else {
        out.fresh = true;
        Vec::new()
    };
    out.wal_len = wal_bytes.len() as u64;
    out.wal = scan_wal(&wal_bytes);
    let wal_epoch = out.wal.header.map(|h| h.epoch);

    // The newest valid snapshot decides: `prev` only exists as the
    // fallback for a crash between the checkpoint renames, and in that
    // window the WAL's epoch still matches it. A WAL *newer* than the
    // newest readable snapshot cannot be replayed against an older base
    // without corrupting the state, so it is reported, not guessed at.
    if let Some((snap, file)) = candidates.into_iter().next() {
        let usable = match wal_epoch {
            // No readable WAL header: any valid snapshot is the best
            // recoverable state (the log tail counts as discarded).
            None => true,
            Some(we) => we <= snap.epoch,
        };
        if !usable {
            return Ok(Err(CorruptError(format!(
                "WAL epoch {} requires a newer checkpoint than {file} (epoch {})",
                wal_epoch.unwrap_or(0),
                snap.epoch
            ))));
        }
        if wal_epoch.is_some_and(|we| we < snap.epoch) {
            out.stale_wal = true;
            out.wal.units.clear();
        }
        out.snapshot = Some((snap, file));
    }
    if out.snapshot.is_none() {
        if let Some(we) = wal_epoch {
            if we != 0 {
                return Ok(Err(CorruptError(format!(
                    "WAL epoch {we} but no checkpoint found"
                ))));
            }
        }
        if out.snapshots_rejected > 0 && out.wal.header.is_some() {
            // A WAL exists for a checkpointed epoch we cannot read.
            let we = wal_epoch.unwrap_or(0);
            if we != 0 {
                return Ok(Err(CorruptError(format!(
                    "all checkpoints unreadable but WAL epoch {we} requires one"
                ))));
            }
        }
    }
    Ok(Ok(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyIo;
    use crate::wal::encode_unit;
    use ridl_brm::Value;
    use ridl_relational::{DeltaOp, TableId};

    fn dir() -> PathBuf {
        PathBuf::from("/store")
    }

    fn state_one_row() -> RelState {
        let mut st = RelState::with_tables(1);
        st.insert(TableId(0), vec![Some(Value::str("x"))]);
        st
    }

    #[test]
    fn checkpoint_then_read_roundtrips_and_truncates() {
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 0, 7).unwrap();
        io.append(
            &store_path(&dir(), WAL_FILE),
            &encode_unit(
                &[DeltaOp::Insert {
                    table: TableId(0),
                    row: vec![Some(Value::str("x"))],
                }],
                true,
            ),
        )
        .unwrap();
        io.sync(&store_path(&dir(), WAL_FILE)).unwrap();

        let scan = read_store(&io, &dir()).unwrap().unwrap();
        assert_eq!(scan.wal.units.len(), 1);
        assert!(scan.snapshot.is_none());

        write_checkpoint(&io, &dir(), 1, 7, &state_one_row()).unwrap();
        let scan = read_store(&io, &dir()).unwrap().unwrap();
        let (snap, file) = scan.snapshot.expect("checkpoint present");
        assert_eq!(file, SNAP_FILE);
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.state, state_one_row());
        assert!(scan.wal.units.is_empty(), "WAL truncated");
        assert!(!scan.stale_wal);
    }

    #[test]
    fn stale_wal_is_discarded_not_replayed() {
        let io = FaultyIo::new();
        // Simulate a crash after the snapshot renames but before the WAL
        // reset: snapshot at epoch 1, WAL still at epoch 0 with a unit.
        reset_wal(&io, &dir(), 0, 7).unwrap();
        io.append(
            &store_path(&dir(), WAL_FILE),
            &encode_unit(
                &[DeltaOp::Insert {
                    table: TableId(0),
                    row: vec![Some(Value::str("old"))],
                }],
                true,
            ),
        )
        .unwrap();
        let snap = encode_snapshot(1, 7, &state_one_row());
        io.poke(&store_path(&dir(), SNAP_FILE), snap.into_bytes());

        let scan = read_store(&io, &dir()).unwrap().unwrap();
        assert!(scan.stale_wal);
        assert!(scan.wal.units.is_empty());
        assert_eq!(scan.snapshot.unwrap().0.epoch, 1);
    }

    #[test]
    fn corrupt_snap_falls_back_to_prev_when_epochs_allow() {
        let io = FaultyIo::new();
        let prev = encode_snapshot(1, 7, &state_one_row());
        io.poke(&store_path(&dir(), SNAP_PREV_FILE), prev.into_bytes());
        io.poke(&store_path(&dir(), SNAP_FILE), b"garbage".to_vec());
        reset_wal(&io, &dir(), 1, 7).unwrap();
        let scan = read_store(&io, &dir()).unwrap().unwrap();
        assert_eq!(scan.snapshots_rejected, 1);
        assert_eq!(scan.snapshot.unwrap().1, SNAP_PREV_FILE);
    }

    #[test]
    fn wal_ahead_of_every_checkpoint_is_corruption() {
        let io = FaultyIo::new();
        let prev = encode_snapshot(1, 7, &state_one_row());
        io.poke(&store_path(&dir(), SNAP_PREV_FILE), prev.into_bytes());
        reset_wal(&io, &dir(), 2, 7).unwrap();
        assert!(read_store(&io, &dir()).unwrap().is_err());

        // Same with no checkpoint at all.
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 3, 7).unwrap();
        assert!(read_store(&io, &dir()).unwrap().is_err());
    }

    #[test]
    fn fresh_directory_scans_empty() {
        let io = FaultyIo::new();
        let scan = read_store(&io, &dir()).unwrap().unwrap();
        assert!(scan.fresh);
        assert!(scan.snapshot.is_none());
        assert!(scan.wal.units.is_empty());
    }
}

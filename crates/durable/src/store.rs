//! The on-disk store protocol: file layout, the checkpoint/truncation
//! dance, and the crash-safe read path.
//!
//! A store directory holds:
//!
//! * `wal.log` — magic + header frame (epoch, schema fingerprint) +
//!   committed units ([`crate::wal`]);
//! * `checkpoint.snap` — the latest **base** snapshot: the binary paged
//!   v2 format ([`crate::pagesnap`]) for everything this code writes, or
//!   the legacy v1 text format ([`crate::snapshot`]) in a store last
//!   written by an older build (read support kept for migration);
//! * `checkpoint.prev` — the previous base, kept as the fallback for a
//!   crash between the two checkpoint renames (or at-rest corruption of
//!   `checkpoint.snap`);
//! * `checkpoint.d1`, `checkpoint.d2`, … — the **delta chain**: extent
//!   deltas layered over the base, densely numbered from 1.
//!
//! **Base checkpoint protocol** (each step one syscall; crash-safe at
//! every boundary): write the new base to `checkpoint.tmp`, fsync it,
//! rename `snap`→`prev`, rename `tmp`→`snap`, fsync the directory (the
//! renames are not power-loss-durable until then), garbage-collect the
//! now-superseded delta files (best-effort — see below), then reset the
//! WAL by writing `wal.tmp` (new epoch header), fsyncing, renaming over
//! `wal.log`, and fsyncing the directory again.
//!
//! **Delta checkpoint protocol**: write the delta to `checkpoint.tmp`,
//! fsync, rename `tmp`→`checkpoint.d{seq}`, fsync the directory, reset
//! the WAL. The rename is the atomic commit point.
//!
//! The **epoch** stitches the pieces back together after a crash. Every
//! checkpoint — base or delta — advances the epoch by exactly one, so a
//! chain is self-describing: `checkpoint.d{k}` belongs to the current
//! chain iff its epoch is exactly `base.epoch + k` (and its fingerprint
//! and extent geometry match the base). Epochs only ever move forward,
//! so a delta file left behind by an interrupted garbage-collection can
//! never satisfy that equation against a newer base — stale files are
//! inert, which is what makes GC safe to run best-effort (failures and
//! crashes mid-GC leave orphans, not ambiguity). A WAL whose header
//! epoch is *below* the chain head is stale (its units are already
//! inside the chain) and is discarded; an epoch *above* means the
//! checkpoint the WAL needs is gone — unrecoverable without risking
//! replaying ops against the wrong base state, so it is reported as
//! corruption rather than guessed at.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

use ridl_relational::RelState;

use crate::io::DurableIo;
use crate::pagesnap::{
    decode_paged, encode_base, encode_delta, merge_chain, ExtentGeometry, PagedSnap, SnapFlavor,
    SNAP2_MAGIC,
};
use crate::snapshot::{decode_snapshot, CorruptError, Snapshot};
use crate::wal::{scan_wal, wal_init_bytes, WalScan};

/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";
/// Latest base checkpoint snapshot.
pub const SNAP_FILE: &str = "checkpoint.snap";
/// Previous base checkpoint snapshot (crash/corruption fallback).
pub const SNAP_PREV_FILE: &str = "checkpoint.prev";
/// Staging file for both base and delta checkpoints. Never meaningful at
/// rest: [`read_store`] deletes an orphaned one left by a crash or a
/// failed checkpoint before doing anything else.
pub const SNAP_TMP_FILE: &str = "checkpoint.tmp";
/// Staging file for WAL resets — same never-meaningful-at-rest rule as
/// [`SNAP_TMP_FILE`].
pub const WAL_TMP_FILE: &str = "wal.tmp";

/// How far past the last existing delta file the probe looks for
/// stragglers (orphans from an interrupted GC separated by a gap).
pub(crate) const DELTA_PROBE_WINDOW: u32 = 16;

/// Name of the `seq`-th delta file in a chain (1-based).
pub fn delta_file(seq: u32) -> String {
    format!("checkpoint.d{seq}")
}

/// Joined path of a store file.
pub fn store_path(dir: &Path, file: &str) -> PathBuf {
    dir.join(file)
}

/// Whether a checkpoint rewrote the whole state or only dirty extents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckpointKind {
    /// Full base snapshot: every extent of every table.
    Base,
    /// Incremental delta: only the extents dirtied since the last epoch.
    Delta,
}

/// Size accounting for one checkpoint, for benchmarks and the engine's
/// `last_checkpoint_stats`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CheckpointStats {
    /// Base or delta.
    pub kind: CheckpointKind,
    /// Snapshot bytes written (magic + frames).
    pub bytes: u64,
    /// Extents carried by the file.
    pub extents_written: u64,
    /// Extents in the chain geometry (denominator for churn ratios).
    pub extents_total: u64,
    /// Page frames written.
    pub pages: u64,
}

/// What a successful (or snapshot-durable) checkpoint produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckpointOutcome {
    /// Byte length of the fresh WAL. Zero when this outcome rides inside
    /// [`CheckpointFailure::WalReset`] — the reset did not happen.
    pub wal_len: u64,
    /// Size accounting.
    pub stats: CheckpointStats,
    /// The chain geometry: freshly frozen for a base, echoed for a
    /// delta. The engine tracks dirty extents against this.
    pub geometry: ExtentGeometry,
}

/// What to write: a full base or an incremental delta.
pub enum CheckpointPlan<'a> {
    /// Rewrite everything and freeze a new geometry sized to the state.
    Base,
    /// Rewrite only `dirty` extents under the frozen `geometry`, as
    /// `checkpoint.d{seq}` (1-based; `seq` = chain length so far + 1).
    Delta {
        /// The geometry frozen by the chain's base.
        geometry: &'a ExtentGeometry,
        /// Dirty `(table, extent)` pairs since the previous checkpoint.
        dirty: &'a BTreeSet<(u32, u32)>,
        /// Position this delta takes in the chain.
        seq: u32,
    },
}

/// Which durable state a failed checkpoint left behind.
#[derive(Debug)]
pub enum CheckpointFailure {
    /// The new snapshot never became current: the store still holds the
    /// pre-checkpoint state and the WAL remains appendable. The
    /// checkpoint simply did not happen. (A `checkpoint.tmp` may be left
    /// behind; [`read_store`] deletes it.)
    SnapshotWrite(io::Error),
    /// The new snapshot is durable but the WAL reset failed: the old log
    /// is now stale (epoch below the chain head). Recovery handles this
    /// cleanly, but the live process must stop appending to the old log.
    /// Carries the outcome so the caller can still account for the
    /// now-current snapshot.
    WalReset {
        /// The directory-sync or WAL-reset error.
        error: io::Error,
        /// The durable snapshot's accounting (`wal_len` is zero).
        outcome: CheckpointOutcome,
    },
}

impl std::fmt::Display for CheckpointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointFailure::SnapshotWrite(e) => write!(f, "checkpoint snapshot write: {e}"),
            CheckpointFailure::WalReset { error, .. } => {
                write!(f, "WAL reset after checkpoint: {error}")
            }
        }
    }
}

/// Probes `checkpoint.d1`, `checkpoint.d2`, … and returns the sequence
/// numbers that exist, tolerating gaps up to [`DELTA_PROBE_WINDOW`]
/// (orphans from an interrupted GC).
pub(crate) fn probe_deltas(io: &dyn DurableIo, dir: &Path) -> Vec<u32> {
    let mut present = Vec::new();
    let mut seq = 1u32;
    let mut misses = 0u32;
    while misses < DELTA_PROBE_WINDOW {
        if io.exists(&store_path(dir, &delta_file(seq))) {
            present.push(seq);
            misses = 0;
        } else {
            misses += 1;
        }
        seq += 1;
    }
    present
}

/// Writes a checkpoint of `state` at `epoch` per `plan`, then resets the
/// WAL to an empty log with the same epoch. On success the old WAL
/// contents are gone (log truncation).
pub fn write_checkpoint(
    io: &dyn DurableIo,
    dir: &Path,
    epoch: u64,
    fingerprint: u64,
    state: &RelState,
    plan: CheckpointPlan<'_>,
) -> Result<CheckpointOutcome, CheckpointFailure> {
    let tmp = store_path(dir, SNAP_TMP_FILE);
    let (enc, geometry, snap_stats, kind, dest) = {
        let mut span = ridl_obs::enter("ckpt.encode");
        let out = match plan {
            CheckpointPlan::Base => {
                let (enc, geometry, stats) = encode_base(epoch, fingerprint, state);
                (
                    enc,
                    geometry,
                    stats,
                    CheckpointKind::Base,
                    SNAP_FILE.to_string(),
                )
            }
            CheckpointPlan::Delta {
                geometry,
                dirty,
                seq,
            } => {
                let (enc, stats) = encode_delta(epoch, fingerprint, state, geometry, dirty);
                (
                    enc,
                    geometry.clone(),
                    stats,
                    CheckpointKind::Delta,
                    delta_file(seq),
                )
            }
        };
        if span.is_recording() {
            span.attr("bytes", out.0.len());
            span.attr("extents", out.2.extents);
        }
        out
    };
    let mut outcome = CheckpointOutcome {
        wal_len: 0,
        stats: CheckpointStats {
            kind,
            bytes: snap_stats.bytes,
            extents_written: snap_stats.extents,
            extents_total: geometry.total_extents(),
            pages: snap_stats.pages,
        },
        geometry,
    };
    let dest_path = store_path(dir, &dest);
    let snap_stage = (|| {
        {
            let _tmp_span = ridl_obs::enter("ckpt.tmp_write");
            io.write_new(&tmp, &enc)?;
            io.sync(&tmp)?;
        }
        let _rename_span = ridl_obs::enter("ckpt.rename");
        if kind == CheckpointKind::Base {
            // Rotate the old base out of the way first; skip when a
            // previous failure already consumed `snap` (rename snap→prev
            // succeeded, rename tmp→snap did not — `prev` then still
            // holds the WAL's base and must not be clobbered).
            let snap = store_path(dir, SNAP_FILE);
            if io.exists(&snap) {
                io.rename(&snap, &store_path(dir, SNAP_PREV_FILE))?;
            }
        }
        io.rename(&tmp, &dest_path)
    })();
    snap_stage.map_err(CheckpointFailure::SnapshotWrite)?;
    // The renames are only power-loss-durable once the directory itself
    // is synced. Past the final rename the new snapshot must be assumed
    // current, so a directory-sync failure is a WAL-stage failure (the
    // caller poisons appends) — never a retryable "nothing happened".
    {
        let _dir_span = ridl_obs::enter("ckpt.dir_fsync");
        if let Err(error) = io.sync_dir(dir) {
            return Err(CheckpointFailure::WalReset { error, outcome });
        }
    }
    if kind == CheckpointKind::Base {
        // The new base supersedes the whole old delta chain. Stale
        // deltas can never chain onto the new base (their epochs are in
        // the past), so this is pure hygiene: ignore failures, and a
        // crash mid-way just leaves orphans for the next GC.
        let superseded = probe_deltas(io, dir);
        if !superseded.is_empty() {
            ridl_obs::journal::record(
                ridl_obs::Severity::Info,
                "ckpt.collapse",
                vec![("epoch", epoch.into()), ("deltas", superseded.len().into())],
            );
        }
        for seq in superseded {
            let _ = io.remove(&store_path(dir, &delta_file(seq)));
        }
    }
    let _reset_span = ridl_obs::enter("ckpt.wal_reset");
    match reset_wal(io, dir, epoch, fingerprint) {
        Ok(len) => {
            outcome.wal_len = len;
            Ok(outcome)
        }
        Err(error) => Err(CheckpointFailure::WalReset { error, outcome }),
    }
}

/// Atomically replaces the WAL with a fresh one carrying `epoch`.
/// Returns its byte length.
pub fn reset_wal(io: &dyn DurableIo, dir: &Path, epoch: u64, fingerprint: u64) -> io::Result<u64> {
    let tmp = store_path(dir, WAL_TMP_FILE);
    let wal = store_path(dir, WAL_FILE);
    let bytes = wal_init_bytes(epoch, fingerprint);
    io.write_new(&tmp, &bytes)?;
    io.sync(&tmp)?;
    io.rename(&tmp, &wal)?;
    io.sync_dir(dir)?;
    Ok(bytes.len() as u64)
}

/// Everything recovery needs, read and cross-checked from a store
/// directory.
#[derive(Debug, Default)]
pub struct StoreScan {
    /// The chosen checkpoint state (base merged with its delta chain for
    /// v2) and the base file it came from, if any checkpoint was usable.
    /// `None` means the store starts from the empty state. The epoch is
    /// the chain head's (base epoch + deltas merged).
    pub snapshot: Option<(Snapshot, &'static str)>,
    /// Format of the chosen base: 0 none, 1 text (v1), 2 paged (v2).
    pub snapshot_format: u8,
    /// Delta files merged on top of the base.
    pub deltas_merged: usize,
    /// The chain's extent geometry (v2 only) — the engine continues the
    /// delta chain against this.
    pub geometry: Option<ExtentGeometry>,
    /// Snapshot/delta files present but rejected (CRC/parse failure).
    pub snapshots_rejected: usize,
    /// The WAL scan (committed units already filtered to the live
    /// epoch; stale units are dropped and counted below).
    pub wal: WalScan,
    /// Total WAL bytes on disk.
    pub wal_len: u64,
    /// True when the WAL's epoch predates the chain head — its units were
    /// already absorbed by a checkpoint and were discarded wholesale.
    pub stale_wal: bool,
    /// True when no WAL file existed (fresh directory).
    pub fresh: bool,
}

/// A decoded base candidate: either format, normalized for selection.
enum BaseCandidate {
    Text(Snapshot),
    Paged(PagedSnap),
}

/// Decodes `bytes` as a base checkpoint in whichever format it carries.
/// A v2 file that decodes but is not a base flavor is rejected — only
/// `checkpoint.d*` files may be deltas.
fn decode_base(bytes: &[u8]) -> Result<BaseCandidate, CorruptError> {
    if bytes.starts_with(SNAP2_MAGIC) {
        let paged = decode_paged(bytes)?;
        if paged.flavor != SnapFlavor::Base {
            return Err(CorruptError("base checkpoint file holds a delta".into()));
        }
        return Ok(BaseCandidate::Paged(paged));
    }
    std::str::from_utf8(bytes)
        .map_err(|_| CorruptError("snapshot: not UTF-8".into()))
        .and_then(decode_snapshot)
        .map(BaseCandidate::Text)
}

/// Reads and validates a store directory. I/O errors propagate;
/// cross-file inconsistencies that would force replaying ops against the
/// wrong base state come back as [`CorruptError`].
///
/// Besides reading, this performs the store's **repair hygiene**: an
/// orphaned `checkpoint.tmp`/`wal.tmp` (crash or failed checkpoint
/// mid-write) is deleted up front, and on a successful scan, delta files
/// that did not chain onto the chosen base — plus a corrupt
/// `checkpoint.snap` when `checkpoint.prev` was chosen — are removed so
/// a later checkpoint cannot rotate garbage into the fallback slot.
pub fn read_store(io: &dyn DurableIo, dir: &Path) -> io::Result<Result<StoreScan, CorruptError>> {
    // A tmp file is never meaningful at rest: it is either a fully
    // renamed checkpoint (then it no longer has this name) or an
    // abandoned write. Delete it so nothing downstream can confuse it
    // for real state, and so a retried checkpoint starts clean.
    for tmp in [SNAP_TMP_FILE, WAL_TMP_FILE] {
        let path = store_path(dir, tmp);
        if io.exists(&path) {
            io.remove(&path)?;
        }
    }

    let mut out = StoreScan::default();
    let mut candidates: Vec<(BaseCandidate, &'static str)> = Vec::new();
    let mut snap_rejected = false;
    for file in [SNAP_FILE, SNAP_PREV_FILE] {
        let path = store_path(dir, file);
        if !io.exists(&path) {
            continue;
        }
        let bytes = io.read(&path)?;
        match decode_base(&bytes) {
            Ok(base) => candidates.push((base, file)),
            Err(_) => {
                out.snapshots_rejected += 1;
                if file == SNAP_FILE {
                    snap_rejected = true;
                }
            }
        }
    }

    // The delta chain, decoded up front (needed for candidate selection
    // below). Decode failures end the chain at that link.
    let delta_seqs = probe_deltas(io, dir);
    let mut deltas: Vec<(u32, PagedSnap)> = Vec::new();
    for seq in &delta_seqs {
        let bytes = io.read(&store_path(dir, &delta_file(*seq)))?;
        match decode_paged(&bytes) {
            Ok(p) if p.flavor == SnapFlavor::Delta => deltas.push((*seq, p)),
            _ => out.snapshots_rejected += 1,
        }
    }

    let wal_path = store_path(dir, WAL_FILE);
    let wal_bytes = if io.exists(&wal_path) {
        io.read(&wal_path)?
    } else {
        out.fresh = true;
        Vec::new()
    };
    out.wal_len = wal_bytes.len() as u64;
    out.wal = scan_wal(&wal_bytes);
    let wal_epoch = out.wal.header.map(|h| h.epoch);

    // The newest valid base decides: `prev` only exists as the fallback
    // for a crash between the checkpoint renames, and in that window the
    // WAL's epoch still matches its chain. A WAL *newer* than the
    // newest readable chain head cannot be replayed against an older
    // base without corrupting the state, so it is reported, not guessed
    // at.
    let mut chained: Vec<u32> = Vec::new();
    if let Some((base, file)) = candidates.into_iter().next() {
        // Link deltas onto the base: `checkpoint.d{k}` belongs iff its
        // epoch is exactly base.epoch + k and fingerprint + geometry
        // match. Deltas must be dense from 1; the first gap, epoch skip,
        // or mismatch ends the chain (later files are orphans).
        let snapshot = match &base {
            BaseCandidate::Paged(paged) => {
                let mut chain: Vec<&PagedSnap> = Vec::new();
                for (seq, d) in &deltas {
                    let position = chain.len() as u32 + 1;
                    if *seq != position
                        || d.epoch != paged.epoch + position as u64
                        || d.fingerprint != paged.fingerprint
                        || d.geometry != paged.geometry
                    {
                        break;
                    }
                    chain.push(d);
                    chained.push(*seq);
                }
                let head_epoch = paged.epoch + chain.len() as u64;
                let state = match merge_chain(paged, &chain) {
                    Ok(state) => state,
                    Err(e) => return Ok(Err(e)),
                };
                out.snapshot_format = 2;
                out.deltas_merged = chain.len();
                out.geometry = Some(paged.geometry.clone());
                Snapshot {
                    epoch: head_epoch,
                    fingerprint: paged.fingerprint,
                    state,
                }
            }
            BaseCandidate::Text(snap) => {
                out.snapshot_format = 1;
                snap.clone()
            }
        };
        let usable = match wal_epoch {
            // No readable WAL header: any valid chain is the best
            // recoverable state (the log tail counts as discarded).
            None => true,
            Some(we) => we <= snapshot.epoch,
        };
        if !usable {
            return Ok(Err(CorruptError(format!(
                "WAL epoch {} requires a newer checkpoint than {file} (chain head epoch {})",
                wal_epoch.unwrap_or(0),
                snapshot.epoch
            ))));
        }
        if wal_epoch.is_some_and(|we| we < snapshot.epoch) {
            out.stale_wal = true;
            out.wal.units.clear();
        }
        out.snapshot = Some((snapshot, file));

        // Repair hygiene, only once the scan is known-good. Orphan
        // deltas can never chain again (epochs are monotone); a corrupt
        // `snap` must not survive to be rotated into `prev` by the next
        // base checkpoint (it would evict the good fallback).
        for seq in &delta_seqs {
            if !chained.contains(seq) {
                let _ = io.remove(&store_path(dir, &delta_file(*seq)));
            }
        }
        if snap_rejected && file == SNAP_PREV_FILE {
            let _ = io.remove(&store_path(dir, SNAP_FILE));
        }
    }
    if out.snapshot.is_none() {
        if let Some(we) = wal_epoch {
            if we != 0 {
                return Ok(Err(CorruptError(format!(
                    "WAL epoch {we} but no checkpoint found"
                ))));
            }
        }
        if out.snapshots_rejected > 0 && out.wal.header.is_some() {
            // A WAL exists for a checkpointed epoch we cannot read.
            let we = wal_epoch.unwrap_or(0);
            if we != 0 {
                return Ok(Err(CorruptError(format!(
                    "all checkpoints unreadable but WAL epoch {we} requires one"
                ))));
            }
        }
    }
    Ok(Ok(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyIo;
    use crate::snapshot::encode_snapshot;
    use crate::wal::encode_unit;
    use ridl_brm::Value;
    use ridl_relational::{DeltaOp, TableId};

    fn dir() -> PathBuf {
        PathBuf::from("/store")
    }

    fn state_one_row() -> RelState {
        let mut st = RelState::with_tables(1);
        st.insert(TableId(0), vec![Some(Value::str("x"))]);
        st
    }

    fn append_insert(io: &FaultyIo, text: &str) {
        io.append(
            &store_path(&dir(), WAL_FILE),
            &encode_unit(
                &[DeltaOp::Insert {
                    table: TableId(0),
                    row: vec![Some(Value::str(text))],
                }],
                true,
            ),
        )
        .unwrap();
        io.sync(&store_path(&dir(), WAL_FILE)).unwrap();
    }

    #[test]
    fn checkpoint_then_read_roundtrips_and_truncates() {
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 0, 7).unwrap();
        append_insert(&io, "x");

        let scan = read_store(&io, &dir()).unwrap().unwrap();
        assert_eq!(scan.wal.units.len(), 1);
        assert!(scan.snapshot.is_none());
        assert_eq!(scan.snapshot_format, 0);

        let outcome =
            write_checkpoint(&io, &dir(), 1, 7, &state_one_row(), CheckpointPlan::Base).unwrap();
        assert_eq!(outcome.stats.kind, CheckpointKind::Base);
        assert_eq!(outcome.stats.extents_written, outcome.stats.extents_total);
        let scan = read_store(&io, &dir()).unwrap().unwrap();
        let (snap, file) = scan.snapshot.expect("checkpoint present");
        assert_eq!(file, SNAP_FILE);
        assert_eq!(scan.snapshot_format, 2);
        assert_eq!(scan.geometry.as_ref(), Some(&outcome.geometry));
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.state, state_one_row());
        assert!(scan.wal.units.is_empty(), "WAL truncated");
        assert!(!scan.stale_wal);
    }

    #[test]
    fn delta_chain_merges_and_advances_epoch() {
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 0, 7).unwrap();
        let mut st = state_one_row();
        let outcome = write_checkpoint(&io, &dir(), 1, 7, &st, CheckpointPlan::Base).unwrap();
        let geometry = outcome.geometry;

        // Two delta checkpoints, each changing one row.
        for (seq, name) in [(1u32, "y"), (2u32, "z")] {
            let row = vec![Some(Value::str(name))];
            let dirty: BTreeSet<_> = [(0u32, geometry.extent_of(0, &row))].into();
            st.insert(TableId(0), row);
            let out = write_checkpoint(
                &io,
                &dir(),
                1 + seq as u64,
                7,
                &st,
                CheckpointPlan::Delta {
                    geometry: &geometry,
                    dirty: &dirty,
                    seq,
                },
            )
            .unwrap();
            assert_eq!(out.stats.kind, CheckpointKind::Delta);
            assert!(io.exists(&store_path(&dir(), &delta_file(seq))));
        }

        let scan = read_store(&io, &dir()).unwrap().unwrap();
        let (snap, _) = scan.snapshot.unwrap();
        assert_eq!(snap.epoch, 3, "chain head = base 1 + two deltas");
        assert_eq!(snap.state, st);
        assert_eq!(scan.deltas_merged, 2);
        assert_eq!(scan.snapshot_format, 2);
        assert!(scan.wal.units.is_empty());
    }

    #[test]
    fn base_checkpoint_garbage_collects_the_old_chain() {
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 0, 7).unwrap();
        let mut st = state_one_row();
        let outcome = write_checkpoint(&io, &dir(), 1, 7, &st, CheckpointPlan::Base).unwrap();
        let row = vec![Some(Value::str("y"))];
        let dirty: BTreeSet<_> = [(0u32, outcome.geometry.extent_of(0, &row))].into();
        st.insert(TableId(0), row);
        write_checkpoint(
            &io,
            &dir(),
            2,
            7,
            &st,
            CheckpointPlan::Delta {
                geometry: &outcome.geometry,
                dirty: &dirty,
                seq: 1,
            },
        )
        .unwrap();
        assert!(io.exists(&store_path(&dir(), &delta_file(1))));

        write_checkpoint(&io, &dir(), 3, 7, &st, CheckpointPlan::Base).unwrap();
        assert!(
            !io.exists(&store_path(&dir(), &delta_file(1))),
            "old delta GC'd by the new base"
        );
        let scan = read_store(&io, &dir()).unwrap().unwrap();
        assert_eq!(scan.snapshot.unwrap().0.epoch, 3);
        assert_eq!(scan.deltas_merged, 0);
    }

    #[test]
    fn stale_delta_from_an_older_chain_cannot_link() {
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 0, 7).unwrap();
        let mut st = state_one_row();
        let outcome = write_checkpoint(&io, &dir(), 1, 7, &st, CheckpointPlan::Base).unwrap();
        let row = vec![Some(Value::str("y"))];
        let dirty: BTreeSet<_> = [(0u32, outcome.geometry.extent_of(0, &row))].into();
        st.insert(TableId(0), row);
        write_checkpoint(
            &io,
            &dir(),
            2,
            7,
            &st,
            CheckpointPlan::Delta {
                geometry: &outcome.geometry,
                dirty: &dirty,
                seq: 1,
            },
        )
        .unwrap();
        // Simulate an interrupted GC: keep a copy of the old d1, write a
        // new base (which GCs d1), then put the stale d1 back.
        let stale = io.peek(&store_path(&dir(), &delta_file(1))).unwrap();
        write_checkpoint(&io, &dir(), 3, 7, &st, CheckpointPlan::Base).unwrap();
        io.poke(&store_path(&dir(), &delta_file(1)), stale);

        let scan = read_store(&io, &dir()).unwrap().unwrap();
        // d1's epoch is 2, but chaining onto base(3) requires epoch 4.
        assert_eq!(scan.deltas_merged, 0);
        assert_eq!(scan.snapshot.unwrap().0.epoch, 3);
        assert!(
            !io.exists(&store_path(&dir(), &delta_file(1))),
            "orphan delta removed by scan hygiene"
        );
    }

    #[test]
    fn orphaned_tmp_files_are_deleted_by_read_store() {
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 0, 7).unwrap();
        io.poke(
            &store_path(&dir(), SNAP_TMP_FILE),
            b"half a checkpoint".to_vec(),
        );
        io.poke(&store_path(&dir(), "wal.tmp"), b"half a wal".to_vec());
        let scan = read_store(&io, &dir()).unwrap().unwrap();
        assert!(!io.exists(&store_path(&dir(), SNAP_TMP_FILE)));
        assert!(!io.exists(&store_path(&dir(), "wal.tmp")));
        assert_eq!(scan.snapshots_rejected, 0, "tmp is not a candidate at all");
    }

    #[test]
    fn v1_text_snapshot_reads_and_upgrades_to_v2() {
        let io = FaultyIo::new();
        let v1 = encode_snapshot(1, 7, &state_one_row());
        io.poke(&store_path(&dir(), SNAP_FILE), v1.into_bytes());
        reset_wal(&io, &dir(), 1, 7).unwrap();

        let scan = read_store(&io, &dir()).unwrap().unwrap();
        assert_eq!(scan.snapshot_format, 1);
        assert!(scan.geometry.is_none());
        assert_eq!(scan.snapshot.unwrap().0.state, state_one_row());

        // The next checkpoint writes v2; the v1 file survives as `prev`.
        write_checkpoint(&io, &dir(), 2, 7, &state_one_row(), CheckpointPlan::Base).unwrap();
        let scan = read_store(&io, &dir()).unwrap().unwrap();
        assert_eq!(scan.snapshot_format, 2);
        assert_eq!(scan.snapshot.unwrap().1, SNAP_FILE);
        let prev = io.peek(&store_path(&dir(), SNAP_PREV_FILE)).unwrap();
        assert!(!prev.starts_with(SNAP2_MAGIC), "prev still the v1 text");
    }

    #[test]
    fn stale_wal_is_discarded_not_replayed() {
        let io = FaultyIo::new();
        // Simulate a crash after the snapshot renames but before the WAL
        // reset: snapshot at epoch 1, WAL still at epoch 0 with a unit.
        reset_wal(&io, &dir(), 0, 7).unwrap();
        append_insert(&io, "old");
        let snap = encode_snapshot(1, 7, &state_one_row());
        io.poke(&store_path(&dir(), SNAP_FILE), snap.into_bytes());

        let scan = read_store(&io, &dir()).unwrap().unwrap();
        assert!(scan.stale_wal);
        assert!(scan.wal.units.is_empty());
        assert_eq!(scan.snapshot.unwrap().0.epoch, 1);
    }

    #[test]
    fn corrupt_snap_falls_back_to_prev_when_epochs_allow() {
        let io = FaultyIo::new();
        let prev = encode_snapshot(1, 7, &state_one_row());
        io.poke(&store_path(&dir(), SNAP_PREV_FILE), prev.into_bytes());
        io.poke(&store_path(&dir(), SNAP_FILE), b"garbage".to_vec());
        reset_wal(&io, &dir(), 1, 7).unwrap();
        let scan = read_store(&io, &dir()).unwrap().unwrap();
        assert_eq!(scan.snapshots_rejected, 1);
        assert_eq!(scan.snapshot.unwrap().1, SNAP_PREV_FILE);
        assert!(
            !io.exists(&store_path(&dir(), SNAP_FILE)),
            "corrupt snap removed so the next base cannot rotate it into prev"
        );
    }

    #[test]
    fn wal_ahead_of_every_checkpoint_is_corruption() {
        let io = FaultyIo::new();
        let prev = encode_snapshot(1, 7, &state_one_row());
        io.poke(&store_path(&dir(), SNAP_PREV_FILE), prev.into_bytes());
        reset_wal(&io, &dir(), 2, 7).unwrap();
        assert!(read_store(&io, &dir()).unwrap().is_err());

        // Same with no checkpoint at all.
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 3, 7).unwrap();
        assert!(read_store(&io, &dir()).unwrap().is_err());
    }

    #[test]
    fn corrupt_delta_truncates_the_chain_conservatively() {
        let io = FaultyIo::new();
        reset_wal(&io, &dir(), 0, 7).unwrap();
        let mut st = state_one_row();
        let outcome = write_checkpoint(&io, &dir(), 1, 7, &st, CheckpointPlan::Base).unwrap();
        let geometry = outcome.geometry;
        for (seq, name) in [(1u32, "y"), (2u32, "z")] {
            let row = vec![Some(Value::str(name))];
            let dirty: BTreeSet<_> = [(0u32, geometry.extent_of(0, &row))].into();
            st.insert(TableId(0), row);
            write_checkpoint(
                &io,
                &dir(),
                1 + seq as u64,
                7,
                &st,
                CheckpointPlan::Delta {
                    geometry: &geometry,
                    dirty: &dirty,
                    seq,
                },
            )
            .unwrap();
        }
        // Corrupt d1: the chain now ends at the base, and the WAL (epoch
        // 3, ahead of the base) can no longer be replayed → corruption,
        // not a silent partial merge.
        let mut d1 = io.peek(&store_path(&dir(), &delta_file(1))).unwrap();
        let mid = d1.len() / 2;
        d1[mid] ^= 0xff;
        io.poke(&store_path(&dir(), &delta_file(1)), d1);
        assert!(read_store(&io, &dir()).unwrap().is_err());
    }

    #[test]
    fn fresh_directory_scans_empty() {
        let io = FaultyIo::new();
        let scan = read_store(&io, &dir()).unwrap().unwrap();
        assert!(scan.fresh);
        assert!(scan.snapshot.is_none());
        assert!(scan.wal.units.is_empty());
    }
}

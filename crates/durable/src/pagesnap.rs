//! Binary paged checkpoint snapshots (format v2).
//!
//! The v1 text snapshot ([`crate::snapshot`]) re-serializes the whole
//! state on every checkpoint — O(state) exactly when the database is
//! large. v2 extends the WAL's length-prefixed, CRC32-framed row codec
//! ([`crate::wal`]) into a full snapshot format, lays every table out as
//! fixed-size **pages** grouped into **extents**, and supports
//! **delta** files that rewrite only the extents dirtied since the last
//! checkpoint epoch.
//!
//! ```text
//! file    := magic frame*                  magic = "RIDLSNP2" (8 bytes)
//! frame   := len:u32le crc:u32le payload   crc over payload only
//! payload := 0x10 flavor:u8 epoch:u64le fingerprint:u64le
//!                 ntables:u32le (extents:u32le)*ntables      (header)
//!          | 0x11 table:u32le extent:u32le nrows:u32le       (extent)
//!          | 0x12 nrows:u32le row*                           (page)
//!          | 0x13 total_rows:u64le                           (end)
//! row     := ncells:u32le cell*            (the WAL row codec)
//! ```
//!
//! **Extent assignment is content-hashed**, not positional: a row lives
//! in extent `row_extent_hash(row) % num_extents(table)`. A mutation
//! therefore dirties exactly the one extent holding (or about to hold)
//! that row, no matter where the row sorts — positional packing would
//! shift every row after an insert and dirty the whole tail. The same
//! hash runs in the engine's mutation path and in the codec, and
//! [`decode_paged`] re-verifies each row's assignment, so a writer/marker
//! disagreement surfaces as corruption instead of silent data loss.
//!
//! A **base** file carries every extent of every table (empty ones
//! included) in canonical order; a **delta** file carries a sparse,
//! strictly-ordered subset, and each extent it carries **replaces** that
//! extent wholesale (an empty extent frame is an explicit "now empty").
//! The extent-count geometry is frozen at base-write time and repeated in
//! every delta header; [`merge_chain`] refuses mismatched geometries.
//!
//! Every frame is CRC-checked (page corruption is localized to one frame
//! before decoding touches row bytes), the end frame carries the total
//! row count (truncation at a frame boundary is caught), and decoding is
//! strict: unknown frames, out-of-order extents, row-count mismatches,
//! duplicate rows, or trailing bytes are all typed [`CorruptError`]s.

use std::collections::{BTreeMap, BTreeSet};

use ridl_brm::Value;
use ridl_relational::{RelState, Row, TableId};

use crate::snapshot::CorruptError;
use crate::wal::{
    decode_row_bytes, encode_row_bytes, frame, get_u32, get_u64, next_frame, put_u32, put_u64,
};

/// First 8 bytes of every v2 snapshot or delta file.
pub const SNAP2_MAGIC: &[u8; 8] = b"RIDLSNP2";

/// Target rows per extent when sizing a base snapshot's geometry.
pub const ROWS_PER_EXTENT: usize = 128;

/// Target payload bytes per page frame; rows pack greedily until a page
/// crosses this, and one oversized row still gets its own page.
pub const PAGE_BYTES: usize = 4096;

/// Upper bound on extents per table (2^16 extents × 128 rows ≈ 8.4M rows
/// per table before extents simply grow past the target).
pub const MAX_EXTENTS_PER_TABLE: u32 = 1 << 16;

const KIND_SNAP_HEADER: u8 = 0x10;
const KIND_EXTENT: u8 = 0x11;
const KIND_PAGE: u8 = 0x12;
const KIND_SNAP_END: u8 = 0x13;

const FLAVOR_BASE: u8 = 0;
const FLAVOR_DELTA: u8 = 1;

fn bad(what: impl Into<String>) -> CorruptError {
    CorruptError(what.into())
}

/// FNV-1a over a row's cells, allocation-free and independent of the
/// text token encoding. This is the **stable contract** between the
/// engine's dirty-extent marking and the snapshot writer: both sides
/// must place a row in the same extent or incremental checkpoints lose
/// rows (which [`decode_paged`]'s per-row re-verification would surface
/// as corruption at the next recovery).
pub fn row_extent_hash(row: &Row) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for cell in row {
        match cell {
            None => eat(&[0x00]),
            Some(Value::Str(s)) => {
                eat(b"S");
                eat(s.as_bytes());
            }
            Some(Value::Int(i)) => {
                eat(b"I");
                eat(&i.to_le_bytes());
            }
            Some(Value::Num(d)) => {
                eat(b"N");
                eat(&d.mantissa.to_le_bytes());
                eat(&[d.scale]);
            }
            Some(Value::Date(d)) => {
                eat(b"D");
                eat(&d.to_le_bytes());
            }
            Some(Value::Bool(b)) => eat(&[b'B', *b as u8]),
            Some(Value::Entity(e)) => {
                eat(b"E");
                eat(&e.0.to_le_bytes());
            }
        }
        eat(&[0x1f]); // cell separator: ["ab","c"] ≠ ["a","bc"]
    }
    h
}

/// The extent layout of one snapshot chain: how many extents each table
/// is divided into. Frozen when a base snapshot is written; every delta
/// in the chain must agree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExtentGeometry {
    /// Extent count per table (always ≥ 1).
    pub extents: Vec<u32>,
}

impl ExtentGeometry {
    /// Sizes a geometry for `state`: ⌈rows / ROWS_PER_EXTENT⌉ extents per
    /// table, at least one, capped at [`MAX_EXTENTS_PER_TABLE`].
    pub fn for_state(state: &RelState) -> Self {
        let extents = (0..state.num_tables())
            .map(|i| {
                let rows = state.rows(TableId(i as u32)).len();
                (rows.div_ceil(ROWS_PER_EXTENT).max(1) as u32).min(MAX_EXTENTS_PER_TABLE)
            })
            .collect();
        Self { extents }
    }

    /// The extent `row` belongs to within `table`.
    pub fn extent_of(&self, table: usize, row: &Row) -> u32 {
        (row_extent_hash(row) % self.extents[table] as u64) as u32
    }

    /// Number of tables covered.
    pub fn num_tables(&self) -> usize {
        self.extents.len()
    }

    /// Total extents across all tables.
    pub fn total_extents(&self) -> u64 {
        self.extents.iter().map(|e| *e as u64).sum()
    }
}

/// Whether a v2 file is a full base snapshot or an extent delta.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapFlavor {
    /// Carries every extent of every table.
    Base,
    /// Carries only the extents it replaces.
    Delta,
}

/// A decoded v2 file: header fields plus the extents it carries, in file
/// order.
#[derive(Clone, PartialEq, Debug)]
pub struct PagedSnap {
    /// Base or delta.
    pub flavor: SnapFlavor,
    /// Checkpoint epoch this file was written at.
    pub epoch: u64,
    /// Schema fingerprint.
    pub fingerprint: u64,
    /// The chain geometry (repeated in every file of a chain).
    pub geometry: ExtentGeometry,
    /// `(table, extent, rows)` in file order.
    pub extents: Vec<(u32, u32, Vec<Row>)>,
}

/// Size accounting for one encoded snapshot or delta.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SnapStats {
    /// Encoded bytes (magic + frames).
    pub bytes: u64,
    /// Extent frames written.
    pub extents: u64,
    /// Page frames written.
    pub pages: u64,
}

fn header_frame(flavor: u8, epoch: u64, fingerprint: u64, geometry: &ExtentGeometry) -> Vec<u8> {
    let mut payload = vec![KIND_SNAP_HEADER, flavor];
    put_u64(&mut payload, epoch);
    put_u64(&mut payload, fingerprint);
    put_u32(&mut payload, geometry.extents.len() as u32);
    for e in &geometry.extents {
        put_u32(&mut payload, *e);
    }
    frame(&payload)
}

/// Emits one extent: its header frame plus greedily packed page frames.
fn encode_extent(out: &mut Vec<u8>, table: u32, extent: u32, rows: &[&Row], stats: &mut SnapStats) {
    let mut payload = vec![KIND_EXTENT];
    put_u32(&mut payload, table);
    put_u32(&mut payload, extent);
    put_u32(&mut payload, rows.len() as u32);
    out.extend_from_slice(&frame(&payload));
    stats.extents += 1;

    let mut page: Vec<u8> = Vec::new();
    let mut page_rows = 0u32;
    let mut flush = |page: &mut Vec<u8>, page_rows: &mut u32, out: &mut Vec<u8>| {
        if *page_rows > 0 {
            let mut payload = vec![KIND_PAGE];
            put_u32(&mut payload, *page_rows);
            payload.extend_from_slice(page);
            out.extend_from_slice(&frame(&payload));
            stats.pages += 1;
            page.clear();
            *page_rows = 0;
        }
    };
    for row in rows {
        encode_row_bytes(&mut page, row);
        page_rows += 1;
        if page.len() >= PAGE_BYTES {
            flush(&mut page, &mut page_rows, out);
        }
    }
    flush(&mut page, &mut page_rows, out);
}

/// Buckets a table's rows by extent. One pass over the rows; the result
/// indexes row references per extent.
fn bucket_rows<'a>(
    state: &'a RelState,
    table: usize,
    geometry: &ExtentGeometry,
) -> Vec<Vec<&'a Row>> {
    let mut buckets: Vec<Vec<&Row>> = vec![Vec::new(); geometry.extents[table] as usize];
    for row in state.rows(TableId(table as u32)) {
        buckets[geometry.extent_of(table, row) as usize].push(row);
    }
    buckets
}

/// Encodes a full base snapshot of `state`, returning the bytes, the
/// geometry it froze, and size stats.
pub fn encode_base(
    epoch: u64,
    fingerprint: u64,
    state: &RelState,
) -> (Vec<u8>, ExtentGeometry, SnapStats) {
    let geometry = ExtentGeometry::for_state(state);
    let mut out = SNAP2_MAGIC.to_vec();
    let mut stats = SnapStats::default();
    out.extend_from_slice(&header_frame(FLAVOR_BASE, epoch, fingerprint, &geometry));
    let mut total_rows = 0u64;
    for t in 0..state.num_tables() {
        let buckets = bucket_rows(state, t, &geometry);
        for (e, rows) in buckets.iter().enumerate() {
            total_rows += rows.len() as u64;
            encode_extent(&mut out, t as u32, e as u32, rows, &mut stats);
        }
    }
    let mut payload = vec![KIND_SNAP_END];
    put_u64(&mut payload, total_rows);
    out.extend_from_slice(&frame(&payload));
    stats.bytes = out.len() as u64;
    (out, geometry, stats)
}

/// Encodes a delta carrying exactly the `dirty` extents of `state` under
/// a frozen `geometry`. Each carried extent replaces its previous
/// contents wholesale; extents not in `dirty` are untouched by the file.
///
/// Panics if `geometry` does not cover `state`'s tables or a dirty pair
/// is out of range — the engine guards both (a geometry/table mismatch
/// forces a base checkpoint instead).
pub fn encode_delta(
    epoch: u64,
    fingerprint: u64,
    state: &RelState,
    geometry: &ExtentGeometry,
    dirty: &BTreeSet<(u32, u32)>,
) -> (Vec<u8>, SnapStats) {
    assert_eq!(
        geometry.num_tables(),
        state.num_tables(),
        "geometry covers state"
    );
    let mut out = SNAP2_MAGIC.to_vec();
    let mut stats = SnapStats::default();
    out.extend_from_slice(&header_frame(FLAVOR_DELTA, epoch, fingerprint, geometry));
    let mut total_rows = 0u64;
    // One scan per dirtied table, filtering to its dirty extents.
    let mut by_table: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for (t, e) in dirty {
        assert!(*e < geometry.extents[*t as usize], "dirty extent in range");
        by_table.entry(*t).or_default().insert(*e);
    }
    for (t, extents) in &by_table {
        let mut buckets: BTreeMap<u32, Vec<&Row>> =
            extents.iter().map(|e| (*e, Vec::new())).collect();
        for row in state.rows(TableId(*t)) {
            let e = geometry.extent_of(*t as usize, row);
            if let Some(b) = buckets.get_mut(&e) {
                b.push(row);
            }
        }
        for (e, rows) in &buckets {
            total_rows += rows.len() as u64;
            encode_extent(&mut out, *t, *e, rows, &mut stats);
        }
    }
    let mut payload = vec![KIND_SNAP_END];
    put_u64(&mut payload, total_rows);
    out.extend_from_slice(&frame(&payload));
    stats.bytes = out.len() as u64;
    (out, stats)
}

/// Decodes and fully verifies a v2 file (base or delta): magic, per-frame
/// CRCs, header-first/end-last framing, canonical extent order (complete
/// coverage for a base, strictly ascending subset for a delta), per-row
/// extent-assignment re-verification, and the end frame's total row
/// count. Any violation is a typed [`CorruptError`].
pub fn decode_paged(bytes: &[u8]) -> Result<PagedSnap, CorruptError> {
    if bytes.len() < SNAP2_MAGIC.len() || &bytes[..SNAP2_MAGIC.len()] != SNAP2_MAGIC {
        return Err(bad("pagesnap: bad magic"));
    }
    let mut pos = SNAP2_MAGIC.len();

    // Header frame first.
    let payload = next_frame(bytes, &mut pos).ok_or_else(|| bad("pagesnap: torn header frame"))?;
    if payload.first() != Some(&KIND_SNAP_HEADER) {
        return Err(bad("pagesnap: first frame is not a header"));
    }
    let flavor = match payload.get(1) {
        Some(&FLAVOR_BASE) => SnapFlavor::Base,
        Some(&FLAVOR_DELTA) => SnapFlavor::Delta,
        _ => return Err(bad("pagesnap: unknown flavor")),
    };
    let epoch = get_u64(payload, 2).ok_or_else(|| bad("pagesnap: header epoch"))?;
    let fingerprint = get_u64(payload, 10).ok_or_else(|| bad("pagesnap: header fingerprint"))?;
    let ntables = get_u32(payload, 18).ok_or_else(|| bad("pagesnap: header table count"))? as usize;
    if payload.len() != 22 + 4 * ntables {
        return Err(bad("pagesnap: header length mismatch"));
    }
    let mut extents_per_table = Vec::with_capacity(ntables);
    for i in 0..ntables {
        let e = get_u32(payload, 22 + 4 * i).ok_or_else(|| bad("pagesnap: header extents"))?;
        if e == 0 || e > MAX_EXTENTS_PER_TABLE {
            return Err(bad(format!("pagesnap: table {i} has {e} extents")));
        }
        extents_per_table.push(e);
    }
    let geometry = ExtentGeometry {
        extents: extents_per_table,
    };

    // Extent + page frames until the end frame.
    let mut extents: Vec<(u32, u32, Vec<Row>)> = Vec::new();
    let mut open: Option<(u32, u32, usize, Vec<Row>)> = None; // (t, e, want, rows)
    let mut total_rows = 0u64;
    let mut ended = false;
    while !ended {
        let payload =
            next_frame(bytes, &mut pos).ok_or_else(|| bad("pagesnap: torn or missing frame"))?;
        match payload.first() {
            Some(&KIND_EXTENT) => {
                let t = get_u32(payload, 1).ok_or_else(|| bad("pagesnap: extent table"))?;
                let e = get_u32(payload, 5).ok_or_else(|| bad("pagesnap: extent index"))?;
                let n = get_u32(payload, 9).ok_or_else(|| bad("pagesnap: extent rows"))?;
                if payload.len() != 13 {
                    return Err(bad("pagesnap: extent frame length"));
                }
                if (t as usize) >= geometry.num_tables() || e >= geometry.extents[t as usize] {
                    return Err(bad(format!("pagesnap: extent ({t},{e}) out of range")));
                }
                if let Some((pt, pe, want, rows)) = open.take() {
                    if rows.len() != want {
                        return Err(bad(format!(
                            "pagesnap: extent ({pt},{pe}) declared {want} rows, carried {}",
                            rows.len()
                        )));
                    }
                    extents.push((pt, pe, rows));
                }
                if let Some((lt, le, _)) = extents.last() {
                    if (t, e) <= (*lt, *le) {
                        return Err(bad(format!("pagesnap: extent ({t},{e}) out of order")));
                    }
                }
                open = Some((t, e, n as usize, Vec::new()));
            }
            Some(&KIND_PAGE) => {
                let (t, e, want, rows) = open
                    .as_mut()
                    .ok_or_else(|| bad("pagesnap: page before any extent"))?;
                let n = get_u32(payload, 1).ok_or_else(|| bad("pagesnap: page rows"))? as usize;
                let mut at = 5usize;
                for _ in 0..n {
                    let row = decode_row_bytes(payload, &mut at)
                        .ok_or_else(|| bad("pagesnap: row decode"))?;
                    if geometry.extent_of(*t as usize, &row) != *e {
                        return Err(bad(format!(
                            "pagesnap: row hashed outside its extent ({t},{e})"
                        )));
                    }
                    rows.push(row);
                }
                if at != payload.len() {
                    return Err(bad("pagesnap: trailing bytes in page frame"));
                }
                if rows.len() > *want {
                    return Err(bad(format!("pagesnap: extent ({t},{e}) overflows")));
                }
                total_rows += n as u64;
            }
            Some(&KIND_SNAP_END) => {
                let declared = get_u64(payload, 1).ok_or_else(|| bad("pagesnap: end total"))?;
                if payload.len() != 9 {
                    return Err(bad("pagesnap: end frame length"));
                }
                if declared != total_rows {
                    return Err(bad(format!(
                        "pagesnap: end declares {declared} rows, file carries {total_rows}"
                    )));
                }
                ended = true;
            }
            _ => return Err(bad("pagesnap: unknown frame kind")),
        }
    }
    if let Some((pt, pe, want, rows)) = open.take() {
        if rows.len() != want {
            return Err(bad(format!(
                "pagesnap: extent ({pt},{pe}) declared {want} rows, carried {}",
                rows.len()
            )));
        }
        extents.push((pt, pe, rows));
    }
    if pos != bytes.len() {
        return Err(bad("pagesnap: trailing bytes after end frame"));
    }
    if flavor == SnapFlavor::Base {
        // A base must carry every extent of every table exactly once, in
        // canonical order (the ascending-order check above makes "once"
        // free; here we check completeness).
        let want: u64 = geometry.total_extents();
        if extents.len() as u64 != want {
            return Err(bad(format!(
                "pagesnap: base carries {} extents, geometry has {want}",
                extents.len()
            )));
        }
    }
    Ok(PagedSnap {
        flavor,
        epoch,
        fingerprint,
        geometry,
        extents,
    })
}

/// Merges a base and its delta chain into a state. The caller has
/// already verified the chain links (epochs consecutive, fingerprints
/// and geometry equal — [`crate::store::read_store`] does); this
/// re-asserts the structural parts and applies each delta's extents as
/// wholesale replacements, last writer wins.
pub fn merge_chain(base: &PagedSnap, deltas: &[&PagedSnap]) -> Result<RelState, CorruptError> {
    if base.flavor != SnapFlavor::Base {
        return Err(bad("pagesnap: chain must start with a base"));
    }
    let mut layers: BTreeMap<(u32, u32), &Vec<Row>> = BTreeMap::new();
    for (t, e, rows) in &base.extents {
        layers.insert((*t, *e), rows);
    }
    for d in deltas {
        if d.flavor != SnapFlavor::Delta {
            return Err(bad("pagesnap: chain tail must be deltas"));
        }
        if d.geometry != base.geometry {
            return Err(bad("pagesnap: delta geometry diverges from base"));
        }
        for (t, e, rows) in &d.extents {
            layers.insert((*t, *e), rows);
        }
    }
    let mut state = RelState::with_tables(base.geometry.num_tables());
    for ((t, _e), rows) in layers {
        for row in rows {
            if !state.insert(TableId(t), row.clone()) {
                return Err(bad(format!("pagesnap: duplicate row in table {t}")));
            }
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::Decimal;

    fn v(s: &str) -> Option<Value> {
        Some(Value::str(s))
    }

    fn sample_state(rows_per_table: usize) -> RelState {
        let mut st = RelState::with_tables(3);
        for i in 0..rows_per_table {
            st.insert(TableId(0), vec![v(&format!("k{i}")), None]);
            st.insert(
                TableId(2),
                vec![
                    Some(Value::Int(i as i64)),
                    Some(Value::Num(Decimal::new(i as i64 * 7, 2))),
                    Some(Value::Bool(i % 2 == 0)),
                ],
            );
        }
        st
    }

    #[test]
    fn base_roundtrips() {
        let st = sample_state(300);
        let (bytes, geometry, stats) = encode_base(5, 0xFEED, &st);
        assert_eq!(stats.bytes, bytes.len() as u64);
        assert!(stats.pages > 0);
        let dec = decode_paged(&bytes).unwrap();
        assert_eq!(dec.flavor, SnapFlavor::Base);
        assert_eq!(dec.epoch, 5);
        assert_eq!(dec.fingerprint, 0xFEED);
        assert_eq!(dec.geometry, geometry);
        assert_eq!(merge_chain(&dec, &[]).unwrap(), st);
        // Idempotent: decoding the same bytes again merges identically.
        assert_eq!(
            merge_chain(&decode_paged(&bytes).unwrap(), &[]).unwrap(),
            st
        );
    }

    #[test]
    fn geometry_splits_large_tables() {
        let st = sample_state(ROWS_PER_EXTENT * 3);
        let g = ExtentGeometry::for_state(&st);
        assert!(g.extents[0] >= 3);
        assert_eq!(g.extents[1], 1, "empty table still gets one extent");
    }

    #[test]
    fn delta_replaces_only_dirty_extents() {
        let mut st = sample_state(300);
        let (base_bytes, geometry, _) = encode_base(1, 7, &st);
        let base = decode_paged(&base_bytes).unwrap();

        // Mutate a handful of rows, tracking the extents they hash to —
        // exactly what the engine's dirty marking does.
        let mut dirty = BTreeSet::new();
        for i in 0..5 {
            let old = vec![v(&format!("k{i}")), None];
            let new = vec![v(&format!("k{i}-v2")), None];
            dirty.insert((0u32, geometry.extent_of(0, &old)));
            dirty.insert((0u32, geometry.extent_of(0, &new)));
            assert!(st.remove(TableId(0), &old));
            assert!(st.insert(TableId(0), new));
        }
        let (delta_bytes, stats) = encode_delta(2, 7, &st, &geometry, &dirty);
        assert!(
            (delta_bytes.len() as u64)
                < base.extents.len() as u64 * 100 + base_bytes.len() as u64 / 2,
            "delta much smaller than base"
        );
        assert_eq!(stats.extents, dirty.len() as u64);
        let delta = decode_paged(&delta_bytes).unwrap();
        assert_eq!(delta.flavor, SnapFlavor::Delta);
        assert_eq!(merge_chain(&base, &[&delta]).unwrap(), st);
    }

    #[test]
    fn empty_dirty_extent_is_an_explicit_replacement() {
        let mut st = RelState::with_tables(1);
        st.insert(TableId(0), vec![v("only")]);
        let (base_bytes, geometry, _) = encode_base(1, 7, &st);
        let base = decode_paged(&base_bytes).unwrap();
        let e = geometry.extent_of(0, &vec![v("only")]);
        st.remove(TableId(0), &vec![v("only")]);
        let dirty: BTreeSet<_> = [(0u32, e)].into();
        let (delta_bytes, _) = encode_delta(2, 7, &st, &geometry, &dirty);
        let delta = decode_paged(&delta_bytes).unwrap();
        assert_eq!(delta.extents, vec![(0, e, Vec::new())]);
        assert_eq!(merge_chain(&base, &[&delta]).unwrap(), st);
    }

    #[test]
    fn chained_deltas_apply_last_writer_wins() {
        let mut st = sample_state(64);
        let (base_bytes, geometry, _) = encode_base(1, 7, &st);
        let base = decode_paged(&base_bytes).unwrap();
        let mut deltas = Vec::new();
        for gen in 0..3 {
            let row = vec![v("hot"), v(&format!("gen{gen}"))];
            let mut dirty = BTreeSet::new();
            if gen > 0 {
                let old = vec![v("hot"), v(&format!("gen{}", gen - 1))];
                dirty.insert((0u32, geometry.extent_of(0, &old)));
                st.remove(TableId(0), &old);
            }
            dirty.insert((0u32, geometry.extent_of(0, &row)));
            st.insert(TableId(0), row);
            let (bytes, _) = encode_delta(2 + gen, 7, &st, &geometry, &dirty);
            deltas.push(decode_paged(&bytes).unwrap());
        }
        assert_eq!(
            merge_chain(&base, &deltas.iter().collect::<Vec<_>>()).unwrap(),
            st
        );
    }

    #[test]
    fn every_truncation_is_rejected() {
        let st = sample_state(40);
        let (bytes, _, _) = encode_base(1, 1, &st);
        for cut in 0..bytes.len() {
            assert!(decode_paged(&bytes[..cut]).is_err(), "truncation at {cut}");
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let st = sample_state(40);
        let (bytes, _, _) = encode_base(1, 1, &st);
        // Flip one bit in every byte position; each must fail (CRC per
        // frame) or — for flips inside the magic — fail the magic check.
        for pos in 0..bytes.len() {
            let mut t = bytes.clone();
            t[pos] ^= 0x01;
            assert!(decode_paged(&t).is_err(), "flip at {pos} accepted");
        }
    }

    #[test]
    fn mismatched_geometry_refuses_to_merge() {
        let small = sample_state(10);
        let large = sample_state(ROWS_PER_EXTENT * 4);
        let (bb, _, _) = encode_base(1, 7, &large);
        let base = decode_paged(&bb).unwrap();
        let (sb, sg, _) = encode_base(1, 7, &small);
        let _ = decode_paged(&sb).unwrap();
        let (db, _) = encode_delta(2, 7, &small, &sg, &BTreeSet::new());
        let delta = decode_paged(&db).unwrap();
        assert!(merge_chain(&base, &[&delta]).is_err());
    }

    #[test]
    fn row_hash_distinguishes_cell_boundaries() {
        let a: Row = vec![v("ab"), v("c")];
        let b: Row = vec![v("a"), v("bc")];
        assert_ne!(row_extent_hash(&a), row_extent_hash(&b));
        let c: Row = vec![None, v("x")];
        let d: Row = vec![v(""), v("x")];
        assert_ne!(row_extent_hash(&c), row_extent_hash(&d));
    }
}

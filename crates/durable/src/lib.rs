//! Durability layer for the RIDL* engine: write-ahead logging,
//! checkpoint snapshots, crash recovery, and a syscall-level
//! fault-injection harness.
//!
//! The crate is deliberately engine-agnostic — it knows about
//! [`ridl_relational::RelState`] and [`ridl_relational::DeltaOp`] but not
//! about constraints or validation. The engine layers recovery *replay*
//! (re-running committed units through its incremental-validation path)
//! on top of the raw scan this crate provides.
//!
//! Module map:
//!
//! * [`crc`] — zero-dependency CRC32 (IEEE), the integrity check for both
//!   WAL frames and snapshots;
//! * [`io`] — the [`DurableIo`] syscall boundary and the real
//!   [`StdIo`] implementation;
//! * [`fault`] — [`FaultyIo`], an in-memory filesystem with per-syscall
//!   fault injection and simulated crashes;
//! * [`snapshot`] — the legacy v1 checkpoint text format (a superset of
//!   the `metadb` value token format, which delegates here); still read
//!   for migration, never written;
//! * [`pagesnap`] — the v2 binary paged checkpoint format: CRC-framed
//!   pages grouped into content-hashed extents, base snapshots plus
//!   incremental extent deltas;
//! * [`wal`] — length-prefixed, CRC-checksummed WAL frames with explicit
//!   commit markers, and the total (never-panicking) [`scan_wal`];
//! * [`store`] — the on-disk protocol: file layout, crash-safe base +
//!   delta-chain checkpoint and log-truncation sequences, and the
//!   recovery read path;
//! * [`inspect`] — offline, read-only store inspection (`ridl status`):
//!   the same strict decodes as recovery, but reporting debris and
//!   inconsistencies instead of repairing them.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc;
pub mod fault;
pub mod inspect;
pub mod io;
pub mod pagesnap;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use crate::fault::{FaultKind, FaultPlan, FaultyIo};
pub use crate::inspect::{inspect_store, CheckpointInfo, StoreStatus, WalStatus};
pub use crate::io::{DurableIo, StdIo};
pub use crate::pagesnap::{
    decode_paged, encode_base, encode_delta, merge_chain, row_extent_hash, ExtentGeometry,
    PagedSnap, SnapFlavor, SnapStats,
};
pub use crate::snapshot::{
    decode_snapshot, decode_value, encode_snapshot, encode_value, fingerprint_str, CorruptError,
    Snapshot,
};
pub use crate::store::{
    delta_file, read_store, write_checkpoint, CheckpointFailure, CheckpointKind, CheckpointOutcome,
    CheckpointPlan, CheckpointStats, StoreScan,
};
pub use crate::wal::{encode_unit, scan_wal, wal_init_bytes, CommitUnit, WalHeader, WalScan};

/// When the WAL is fsync'd relative to commits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsyncPolicy {
    /// fsync on every commit before reporting success. A reported-success
    /// commit survives any crash.
    Always,
    /// Group commit: fsync at most once per window. Commits inside the
    /// window are reported before they are durable — a crash may lose a
    /// suffix of them, but never produces a non-prefix state.
    GroupCommit {
        /// Maximum time between fsyncs, in microseconds.
        window_micros: u64,
    },
    /// Never fsync from the commit path (checkpoints still sync). For
    /// benchmarking the WAL's CPU cost in isolation.
    Never,
}

/// Durability configuration for a [`DurableIo`]-backed engine database.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Durability {
    /// Commit fsync policy.
    pub fsync: FsyncPolicy,
    /// Take an automatic checkpoint (and truncate the WAL) once the log
    /// exceeds this many bytes. `None` disables automatic checkpoints.
    /// Auto-checkpoints are deferred while a transaction is open.
    pub checkpoint_every_bytes: Option<u64>,
}

impl Default for Durability {
    fn default() -> Self {
        Durability {
            fsync: FsyncPolicy::Always,
            checkpoint_every_bytes: Some(4 << 20),
        }
    }
}

/// What crash recovery found and did, surfaced through
/// `Database::recovery_report` and `ridl recover`.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint the recovered state is based on, and the
    /// file it was read from; `None` when recovery started from the
    /// empty state.
    pub checkpoint: Option<(u64, &'static str)>,
    /// Snapshot/delta files present but rejected (checksum or parse
    /// failure).
    pub snapshots_rejected: usize,
    /// Format of the checkpoint recovery started from: 0 none, 1 legacy
    /// text (v1, upgraded to v2 on the next checkpoint), 2 binary paged
    /// (v2).
    pub snapshot_format: u8,
    /// Delta files merged on top of the base checkpoint.
    pub deltas_merged: usize,
    /// Total WAL bytes scanned.
    pub wal_bytes_scanned: u64,
    /// Committed units replayed into the recovered state.
    pub units_replayed: usize,
    /// Individual delta ops inside those units.
    pub ops_replayed: usize,
    /// Bytes past the last valid committed unit (torn/partial/corrupt
    /// tail records) that were discarded.
    pub bytes_discarded: u64,
    /// True when the WAL predated the checkpoint (crash between the
    /// checkpoint renames and the WAL reset) and was discarded whole.
    pub stale_wal: bool,
    /// True when replay stopped early because a committed unit no longer
    /// validated (possible only if the schema changed between runs);
    /// the remaining units are counted in `bytes_discarded`.
    pub replay_rejected: bool,
    /// True when the store directory was empty (first open).
    pub fresh: bool,
    /// Wall-clock nanoseconds the whole recovery took (store scan,
    /// checkpoint load, WAL replay, log repair). Always measured — unlike
    /// the detail-gated obs timings — so crash-recovery time can feed
    /// benchmark artifacts without enabling per-probe instrumentation.
    pub elapsed_ns: u64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.fresh {
            return writeln!(f, "recovery: fresh store (no WAL, no checkpoint)");
        }
        match self.checkpoint {
            Some((epoch, file)) => {
                let format = match self.snapshot_format {
                    1 => "v1 text",
                    2 => "v2 paged",
                    _ => "unknown",
                };
                writeln!(f, "checkpoint: epoch {epoch} from {file} ({format})")?;
                if self.deltas_merged > 0 {
                    writeln!(f, "deltas merged: {}", self.deltas_merged)?;
                }
            }
            None => writeln!(f, "checkpoint: none (recovered from empty state)")?,
        }
        if self.snapshots_rejected > 0 {
            writeln!(f, "snapshots rejected: {}", self.snapshots_rejected)?;
        }
        writeln!(
            f,
            "wal: {} bytes scanned, {} units ({} ops) replayed, {} bytes discarded",
            self.wal_bytes_scanned, self.units_replayed, self.ops_replayed, self.bytes_discarded
        )?;
        if self.stale_wal {
            writeln!(f, "wal: stale (predates checkpoint), discarded whole")?;
        }
        if self.replay_rejected {
            writeln!(
                f,
                "wal: replay stopped early (a committed unit no longer validates)"
            )?;
        }
        if self.elapsed_ns > 0 {
            writeln!(
                f,
                "recovery took {:.3} ms",
                self.elapsed_ns as f64 / 1_000_000.0
            )?;
        }
        Ok(())
    }
}

//! # ridl-analyzer — RIDL-A, the validation module
//!
//! "At each stage of the database engineering project the binary schemas may
//! be checked for validity, completeness and consistency using RIDL-A" (§3.2).
//! The module performs the paper's four functions:
//!
//! 1. [`correctness`] — the schema obeys the rules of the BRM (binary facts,
//!    well-typed constraints, acyclic sublink graph, LOTs as single-use
//!    bridges, …);
//! 2. [`completeness`] — the schema contains all concepts needed to be a
//!    complete description (identifiers on every fact, no isolated concepts);
//! 3. [`setalg`] — consistency of the set-algebraic constraints on role and
//!    object-type populations (a saturation solver deriving forced-empty
//!    populations and outright contradictions);
//! 4. [`mod@reference`] — detection of **non-referable** object types: NOLOTs for
//!    which no one-to-one lexical reference scheme is inferable from the
//!    constraints. Referability is what guarantees the mapper can produce a
//!    lexical relational representation at all (§3.2 point 4).
//!
//! [`analyze`] runs all four and returns an [`AnalysisReport`], which the
//! mapper (`ridl-core`) consumes: the computed [`reference::LexicalRep`]s are
//! exactly the "naming conventions" among which the lexical mapping options
//! (§4.2.3) choose.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod completeness;
pub mod correctness;
pub mod reference;
pub mod report;
pub mod setalg;

pub use reference::{LexicalAtom, LexicalRep, ReferenceAnalysis};
pub use report::{analyze, AnalysisReport, Finding, Severity};

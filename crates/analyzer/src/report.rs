//! Findings, severities and the aggregate analysis report.

use std::fmt;

use ridl_brm::Schema;

use crate::reference::ReferenceAnalysis;

/// How serious a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational note.
    Info,
    /// The schema is usable but likely incomplete or suspicious.
    Warning,
    /// The schema violates the BRM or cannot be mapped.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "INFO"),
            Severity::Warning => write!(f, "WARNING"),
            Severity::Error => write!(f, "ERROR"),
        }
    }
}

/// One analyzer finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Severity of the finding.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `SUBLINK-CYCLE`.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Creates an error finding.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Error,
            code,
            message: message.into(),
        }
    }

    /// Creates a warning finding.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Warning,
            code,
            message: message.into(),
        }
    }

    /// Creates an info finding.
    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Info,
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.code, self.message)
    }
}

/// The aggregate result of running all four RIDL-A functions.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Correctness findings (function 1).
    pub correctness: Vec<Finding>,
    /// Completeness findings (function 2).
    pub completeness: Vec<Finding>,
    /// Set-algebraic consistency findings (function 3).
    pub consistency: Vec<Finding>,
    /// Referability findings (function 4) — one error per non-referable
    /// NOLOT — plus the inferred reference schemes for the referable ones.
    pub referability: Vec<Finding>,
    /// The inferred lexical representations per object type.
    pub references: ReferenceAnalysis,
}

impl AnalysisReport {
    /// All findings in report order.
    pub fn findings(&self) -> impl Iterator<Item = &Finding> {
        self.correctness
            .iter()
            .chain(&self.completeness)
            .chain(&self.consistency)
            .chain(&self.referability)
    }

    /// True when no finding is an error — the schema may be mapped.
    pub fn is_mappable(&self) -> bool {
        self.findings().all(|f| f.severity != Severity::Error)
    }

    /// Count findings at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings().filter(|f| f.severity == severity).count()
    }

    /// Renders the report in RIDL-A's four sections.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let section = |out: &mut String, title: &str, findings: &[Finding]| {
            out.push_str(&format!("-- {title}\n"));
            if findings.is_empty() {
                out.push_str("   (no findings)\n");
            }
            for f in findings {
                out.push_str(&format!("   {f}\n"));
            }
        };
        section(&mut out, "1. CORRECTNESS", &self.correctness);
        section(&mut out, "2. COMPLETENESS", &self.completeness);
        section(&mut out, "3. CONSTRAINT CONSISTENCY", &self.consistency);
        section(&mut out, "4. REFERABILITY", &self.referability);
        out
    }
}

/// Runs the four RIDL-A functions over a schema.
pub fn analyze(schema: &Schema) -> AnalysisReport {
    let _span = ridl_obs::span::enter("analyzer.analyze");
    let references =
        ridl_obs::span::in_span("analyzer.reference", || crate::reference::infer(schema));
    AnalysisReport {
        correctness: ridl_obs::span::in_span("analyzer.correctness", || {
            crate::correctness::check(schema)
        }),
        completeness: ridl_obs::span::in_span("analyzer.completeness", || {
            crate::completeness::check(schema)
        }),
        consistency: ridl_obs::span::in_span("analyzer.setalg", || crate::setalg::check(schema)),
        referability: ridl_obs::span::in_span("analyzer.referability", || {
            crate::reference::findings(schema, &references)
        }),
        references,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::DataType;

    #[test]
    fn clean_schema_is_mappable() {
        let mut b = SchemaBuilder::new("ok");
        b.nolot("Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        let s = b.finish().unwrap();
        let r = analyze(&s);
        assert!(r.is_mappable(), "{}", r.render());
        assert_eq!(r.count(Severity::Error), 0);
        let rendered = r.render();
        assert!(rendered.contains("1. CORRECTNESS"));
        assert!(rendered.contains("4. REFERABILITY"));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Finding::error("X", "boom").to_string(), "ERROR [X] boom");
    }
}

//! RIDL-A function 4: reference schemes and non-referability detection.
//!
//! "It detects non-referable object types in the conceptual schema, i.e.
//! object types for which it is not possible to refer uniquely and
//! unambiguously (one-to-one) to all of their instances. This one-to-one
//! property should be inferable from constraints in the binary schema. …
//! we need to be guaranteed of a lexical representation(-type) for each
//! non-lexical object(-type)" (§3.2).
//!
//! A *lexical representation type* (a.k.a. *naming convention*, §4.2.3) for a
//! NOLOT is a combination of LOTs reachable through identifying fact types.
//! This module infers **all** of them by fixpoint:
//!
//! * a LOT or LOT-NOLOT is lexically referable by itself;
//! * a NOLOT with an identifying fact `f(n, x)` — `n`'s role unique **and**
//!   total, `x`'s role unique — borrows every representation of `x`,
//!   prefixing the bridge hop (*simple reference*);
//! * an external-uniqueness constraint over co-roles of `n` whose facts are
//!   functional and total on `n` combines the component representations
//!   (*compound reference*, e.g. Session = (Day, Slot));
//! * a subtype inherits every representation of its supertypes.
//!
//! "It is quite usual to have several, even a great many, lexical
//! representation types for the same NOLOT" — the mapper's lexical options
//! pick among the result.

use std::collections::HashMap;

use ridl_brm::{ConstraintKind, DataType, ObjectTypeId, RoleRef, Schema};

use crate::report::Finding;

/// One lexical atom of a representation: a chain of identifying hops from
/// the owner NOLOT down to a LOT.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexicalAtom {
    /// The hops: at each step, the role played by the object type being
    /// represented (so `path[0].co_role()` leads one step toward the LOT).
    /// Empty for self-lexical object types (LOT-NOLOTs).
    pub path: Vec<RoleRef>,
    /// The terminal lexical object type.
    pub lot: ObjectTypeId,
    /// Its data type.
    pub data_type: DataType,
}

impl LexicalAtom {
    /// Number of hops.
    pub fn depth(&self) -> usize {
        self.path.len()
    }
}

/// A lexical representation type (naming convention) for an object type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexicalRep {
    /// The represented object type.
    pub owner: ObjectTypeId,
    /// The atoms whose combination identifies an instance one-to-one.
    pub atoms: Vec<LexicalAtom>,
}

impl LexicalRep {
    /// The paper's "smallest" judgement: fewest concepts involved, then
    /// smallest physical width (§4.2.3).
    pub fn size_key(&self) -> (usize, u32) {
        let concepts: usize = self.atoms.iter().map(|a| a.depth() + 1).sum();
        let width: u32 = self.atoms.iter().map(|a| a.data_type.byte_width()).sum();
        (concepts, width)
    }

    /// Total physical width in bytes.
    pub fn byte_width(&self) -> u32 {
        self.atoms.iter().map(|a| a.data_type.byte_width()).sum()
    }

    /// A deterministic description, for reports and tie-breaking.
    pub fn describe(&self, schema: &Schema) -> String {
        let atoms: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                let mut s = String::new();
                for hop in &a.path {
                    s.push_str(&schema.fact_type(hop.fact).name);
                    s.push('/');
                }
                s.push_str(schema.ot_name(a.lot));
                s
            })
            .collect();
        format!("({})", atoms.join(", "))
    }
}

/// The result of reference inference: all representations per object type.
#[derive(Clone, Default, Debug)]
pub struct ReferenceAnalysis {
    reps: HashMap<u32, Vec<LexicalRep>>,
}

impl ReferenceAnalysis {
    /// All inferred representations of an object type (possibly empty).
    pub fn reps_of(&self, ot: ObjectTypeId) -> &[LexicalRep] {
        self.reps.get(&ot.raw()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the object type is referable at all.
    pub fn is_referable(&self, ot: ObjectTypeId) -> bool {
        !self.reps_of(ot).is_empty()
    }

    /// The smallest representation (the mapper's default choice, §4.2.3).
    /// Ties break on the description, keeping the result deterministic.
    pub fn smallest(&self, schema: &Schema, ot: ObjectTypeId) -> Option<&LexicalRep> {
        self.reps_of(ot)
            .iter()
            .min_by_key(|r| (r.size_key(), r.describe(schema)))
    }
}

/// Caps representation explosion: beyond this many representations per
/// object type, further alternatives are not enumerated (the smallest ones
/// are kept). Industrial schemas can otherwise blow up combinatorially.
const MAX_REPS_PER_OT: usize = 8;

/// Infers all reference schemes of a schema by fixpoint.
pub fn infer(schema: &Schema) -> ReferenceAnalysis {
    let mut reps: HashMap<u32, Vec<LexicalRep>> = HashMap::new();

    // Seed: lexical object types represent themselves.
    for (oid, ot) in schema.object_types() {
        if let Some(dt) = ot.kind.data_type() {
            reps.insert(
                oid.raw(),
                vec![LexicalRep {
                    owner: oid,
                    atoms: vec![LexicalAtom {
                        path: Vec::new(),
                        lot: oid,
                        data_type: dt,
                    }],
                }],
            );
        }
    }

    // Collect external uniqueness groups per hub object type.
    let mut external: HashMap<u32, Vec<Vec<RoleRef>>> = HashMap::new();
    for (_, c) in schema.constraints() {
        if let ConstraintKind::Uniqueness { roles } = &c.kind {
            if roles.len() < 2 || roles.iter().all(|r| r.fact == roles[0].fact) {
                continue;
            }
            let hub = schema.role_player(roles[0].co_role());
            if roles.iter().all(|r| schema.role_player(r.co_role()) == hub) {
                external.entry(hub.raw()).or_default().push(roles.clone());
            }
        }
    }

    let mut changed = true;
    while changed {
        changed = false;
        for (oid, ot) in schema.object_types() {
            if !ot.kind.is_nolot() {
                continue;
            }
            let mut new_reps: Vec<LexicalRep> = Vec::new();

            // Simple reference through an identifying fact.
            for my_role in schema.roles_of(oid) {
                let co = my_role.co_role();
                let target = schema.role_player(co);
                if target == oid {
                    continue;
                }
                let identifying = schema.is_role_unique(my_role)
                    && schema.is_role_total(my_role)
                    && schema.is_role_unique(co);
                if !identifying {
                    continue;
                }
                for target_rep in reps.get(&target.raw()).cloned().unwrap_or_default() {
                    new_reps.push(prefix_rep(oid, my_role, &target_rep));
                }
            }

            // Compound (external uniqueness) reference.
            for group in external.get(&oid.raw()).cloned().unwrap_or_default() {
                // Each component fact must be functional and total on the hub.
                let ok = group.iter().all(|r| {
                    let hub_role = r.co_role();
                    schema.is_role_unique(hub_role) && schema.is_role_total(hub_role)
                });
                if !ok {
                    continue;
                }
                // Cartesian product of component representations, taking the
                // smallest representation of each component to stay bounded.
                let mut atoms: Vec<LexicalAtom> = Vec::new();
                let mut complete = true;
                for r in &group {
                    let comp = schema.role_player(*r);
                    let hub_role = r.co_role();
                    let Some(comp_reps) = reps.get(&comp.raw()) else {
                        complete = false;
                        break;
                    };
                    let Some(best) = comp_reps.iter().min_by_key(|x| x.size_key()) else {
                        complete = false;
                        break;
                    };
                    for a in &prefix_rep(oid, hub_role, best).atoms {
                        atoms.push(a.clone());
                    }
                }
                if complete {
                    new_reps.push(LexicalRep { owner: oid, atoms });
                }
            }

            // Inheritance: a subtype may be referred to as its supertype.
            for sup in schema.supertypes_of(oid) {
                for sup_rep in reps.get(&sup.raw()).cloned().unwrap_or_default() {
                    new_reps.push(LexicalRep {
                        owner: oid,
                        atoms: sup_rep.atoms.clone(),
                    });
                }
            }

            let entry = reps.entry(oid.raw()).or_default();
            for r in new_reps {
                if entry.len() >= MAX_REPS_PER_OT {
                    break;
                }
                if !entry.contains(&r) {
                    entry.push(r);
                    changed = true;
                }
            }
        }
    }

    // Deterministic ordering: smallest first.
    for (_, v) in reps.iter_mut() {
        v.sort_by_key(|r| (r.size_key(), r.atoms.len()));
    }
    ReferenceAnalysis { reps }
}

fn prefix_rep(owner: ObjectTypeId, hop: RoleRef, target_rep: &LexicalRep) -> LexicalRep {
    LexicalRep {
        owner,
        atoms: target_rep
            .atoms
            .iter()
            .map(|a| {
                let mut path = vec![hop];
                path.extend(a.path.iter().copied());
                LexicalAtom {
                    path,
                    lot: a.lot,
                    data_type: a.data_type,
                }
            })
            .collect(),
    }
}

/// The findings of function 4: one error per non-referable NOLOT.
pub fn findings(schema: &Schema, analysis: &ReferenceAnalysis) -> Vec<Finding> {
    let mut out = Vec::new();
    for (oid, ot) in schema.object_types() {
        if ot.kind.is_nolot() && !analysis.is_referable(oid) {
            out.push(Finding::error(
                "NON-REFERABLE",
                format!(
                    "no one-to-one lexical reference scheme is inferable for NOLOT {}",
                    ot.name
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::Side;

    #[test]
    fn simple_reference_inferred() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        let s = b.finish().unwrap();
        let a = infer(&s);
        let paper = s.object_type_by_name("Paper").unwrap();
        assert!(a.is_referable(paper));
        let rep = a.smallest(&s, paper).unwrap();
        assert_eq!(rep.atoms.len(), 1);
        assert_eq!(rep.atoms[0].depth(), 1);
        assert_eq!(rep.byte_width(), 6);
        assert!(findings(&s, &a).is_empty());
    }

    #[test]
    fn missing_totality_blocks_reference() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Paper").unwrap();
        b.lot("Paper_Id", DataType::Char(6)).unwrap();
        b.fact("f", ("has", "Paper"), ("of", "Paper_Id")).unwrap();
        b.unique("f", Side::Left).unwrap();
        b.unique("f", Side::Right).unwrap();
        // No total role: some papers may lack an id — not one-to-one on all.
        let s = b.finish().unwrap();
        let a = infer(&s);
        let paper = s.object_type_by_name("Paper").unwrap();
        assert!(!a.is_referable(paper));
        let f = findings(&s, &a);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "NON-REFERABLE");
    }

    #[test]
    fn missing_co_uniqueness_blocks_reference() {
        // Two papers could share the same id: not injective.
        let mut b = SchemaBuilder::new("s");
        b.nolot("Paper").unwrap();
        b.lot("Paper_Id", DataType::Char(6)).unwrap();
        b.fact("f", ("has", "Paper"), ("of", "Paper_Id")).unwrap();
        b.unique("f", Side::Left).unwrap();
        b.total_role("f", Side::Left).unwrap();
        let s = b.finish().unwrap();
        let a = infer(&s);
        assert!(!a.is_referable(s.object_type_by_name("Paper").unwrap()));
    }

    #[test]
    fn chained_reference_through_nolot() {
        // Review identified by its Paper (1:1), Paper identified by Paper_Id.
        let mut b = SchemaBuilder::new("s");
        b.nolot("Paper").unwrap();
        b.nolot("Review").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        b.fact(
            "of_paper",
            ("review_of", "Review"),
            ("reviewed_in", "Paper"),
        )
        .unwrap();
        b.unique("of_paper", Side::Left).unwrap();
        b.unique("of_paper", Side::Right).unwrap();
        b.total_role("of_paper", Side::Left).unwrap();
        let s = b.finish().unwrap();
        let a = infer(&s);
        let review = s.object_type_by_name("Review").unwrap();
        assert!(a.is_referable(review));
        let rep = a.smallest(&s, review).unwrap();
        assert_eq!(rep.atoms[0].depth(), 2, "{}", rep.describe(&s));
    }

    #[test]
    fn compound_reference_via_external_uniqueness() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Session").unwrap();
        b.lot("Day", DataType::Char(3)).unwrap();
        b.lot("Slot", DataType::Numeric(2, 0)).unwrap();
        b.fact("on_day", ("held_on", "Session"), ("day_of", "Day"))
            .unwrap();
        b.fact("in_slot", ("held_in", "Session"), ("slot_of", "Slot"))
            .unwrap();
        b.unique("on_day", Side::Left).unwrap();
        b.unique("in_slot", Side::Left).unwrap();
        b.total_role("on_day", Side::Left).unwrap();
        b.total_role("in_slot", Side::Left).unwrap();
        b.external_unique(&[("on_day", Side::Right), ("in_slot", Side::Right)])
            .unwrap();
        let s = b.finish().unwrap();
        let a = infer(&s);
        let session = s.object_type_by_name("Session").unwrap();
        assert!(a.is_referable(session));
        let rep = a.smallest(&s, session).unwrap();
        assert_eq!(rep.atoms.len(), 2, "{}", rep.describe(&s));
    }

    #[test]
    fn subtype_inherits_reference() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Paper").unwrap();
        b.nolot("Invited_Paper").unwrap();
        b.sublink("Invited_Paper", "Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        let s = b.finish().unwrap();
        let a = infer(&s);
        let inv = s.object_type_by_name("Invited_Paper").unwrap();
        assert!(a.is_referable(inv));
    }

    #[test]
    fn lot_nolot_is_self_lexical() {
        let mut b = SchemaBuilder::new("s");
        b.lot_nolot("Date", DataType::Date).unwrap();
        let s = b.finish().unwrap();
        let a = infer(&s);
        let d = s.object_type_by_name("Date").unwrap();
        assert!(a.is_referable(d));
        assert_eq!(a.smallest(&s, d).unwrap().atoms[0].depth(), 0);
    }

    #[test]
    fn multiple_representations_ranked_smallest_first() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Person").unwrap();
        identify(&mut b, "Person", "SSN", DataType::Char(9)).unwrap();
        // A second, wider naming convention.
        b.lot("Full_Name", DataType::Char(60)).unwrap();
        b.fact("named", ("has_name", "Person"), ("name_of", "Full_Name"))
            .unwrap();
        b.unique("named", Side::Left).unwrap();
        b.unique("named", Side::Right).unwrap();
        b.total_role("named", Side::Left).unwrap();
        let s = b.finish().unwrap();
        let a = infer(&s);
        let p = s.object_type_by_name("Person").unwrap();
        assert_eq!(a.reps_of(p).len(), 2);
        assert_eq!(a.smallest(&s, p).unwrap().byte_width(), 9);
    }
}

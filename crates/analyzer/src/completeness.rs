//! RIDL-A function 2: "determines whether the binary schema contains all
//! necessary concepts to be a complete description" (§3.2).
//!
//! Completeness findings are warnings, not errors: an incomplete schema is
//! typical mid-project ("at early stages (partial) specifications … can
//! already be checked", §1) and the mapper can still run on it.

use ridl_brm::{ConstraintKind, Schema, Side};

use crate::report::Finding;

/// Checks completeness heuristics; returns the findings.
pub fn check(schema: &Schema) -> Vec<Finding> {
    let mut out = Vec::new();
    if schema.num_object_types() == 0 {
        out.push(Finding::warning(
            "EMPTY-SCHEMA",
            "the schema has no concepts",
        ));
        return out;
    }
    facts_have_identifiers(schema, &mut out);
    no_isolated_concepts(schema, &mut out);
    nolots_have_facts(schema, &mut out);
    subtype_has_specifics(schema, &mut out);
    out
}

/// NIAM: every fact type needs at least one uniqueness constraint; without
/// one the fact's grouping (attribute vs own table) is undetermined.
fn facts_have_identifiers(schema: &Schema, out: &mut Vec<Finding>) {
    for (fid, ft) in schema.fact_types() {
        if !schema.fact_has_uniqueness(fid) {
            out.push(Finding::warning(
                "FACT-NO-UNIQUENESS",
                format!(
                    "fact type {} has no uniqueness constraint; the mapper will assume a many-to-many fact",
                    ft.name
                ),
            ));
        }
    }
}

/// Object types playing no role and appearing in no sublink describe nothing.
fn no_isolated_concepts(schema: &Schema, out: &mut Vec<Finding>) {
    for (oid, ot) in schema.object_types() {
        let plays = !schema.roles_of(oid).is_empty();
        let linked = schema
            .sublinks()
            .any(|(_, sl)| sl.sub == oid || sl.sup == oid);
        if !plays && !linked {
            out.push(Finding::warning(
                "ISOLATED-CONCEPT",
                format!("object type {} plays no role and has no sublink", ot.name),
            ));
        }
    }
}

/// A NOLOT reachable only through sublinks carries no facts of its own and
/// no inherited identification path — usually a modelling gap. A LOT that is
/// never used is dead weight.
fn nolots_have_facts(schema: &Schema, out: &mut Vec<Finding>) {
    for (oid, ot) in schema.object_types() {
        if ot.kind.is_lot() && schema.roles_of(oid).is_empty() {
            out.push(Finding::warning(
                "UNUSED-LOT",
                format!("LOT {} is not attached to any fact type", ot.name),
            ));
        }
    }
}

/// A subtype with no fact of its own expresses nothing the supertype does
/// not; the paper motivates subtypes "e.g. because of additional fact
/// properties" (§2). Informational only.
fn subtype_has_specifics(schema: &Schema, out: &mut Vec<Finding>) {
    for (_, sl) in schema.sublinks() {
        let own_facts = !schema.roles_of(sl.sub).is_empty();
        let in_constraint = schema.constraints().any(|(_, c)| match &c.kind {
            ConstraintKind::Total { items, .. } | ConstraintKind::Exclusion { items } => {
                items.iter().any(|i| match i {
                    ridl_brm::RoleOrSublink::Sublink(s) => schema.sublink(*s).sub == sl.sub,
                    ridl_brm::RoleOrSublink::Role(r) => schema.role_player(*r) == sl.sub,
                })
            }
            _ => false,
        });
        if !own_facts && !in_constraint {
            out.push(Finding::info(
                "SUBTYPE-NO-SPECIFICS",
                format!(
                    "subtype {} adds no fact types or constraints over {}",
                    schema.ot_name(sl.sub),
                    schema.ot_name(sl.sup)
                ),
            ));
        }
    }
    let _ = Side::BOTH;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::DataType;

    #[test]
    fn complete_schema_clean() {
        let mut b = SchemaBuilder::new("ok");
        b.nolot("Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        let s = b.finish().unwrap();
        assert!(check(&s).is_empty(), "{:?}", check(&s));
    }

    #[test]
    fn empty_schema_flagged() {
        let s = ridl_brm::Schema::new("empty");
        let f = check(&s);
        assert!(f.iter().any(|x| x.code == "EMPTY-SCHEMA"));
    }

    #[test]
    fn fact_without_uniqueness_flagged() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.fact("f", ("x", "A"), ("y", "B")).unwrap();
        let s = b.finish().unwrap();
        let f = check(&s);
        assert!(f.iter().any(|x| x.code == "FACT-NO-UNIQUENESS"));
    }

    #[test]
    fn isolated_and_unused_flagged() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Alone").unwrap();
        b.lot("DeadLot", DataType::Char(1)).unwrap();
        let s = b.finish().unwrap();
        let f = check(&s);
        assert!(f
            .iter()
            .any(|x| x.code == "ISOLATED-CONCEPT" && x.message.contains("Alone")));
        assert!(f.iter().any(|x| x.code == "UNUSED-LOT"));
    }

    #[test]
    fn empty_subtype_is_info() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Paper").unwrap();
        b.nolot("Invited_Paper").unwrap();
        b.sublink("Invited_Paper", "Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        let s = b.finish().unwrap();
        let f = check(&s);
        assert!(f
            .iter()
            .any(|x| x.code == "SUBTYPE-NO-SPECIFICS" && x.severity == crate::Severity::Info));
    }
}

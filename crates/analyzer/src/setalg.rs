//! RIDL-A function 3: consistency of the set-algebraic constraints "on the
//! populations of roles and object types" (§3.2).
//!
//! The total/exclusion/subset/equality constraints of the BRM are inclusion
//! and disjointness statements between role- and object-type populations. A
//! combination like *exclusion(r, s)* together with *equality(r, s)* is
//! satisfiable only by empty populations — almost certainly a specification
//! error. This module saturates the inclusion/disjointness lattice with a
//! small fixpoint engine and reports every population that the constraints
//! force to be empty.
//!
//! Derivation rules:
//!
//! 1. `pop(role) ⊆ pop(player)`; `pop(sub) ⊆ pop(sup)` (structure);
//! 2. subset is reflexive and transitive;
//! 3. `disjoint(a,b) ∧ x ⊆ a ∧ y ⊆ b ⟹ disjoint(x,y)`;
//! 4. `disjoint(x,x) ⟹ empty(x)`;
//! 5. `x ⊆ y ∧ empty(y) ⟹ empty(x)`;
//! 6. `cover(o, items) ∧ (∀i: empty(i) ∨ disjoint(o,i)) ⟹ empty(o)`
//!    (a total union whose members are all unavailable to `o`).

use std::collections::HashMap;

use ridl_brm::{ConstraintKind, RoleOrSublink, RoleRef, Schema, Side};

use crate::report::Finding;

/// A population node: an object type or a role projection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Node {
    Ot(u32),
    Role(u32, Side),
}

/// The saturated set-algebra over a schema's populations.
pub struct SetAlgebra {
    nodes: Vec<Node>,
    index: HashMap<Node, usize>,
    subset: Vec<Vec<bool>>,
    disjoint: Vec<Vec<bool>>,
    empty: Vec<bool>,
    covers: Vec<(usize, Vec<usize>)>,
}

impl SetAlgebra {
    fn node(&mut self, n: Node) -> usize {
        if let Some(&i) = self.index.get(&n) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(n);
        self.index.insert(n, i);
        for row in &mut self.subset {
            row.push(false);
        }
        for row in &mut self.disjoint {
            row.push(false);
        }
        self.subset.push(vec![false; i + 1]);
        self.disjoint.push(vec![false; i + 1]);
        self.subset[i][i] = true;
        self.empty.push(false);
        i
    }

    /// Builds the base facts from a schema.
    pub fn from_schema(schema: &Schema) -> Self {
        let mut sa = SetAlgebra {
            nodes: Vec::new(),
            index: HashMap::new(),
            subset: Vec::new(),
            disjoint: Vec::new(),
            empty: Vec::new(),
            covers: Vec::new(),
        };
        // Structure: roles within players, subtypes within supertypes.
        for (fid, ft) in schema.fact_types() {
            for side in Side::BOTH {
                let r = sa.node(Node::Role(fid.raw(), side));
                let p = sa.node(Node::Ot(ft.player(side).raw()));
                sa.subset[r][p] = true;
            }
        }
        for (_, sl) in schema.sublinks() {
            let sub = sa.node(Node::Ot(sl.sub.raw()));
            let sup = sa.node(Node::Ot(sl.sup.raw()));
            sa.subset[sub][sup] = true;
        }
        // Constraints.
        let item_node = |sa: &mut SetAlgebra, item: &RoleOrSublink| match item {
            RoleOrSublink::Role(r) => sa.node(Node::Role(r.fact.raw(), r.side)),
            RoleOrSublink::Sublink(s) => sa.node(Node::Ot(schema.sublink(*s).sub.raw())),
        };
        for (_, c) in schema.constraints() {
            match &c.kind {
                ConstraintKind::Total { over, items } => {
                    let o = sa.node(Node::Ot(over.raw()));
                    let is: Vec<usize> = items.iter().map(|i| item_node(&mut sa, i)).collect();
                    if is.len() == 1 {
                        // Total role: the player's population equals the
                        // role's (mutual inclusion).
                        sa.subset[o][is[0]] = true;
                    }
                    sa.covers.push((o, is));
                }
                ConstraintKind::Exclusion { items } => {
                    let is: Vec<usize> = items.iter().map(|i| item_node(&mut sa, i)).collect();
                    for x in 0..is.len() {
                        for y in (x + 1)..is.len() {
                            sa.disjoint[is[x]][is[y]] = true;
                            sa.disjoint[is[y]][is[x]] = true;
                        }
                    }
                }
                ConstraintKind::Subset { sub, sup } if sub.len() == 1 && sup.len() == 1 => {
                    let a = sa.node(Node::Role(sub[0].fact.raw(), sub[0].side));
                    let b = sa.node(Node::Role(sup[0].fact.raw(), sup[0].side));
                    sa.subset[a][b] = true;
                }
                ConstraintKind::Equality { a, b } if a.len() == 1 && b.len() == 1 => {
                    let x = sa.node(Node::Role(a[0].fact.raw(), a[0].side));
                    let y = sa.node(Node::Role(b[0].fact.raw(), b[0].side));
                    sa.subset[x][y] = true;
                    sa.subset[y][x] = true;
                }
                _ => {}
            }
        }
        sa.saturate();
        sa
    }

    fn saturate(&mut self) {
        let n = self.nodes.len();
        let mut changed = true;
        while changed {
            changed = false;
            // Rule 2: transitivity.
            for k in 0..n {
                for i in 0..n {
                    if self.subset[i][k] {
                        for j in 0..n {
                            if self.subset[k][j] && !self.subset[i][j] {
                                self.subset[i][j] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
            // Rule 3: disjointness inherits down the lattice.
            for a in 0..n {
                for b in 0..n {
                    if !self.disjoint[a][b] {
                        continue;
                    }
                    for x in 0..n {
                        if !self.subset[x][a] {
                            continue;
                        }
                        for y in 0..n {
                            if self.subset[y][b] && !self.disjoint[x][y] {
                                self.disjoint[x][y] = true;
                                self.disjoint[y][x] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
            // Rule 4: self-disjoint means empty.
            for x in 0..n {
                if self.disjoint[x][x] && !self.empty[x] {
                    self.empty[x] = true;
                    changed = true;
                }
            }
            // Rule 5: emptiness propagates down inclusions.
            for x in 0..n {
                if self.empty[x] {
                    continue;
                }
                for y in 0..n {
                    if self.subset[x][y] && self.empty[y] {
                        self.empty[x] = true;
                        changed = true;
                        break;
                    }
                }
            }
            // Rule 6: a covered node with no available member is empty.
            // Take/restore instead of cloning the cover list on every
            // fixpoint round; only `empty` is written inside the loop.
            let covers = std::mem::take(&mut self.covers);
            for (o, items) in &covers {
                if self.empty[*o] {
                    continue;
                }
                let all_unavailable = items.iter().all(|&i| self.empty[i] || self.disjoint[*o][i]);
                if all_unavailable {
                    self.empty[*o] = true;
                    changed = true;
                }
            }
            self.covers = covers;
        }
    }

    /// Whether a node's population is forced empty.
    fn node_empty(&self, n: Node) -> bool {
        self.index.get(&n).map(|&i| self.empty[i]).unwrap_or(false)
    }

    /// Whether the schema forces an object type's population empty.
    pub fn object_type_forced_empty(&self, ot: ridl_brm::ObjectTypeId) -> bool {
        self.node_empty(Node::Ot(ot.raw()))
    }

    /// Whether the schema forces a role's population empty.
    pub fn role_forced_empty(&self, role: RoleRef) -> bool {
        self.node_empty(Node::Role(role.fact.raw(), role.side))
    }
}

/// Detects declared set-algebraic constraints that are *implied* by the
/// rest of the schema — "superfluous definitions" in the paper's wording
/// (§4.1). A subset (or arity-1 equality half) is implied when the
/// saturation of the schema *without it* still derives the inclusion;
/// likewise for exclusions. Reported as Info: harmless, but the engineer
/// may want the canonicalisation pass to drop them.
///
/// This is a removal-based exact check — one full saturation per candidate
/// constraint — so it is **not** part of [`check`]; run it on demand (the
/// paper's RIDL-A also checks "on demand").
pub fn implied_constraints(schema: &Schema) -> Vec<Finding> {
    let mut out = Vec::new();
    for (cid, c) in schema.constraints() {
        let target: Option<(Node, Node, bool)> = match &c.kind {
            ConstraintKind::Subset { sub, sup } if sub.len() == 1 && sup.len() == 1 => Some((
                Node::Role(sub[0].fact.raw(), sub[0].side),
                Node::Role(sup[0].fact.raw(), sup[0].side),
                false,
            )),
            ConstraintKind::Exclusion { items } if items.len() == 2 => {
                let node = |i: &RoleOrSublink| match i {
                    RoleOrSublink::Role(r) => Node::Role(r.fact.raw(), r.side),
                    RoleOrSublink::Sublink(s) => Node::Ot(schema.sublink(*s).sub.raw()),
                };
                Some((node(&items[0]), node(&items[1]), true))
            }
            _ => None,
        };
        let Some((a, b, disjoint)) = target else {
            continue;
        };
        // Rebuild the schema without this constraint and saturate.
        let mut reduced = Schema::new(schema.name.clone());
        for (_, o) in schema.object_types() {
            reduced.push_object_type(o.clone());
        }
        for (_, f) in schema.fact_types() {
            reduced.push_fact_type(f.clone());
        }
        for (_, sl) in schema.sublinks() {
            reduced.push_sublink(*sl);
        }
        for (other_id, other) in schema.constraints() {
            if other_id != cid {
                reduced.push_constraint(other.clone());
            }
        }
        let sa = SetAlgebra::from_schema(&reduced);
        let (Some(&ia), Some(&ib)) = (sa.index.get(&a), sa.index.get(&b)) else {
            continue;
        };
        let implied = if disjoint {
            sa.disjoint[ia][ib]
        } else {
            sa.subset[ia][ib]
        };
        if implied {
            out.push(Finding::info(
                "IMPLIED-CONSTRAINT",
                format!(
                    "{} {cid} is implied by the rest of the schema (superfluous definition)",
                    c.kind.keyword()
                ),
            ));
        }
    }
    out
}

/// Runs the consistency check over a schema; returns the findings.
pub fn check(schema: &Schema) -> Vec<Finding> {
    let sa = SetAlgebra::from_schema(schema);
    let mut out = Vec::new();
    for (oid, ot) in schema.object_types() {
        if sa.object_type_forced_empty(oid) {
            out.push(Finding::error(
                "FORCED-EMPTY-OT",
                format!(
                    "the set-algebraic constraints force the population of {} to be empty",
                    ot.name
                ),
            ));
        }
    }
    for (fid, ft) in schema.fact_types() {
        for side in Side::BOTH {
            let r = RoleRef::new(fid, side);
            // Only report the role when its player is not itself doomed
            // (avoid cascading noise).
            if sa.role_forced_empty(r) && !sa.object_type_forced_empty(schema.role_player(r)) {
                out.push(Finding::warning(
                    "FORCED-EMPTY-ROLE",
                    format!("role {} of fact {} can never be populated", side, ft.name),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::builder::SchemaBuilder;

    #[test]
    fn consistent_schema_clean() {
        let mut b = SchemaBuilder::new("ok");
        b.nolot("Person").unwrap();
        b.nolot("Paper").unwrap();
        b.fact("writes", ("author_of", "Person"), ("written_by", "Paper"))
            .unwrap();
        b.fact(
            "reviews",
            ("reviewer_of", "Person"),
            ("reviewed_by", "Paper"),
        )
        .unwrap();
        b.exclusion_roles(&[("writes", Side::Right), ("reviews", Side::Right)])
            .unwrap();
        let s = b.finish().unwrap();
        assert!(check(&s).is_empty(), "{:?}", check(&s));
    }

    #[test]
    fn equality_plus_exclusion_forces_empty() {
        let mut b = SchemaBuilder::new("bad");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.fact("f", ("x", "A"), ("y", "B")).unwrap();
        b.fact("g", ("x", "A"), ("y", "B")).unwrap();
        b.equality(&[("f", Side::Left)], &[("g", Side::Left)])
            .unwrap();
        b.exclusion_roles(&[("f", Side::Left), ("g", Side::Left)])
            .unwrap();
        let s = b.finish().unwrap();
        let f = check(&s);
        // Both roles equal and disjoint ⇒ both empty (warnings; A itself can
        // still be populated by instances playing nothing).
        assert!(
            f.iter().filter(|x| x.code == "FORCED-EMPTY-ROLE").count() >= 2,
            "{f:?}"
        );
    }

    #[test]
    fn total_role_in_contradiction_dooms_the_object_type() {
        let mut b = SchemaBuilder::new("bad");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.fact("f", ("x", "A"), ("y", "B")).unwrap();
        b.fact("g", ("x", "A"), ("y", "B")).unwrap();
        // Everyone in A plays f.x; f.x and g.x are equal yet exclusive.
        b.total_role("f", Side::Left).unwrap();
        b.equality(&[("f", Side::Left)], &[("g", Side::Left)])
            .unwrap();
        b.exclusion_roles(&[("f", Side::Left), ("g", Side::Left)])
            .unwrap();
        let s = b.finish().unwrap();
        let f = check(&s);
        assert!(
            f.iter()
                .any(|x| x.code == "FORCED-EMPTY-OT" && x.message.contains("A")),
            "{f:?}"
        );
    }

    #[test]
    fn exclusive_total_subtypes_cover_is_fine() {
        // Paper ⊇ {Invited, Program}, exclusive and total — satisfiable.
        let mut b = SchemaBuilder::new("ok");
        b.nolot("Paper").unwrap();
        b.nolot("Invited").unwrap();
        b.nolot("Program").unwrap();
        let s1 = b.sublink("Invited", "Paper").unwrap();
        let s2 = b.sublink("Program", "Paper").unwrap();
        b.total_subtypes("Paper", &[s1, s2]).unwrap();
        b.exclusion_subtypes(&[s1, s2]).unwrap();
        let s = b.finish().unwrap();
        assert!(check(&s).is_empty(), "{:?}", check(&s));
    }

    #[test]
    fn subtype_both_total_and_excluded_from_super_is_contradiction() {
        // Every Paper is an Invited (total over the sublink) but Invited is
        // disjoint from a role that is also total on Paper.
        let mut b = SchemaBuilder::new("bad");
        b.nolot("Paper").unwrap();
        b.nolot("Invited").unwrap();
        b.nolot("Person").unwrap();
        let sl = b.sublink("Invited", "Paper").unwrap();
        b.fact("submits", ("submitted_by", "Paper"), ("s", "Person"))
            .unwrap();
        b.total_subtypes("Paper", &[sl]).unwrap();
        b.total_role("submits", Side::Left).unwrap();
        // Invited papers never play submits.left — but every paper is
        // invited and every paper plays submits.left.
        b.raw_constraint(ridl_brm::Constraint::new(
            ridl_brm::ConstraintKind::Exclusion {
                items: vec![
                    ridl_brm::RoleOrSublink::Sublink(sl),
                    ridl_brm::RoleOrSublink::Role(RoleRef::new(s_fact(&b), Side::Left)),
                ],
            },
        ));
        let s = b.finish_unchecked();
        let f = check(&s);
        assert!(
            f.iter()
                .any(|x| x.code == "FORCED-EMPTY-OT" && x.message.contains("Paper")),
            "{f:?}"
        );
    }

    fn s_fact(b: &SchemaBuilder) -> ridl_brm::FactTypeId {
        b.schema().fact_type_by_name("submits").unwrap()
    }

    #[test]
    fn empty_propagates_to_subtypes() {
        let mut b = SchemaBuilder::new("bad");
        b.nolot("A").unwrap();
        b.nolot("Sub").unwrap();
        b.nolot("B").unwrap();
        b.sublink("Sub", "A").unwrap();
        b.fact("f", ("x", "A"), ("y", "B")).unwrap();
        b.fact("g", ("x", "A"), ("y", "B")).unwrap();
        b.total_role("f", Side::Left).unwrap();
        b.equality(&[("f", Side::Left)], &[("g", Side::Left)])
            .unwrap();
        b.exclusion_roles(&[("f", Side::Left), ("g", Side::Left)])
            .unwrap();
        let s = b.finish().unwrap();
        let f = check(&s);
        // A empty ⇒ Sub empty too.
        assert!(f
            .iter()
            .any(|x| x.code == "FORCED-EMPTY-OT" && x.message.contains("Sub")));
    }
}

#[cfg(test)]
mod implied_tests {
    use super::*;
    use ridl_brm::builder::SchemaBuilder;

    #[test]
    fn subset_implied_by_totality_is_flagged() {
        // r_opt ⊆ r_id is implied when r_id is total on the shared player.
        let mut b = SchemaBuilder::new("s");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.fact("id", ("x", "A"), ("y", "B")).unwrap();
        b.fact("opt", ("x", "A"), ("y", "B")).unwrap();
        b.total_role("id", Side::Left).unwrap();
        b.subset(&[("opt", Side::Left)], &[("id", Side::Left)])
            .unwrap();
        let s = b.finish().unwrap();
        let f = implied_constraints(&s);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "IMPLIED-CONSTRAINT");
    }

    #[test]
    fn genuine_subset_is_not_flagged() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.fact("f", ("x", "A"), ("y", "B")).unwrap();
        b.fact("g", ("x", "A"), ("y", "B")).unwrap();
        b.subset(&[("f", Side::Left)], &[("g", Side::Left)])
            .unwrap();
        let s = b.finish().unwrap();
        assert!(implied_constraints(&s).is_empty());
    }

    #[test]
    fn exclusion_implied_by_wider_exclusion() {
        // Exclusion between two subtypes is implied when their supertypes
        // are already exclusive.
        let mut b = SchemaBuilder::new("s");
        b.nolot("P").unwrap();
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.nolot("A1").unwrap();
        b.nolot("B1").unwrap();
        let sa = b.sublink("A", "P").unwrap();
        let sb = b.sublink("B", "P").unwrap();
        let sa1 = b.sublink("A1", "A").unwrap();
        let sb1 = b.sublink("B1", "B").unwrap();
        b.exclusion_subtypes(&[sa, sb]).unwrap();
        b.exclusion_subtypes(&[sa1, sb1]).unwrap();
        let s = b.finish().unwrap();
        let f = implied_constraints(&s);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("EXCLUSION"));
    }
}
